"""Table 7 — inferred specifications on three configuration branches.

Paper Table 7: inferred specs reported 43 errors across Trunk / Branch 1 /
Branch 2 (12/15/16), of which 11 were false positives (3/5/3).  True errors
included "empty FccDnsName" and "low ReplicaCountForCreateFCC"; the false
positives came from incomplete inferred value ranges and from scalar values
whose "true types are a list of IP address".

We mine specs from the clean Type A snapshot, inject a mix of true errors
and exactly those benign-drift mechanisms into three branches, and assert
the paper's shape: more reports than the expert corpus, a minority of them
false positives, zero reports not attributable to an injected change.
"""

from __future__ import annotations

import pytest

from repro import InferenceEngine, ValidationSession
from repro.benchutil import format_table
from repro.synthetic import FaultInjector, score_report

# inferred specs catch value-level damage; each branch gets a batch of true
# errors plus the paper's three false-positive mechanisms
TRUE_BATCH = [
    "wrong_type", "out_of_range", "inconsistent_value", "duplicate_unique",
    "enum_typo", "empty_required", "low_replica_count",
    "wrong_type", "out_of_range", "inconsistent_value",
]
BENIGN_BATCH = ["new_enum_value", "range_drift", "scalar_to_list"]


@pytest.fixture(scope="module")
def inferred_cpl(type_a_store):
    return InferenceEngine().infer(type_a_store).to_cpl()


@pytest.fixture(scope="module")
def branches(type_a_dataset):
    base = type_a_dataset.parse()
    out = {}
    for index, name in enumerate(("Trunk", "Branch 1", "Branch 2")):
        injector = FaultInjector(base, seed=200 + index)
        out[name] = injector.make_branch(name, TRUE_BATCH, BENIGN_BATCH)
    return out


def test_table7_report(benchmark, emit, branches, inferred_cpl):
    def run_all():
        rows = []
        for name, branch in branches.items():
            store = branch.build_store()
            report = ValidationSession(store=store).validate(inferred_cpl)
            rows.append((name, branch, report))
        return rows

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table_rows = []
    total_reported = 0
    total_false = 0
    for name, branch, report in results:
        score = score_report(report, branch)
        table_rows.append((name, score.reported, score.false_positives))
        total_reported += score.reported
        total_false += score.false_positives
        # every report traces back to an injected change (no phantom reports)
        assert score.unexpected == 0, report.render(limit=8)
        # the false-positive mechanisms fire on every branch
        assert score.false_positives >= 1
        # but most reports are true errors
        assert score.false_positives < score.reported / 2
    emit(
        "table7_inferred_errors",
        format_table(
            ["Config. branch", "Reported errors", "False positives"], table_rows
        )
        + f"\ntotal: {total_reported} reported, {total_false} FP "
        f"(paper: 43 reported, 11 FP)",
    )
    # paper shape: tens of reports, FP rate around a quarter
    assert total_reported >= 20
    assert 0 < total_false / total_reported <= 0.4


@pytest.mark.parametrize("name", ["Trunk", "Branch 1", "Branch 2"])
def test_table7_branch_validation_speed(benchmark, name, branches, inferred_cpl):
    store = branches[name].build_store()
    session = ValidationSession(store=store)
    statements = session.prepare(inferred_cpl)
    report = benchmark.pedantic(
        session.validate_statements, args=(statements,), rounds=2, iterations=1
    )
    assert not report.passed
