"""§5.2 — instance discovery: trie + caching vs the naive implementation.

Paper §5.2: the initial segment-by-segment discovery "became a bottleneck in
the validation process" under high query load (5M+ discovery queries in
some runs); rewriting it "with better data structures (e.g., trie) and
caching support … improved the processing time by 5x to 40x".

We index the Type A snapshot with both implementations and replay a
discovery-query storm shaped like a real validation run: a mix of exact
class notations, scoped lookups, and wildcard patterns, with the repetition
that validation naturally produces (every spec re-queries its domain per
compartment instance).

Shape claim: trie+cache ≥ 5× faster than naive on the replayed storm.
"""

from __future__ import annotations

import time

import pytest

from repro.benchutil import format_table
from repro.repository import NaiveIndex, TrieIndex
from repro.repository.keys import parse_pattern


@pytest.fixture(scope="module")
def indexes(type_a_store):
    trie, naive = TrieIndex(), NaiveIndex()
    for instance in type_a_store.instances():
        trie.add(instance)
        naive.add(instance)
    return trie, naive


@pytest.fixture(scope="module")
def query_storm(type_a_store):
    """A validation-shaped query mix, with natural repetition."""
    patterns = []
    leafs = sorted({c.leaf_name for c in type_a_store.classes()})
    for leaf in leafs[:120]:
        patterns.append(parse_pattern(leaf))
    patterns.append(parse_pattern("*IP"))
    patterns.append(parse_pattern("*TimeoutSeconds*"))
    patterns.append(parse_pattern("Cluster.StartIP"))
    patterns.append(parse_pattern("Rack.Blade.Location"))
    # validation repeats domain queries (compartments, multi-spec domains)
    return patterns * 12


def replay(index, storm):
    total = 0
    for pattern in storm:
        total += len(index.query(pattern))
    return total


def measured_seconds(benchmark, fn):
    """Best observed time, also under ``--benchmark-disable`` (smoke runs)."""
    if benchmark.stats is not None:
        return min(benchmark.stats.stats.data)
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def test_discovery_equivalence_and_speedup(benchmark, emit, indexes, query_storm):
    trie, naive = indexes

    # correctness first: identical result sets on every pattern
    for pattern in query_storm[:150]:
        got_trie = {i.key.render() for i in trie.query(pattern)}
        got_naive = {i.key.render() for i in naive.query(pattern)}
        assert got_trie == got_naive, pattern.render()

    started = time.perf_counter()
    naive_total = replay(naive, query_storm)
    naive_seconds = time.perf_counter() - started

    def timed_trie():
        return replay(trie, query_storm)

    trie_total = benchmark(timed_trie)
    trie_seconds = measured_seconds(benchmark, timed_trie)
    assert trie_total == naive_total

    speedup = naive_seconds / max(trie_seconds, 1e-9)
    emit(
        "discovery_trie_vs_naive",
        format_table(
            ["Implementation", "Queries", "Time (s)"],
            [
                ("naive (segment filtering)", len(query_storm), f"{naive_seconds:.3f}"),
                ("trie + cache", len(query_storm), f"{trie_seconds:.3f}"),
            ],
        )
        + f"\nspeedup: {speedup:.1f}x (paper: 5x–40x)",
    )
    assert speedup >= 5, f"only {speedup:.1f}x"


def test_discovery_cold_trie_still_wins(benchmark, indexes, query_storm):
    """Even without cache hits (distinct patterns), the trie wins."""
    trie, naive = indexes
    distinct = list({p.render(): p for p in query_storm}.values())

    fresh_trie = TrieIndex(cache_size=0)
    for instance in trie.instances():
        fresh_trie.add(instance)

    started = time.perf_counter()
    replay(naive, distinct)
    naive_seconds = time.perf_counter() - started
    benchmark.pedantic(replay, args=(fresh_trie, distinct), rounds=3, iterations=1)
    trie_seconds = measured_seconds(
        benchmark, lambda: replay(fresh_trie, distinct)
    )
    assert trie_seconds < naive_seconds
