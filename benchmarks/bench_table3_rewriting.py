"""Table 3 — rewriting Azure's ad-hoc validation code in CPL.

Paper Table 3: three Azure validation modules (800+/3300+/180+ LoC of C# &
PowerShell) shrink to 50/109/14 LoC of CPL (17/62/6 specs), with roughly a
third of the specs auto-inferable, at small development time.

Here both sides are executable: the imperative baselines
(:mod:`repro.synthetic.imperative`, written in the paper's Listing 2/3
style) versus the expert CPL corpora (:mod:`repro.synthetic.specs`).  We
report original LoC, CPL LoC, spec count and the inferable count (checked
against what the inference engine actually discovers on the same data), and
benchmark the CPL validation runs.

Shape claims: ≥5× LoC reduction on every module (the paper shows 13–30×);
a nonzero fraction of specs inferable; both sides report zero violations on
clean data.
"""

from __future__ import annotations

import pytest

from repro import InferenceEngine, ValidationSession
from repro.benchutil import count_spec_statements as count_specs
from repro.benchutil import format_table
from repro.cpl import ast, parse
from repro.synthetic import (
    EXPERT_SPECS,
    imperative_loc,
    spec_loc,
    validate_type_a,
    validate_type_b,
    validate_type_c,
)

_IMPERATIVE = {
    "Type A": ("type_a", validate_type_a),
    "Type B": ("type_b", validate_type_b),
    "Type C": ("type_c", validate_type_c),
}


def count_inferable(name: str, store) -> int:
    """Specs whose (class, constraint-kind) the inference engine rediscovers."""
    inferred = InferenceEngine().infer(store)
    inferred_pairs = {(c.class_key[-1], c.kind) for c in inferred.constraints}
    kinds_by_leaf = {}
    for class_key, kind in inferred_pairs:
        kinds_by_leaf.setdefault(class_key, set()).add(kind)

    program = parse(EXPERT_SPECS[name])
    count = 0
    for statement in program.statements:
        leaf, kinds = _spec_signature(statement)
        if leaf is None:
            continue
        if "*" in leaf:
            # wildcard hygiene spec: inferable when the engine discovered the
            # same kinds on the classes the wildcard covers
            from fnmatch import fnmatch

            covered = set()
            for other_leaf, other_kinds in kinds_by_leaf.items():
                if fnmatch(other_leaf, leaf):
                    covered |= other_kinds
            if kinds and kinds <= covered:
                count += 1
        elif kinds & kinds_by_leaf.get(leaf, set()):
            count += 1
    return count


def _spec_signature(statement):
    """(leaf parameter name, constraint kinds) of a simple top-level spec."""
    if not isinstance(statement, ast.SpecStatement):
        return None, set()
    if not isinstance(statement.domain, ast.DomainRef):
        return None, set()
    notation = statement.domain.notation
    if "$" in notation:
        return None, set()
    leaf = notation.split(".")[-1].split("::")[0]
    kinds = set()
    final = statement.steps[-1]
    if not isinstance(final, ast.PredicateStep):
        return leaf, kinds
    stack = [final.predicate]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.And):
            stack.extend((node.left, node.right))
        elif isinstance(node, ast.PrimitiveCall):
            if node.name == "nonempty":
                kinds.add("nonempty")
            elif node.name == "consistent":
                kinds.add("consistency")
            elif node.name == "unique":
                kinds.add("uniqueness")
            elif node.name in ("int", "float", "bool", "ip", "ipv6", "cidr",
                               "mac", "port", "url", "email", "guid", "path",
                               "iprange"):
                kinds.add("type")
        elif isinstance(node, ast.RangePred):
            kinds.add("range")
        elif isinstance(node, ast.SetPred):
            kinds.add("enum")
    return leaf, kinds


@pytest.fixture(scope="module")
def table3(type_a_store, type_b_store, type_c_store):
    stores = {"Type A": type_a_store, "Type B": type_b_store, "Type C": type_c_store}
    rows = []
    for label, (name, __) in _IMPERATIVE.items():
        original = imperative_loc(name)
        cpl = spec_loc(EXPERT_SPECS[name])
        specs = count_specs(EXPERT_SPECS[name])
        inferable = count_inferable(name, stores[label])
        rows.append((label, original, cpl, specs, inferable,
                     f"{original / cpl:.1f}x"))
    return rows


def test_table3_report(benchmark, table3, emit):
    rows = benchmark(lambda: table3)
    emit(
        "table3_rewriting",
        format_table(
            ["Config.", "Orig. code LOC", "CPL LOC", "Specs", "Inferable", "Reduction"],
            rows,
        ),
    )
    for __, original, cpl, specs, inferable, __ratio in rows:
        assert original / cpl >= 5            # paper: 13–30×
        assert 0 < inferable <= specs         # paper: about one third inferable


@pytest.mark.parametrize("label", sorted(_IMPERATIVE))
def test_table3_cpl_validation_speed(
    benchmark, label, type_a_store, type_b_store, type_c_store
):
    stores = {"Type A": type_a_store, "Type B": type_b_store, "Type C": type_c_store}
    name, imperative = _IMPERATIVE[label]
    store = stores[label]
    session = ValidationSession(store=store)
    statements = session.prepare(EXPERT_SPECS[name])

    report = benchmark(session.validate_statements, statements)
    assert report.passed
    # functional equivalence with the imperative baseline on clean data
    assert imperative(store) == []
