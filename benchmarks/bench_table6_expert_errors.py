"""Table 6 — expert-written specifications on three configuration branches.

Paper Table 6: running expert CPL specs on the three latest Azure branches
reported 8 errors — 4 on Trunk, 2 on Branch 1, 2 on Branch 2 — all
confirmed (zero false positives).  The reported errors included "the VIP
range of a load balancer set is not contained in VIP range of its cluster",
"bad BladeID", and "inconsistent number of addresses in MAC range and IP
range".

We derive three branches from the clean Type A snapshot with exactly those
error categories injected (4/2/2) plus benign drift that expert specs must
ignore, run the expert corpus, and assert: every injected error caught, no
false positives, no unexpected reports.
"""

from __future__ import annotations

import pytest

from repro import ValidationSession
from repro.benchutil import format_table
from repro.synthetic import EXPERT_SPECS, FaultInjector, score_report

# paper's named error categories, distributed 4/2/2 over the branches
BRANCH_RECIPES = {
    "Trunk": [
        "vip_out_of_cluster",       # VIP range not contained in cluster range
        "bad_blade_location",       # "bad BladeID" / duplicate blade location
        "mac_ip_pool_mismatch",     # MAC vs IP range count mismatch
        "empty_required",           # empty FccDnsName
    ],
    "Branch 1": ["low_replica_count", "enum_typo"],
    "Branch 2": ["wrong_type", "mac_ip_pool_mismatch"],
}

BENIGN = ["new_enum_value", "range_drift", "scalar_to_list"]


@pytest.fixture(scope="module")
def branches(type_a_dataset):
    base = type_a_dataset.parse()
    out = {}
    for index, (name, kinds) in enumerate(BRANCH_RECIPES.items()):
        injector = FaultInjector(base, seed=100 + index)
        out[name] = injector.make_branch(name, kinds, BENIGN)
    return out


def test_table6_report(benchmark, emit, branches):
    def run_all():
        rows = []
        for name, branch in branches.items():
            store = branch.build_store()
            report = ValidationSession(store=store).validate(EXPERT_SPECS["type_a"])
            rows.append((name, branch, report))
        return rows

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table_rows = []
    total_reported = 0
    for name, branch, report in results:
        score = score_report(report, branch)
        injected = len(branch.true_error_keys)
        table_rows.append((name, injected, score.reported, score.true_errors_caught,
                           score.false_positives))
        total_reported += score.reported
        # paper shape: all reported errors are true errors (all confirmed)
        assert score.false_positives == 0, report.render()
        assert score.unexpected == 0, report.render()
        assert score.true_errors_caught == injected, report.render()
    emit(
        "table6_expert_errors",
        format_table(
            ["Config. branch", "Injected", "Reported errors", "Caught", "False pos."],
            table_rows,
        )
        + f"\ntotal reported: {total_reported} (paper: 8, distributed 4/2/2)",
    )
    assert total_reported >= 8


@pytest.mark.parametrize("name", list(BRANCH_RECIPES))
def test_table6_branch_validation_speed(benchmark, name, branches):
    store = branches[name].build_store()
    session = ValidationSession(store=store)
    statements = session.prepare(EXPERT_SPECS["type_a"])
    report = benchmark(session.validate_statements, statements)
    assert not report.passed
