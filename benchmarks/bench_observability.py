"""Observability — the nil-cost-by-default contract, measured.

Two claims from ``docs/OBSERVABILITY.md`` are asserted:

* **disabled ≈ free** — with the default no-op tracer/registry installed,
  the instrumented pipeline validates the Type A corpus at the same speed
  as ever (the hooks cost one attribute lookup and a no-op call each);
* **enabled < 3 %** — turning on full tracing + metrics adds less than
  3 % wall clock to a serial validation of the same corpus.

Timing ratios are noisy at smoke scale, so the percentage assertion is
gated on corpus size (like the scaling floor in ``bench_parallel_scaling``);
the structural claims — byte-identical fingerprints in every mode, a
Prometheus exposition that parses, a span for every pipeline stage — are
asserted at any scale.

Run it alone with::

    PYTHONPATH=src python -m pytest benchmarks/bench_observability.py -q
"""

from __future__ import annotations

import time

from repro import ParallelValidator, observability, parse
from repro.benchutil import format_table
from repro.core.compiler import optimize_statements
from repro.observability import parse_prometheus
from repro.synthetic import EXPERT_SPECS

MAX_SHARDS = 8
ROUNDS = 3
#: the <3 % overhead claim is only measurable above this corpus size —
#: below it, per-run jitter dwarfs the instrumentation cost entirely
OVERHEAD_GATE_INSTANCES = 3000
OVERHEAD_CEILING = 1.03
#: per-spec analytics adds two clock reads + one dict update per statement;
#: the documented budget is <5 % wall clock on the Type A corpus
ANALYTICS_OVERHEAD_CEILING = 1.05
#: the shadow lane re-validates its candidate set against the same store;
#: for a steady-state candidate population (a handful of specs trickling
#: out of re-inference) the documented budget is <5 % of the scan
SHADOW_OVERHEAD_CEILING = 1.05
SHADOW_CANDIDATES = 5
#: fleet federation adds, per job, a handful of wall-clock spans, one
#: trace-segment append, and one atomic metrics-snapshot export; the
#: documented budget is <5 % wall clock over the observability-enabled
#: baseline (the enabled-vs-disabled cost is gated separately above)
FEDERATION_OVERHEAD_CEILING = 1.05


def best_of(fn, rounds=ROUNDS):
    """Fastest of ``rounds`` runs — the standard jitter-resistant estimator
    for an overhead ratio (means smear scheduler noise into the signal)."""
    result, best = None, float("inf")
    for __ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return result, best


def run_modes(store, statements):
    def validate():
        return ParallelValidator(
            store, executor="serial", max_shards=MAX_SHARDS
        ).validate_statements(statements)

    observability.disable()
    validate()  # warm-up: discovery-index caches must not bill the first mode
    rows = {"disabled": best_of(validate)}
    obs = observability.enable()
    try:
        rows["enabled"] = best_of(validate)
    finally:
        observability.disable()
    rows["metrics-only"] = None  # placed after to keep table order stable
    observability.enable(tracing=False)
    try:
        rows["metrics-only"] = best_of(validate)
    finally:
        observability.disable()
    return rows, obs


def test_observability_overhead(benchmark, emit, type_a_store):
    statements = optimize_statements(
        list(parse(EXPERT_SPECS["type_a"]).statements)
    )
    (rows, obs) = benchmark.pedantic(
        run_modes, args=(type_a_store, statements), rounds=1, iterations=1
    )

    baseline_report, baseline_seconds = rows["disabled"]
    table = []
    for mode, (report, seconds) in rows.items():
        # instrumentation must never change validation output
        assert report.fingerprint() == baseline_report.fingerprint(), mode
        table.append((
            mode,
            f"{seconds:.3f}",
            f"{seconds / baseline_seconds - 1:+.1%}"
            if mode != "disabled" else "baseline",
        ))
    emit(
        "observability_overhead",
        format_table(["Observability", "Seconds (best of 3)", "Overhead"], table)
        + f"\n(Type A corpus, {type_a_store.instance_count} instances, "
        "serial evaluation; fingerprints identical in every mode)",
    )

    # the enabled run produced a complete trace and a parsable exposition
    assert obs.tracer.find("evaluate"), "missing evaluate span"
    families = parse_prometheus(obs.metrics.to_prometheus())
    assert "confvalley_validations_total" in families
    assert "confvalley_validation_seconds" in families

    if type_a_store.instance_count >= OVERHEAD_GATE_INSTANCES:
        __, enabled_seconds = rows["enabled"]
        ratio = enabled_seconds / baseline_seconds
        assert ratio < OVERHEAD_CEILING, (
            f"observability overhead {ratio - 1:.1%} exceeds "
            f"{OVERHEAD_CEILING - 1:.0%}"
        )


def test_analytics_overhead(benchmark, emit, type_a_store):
    """Per-spec attribution (hot-spec/drift input) stays under 5 % wall clock
    and never changes validation output."""
    statements = optimize_statements(
        list(parse(EXPERT_SPECS["type_a"]).statements)
    )

    def validate(analytics):
        return ParallelValidator(
            type_a_store, executor="serial", max_shards=MAX_SHARDS,
            analytics=analytics,
        ).validate_statements(statements)

    def run_modes():
        observability.disable()
        validate(False)  # warm-up
        return {
            "off": best_of(lambda: validate(False)),
            "analytics": best_of(lambda: validate(True)),
        }

    rows = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    baseline_report, baseline_seconds = rows["off"]
    analytics_report, analytics_seconds = rows["analytics"]

    # attribution never changes what validation found
    assert analytics_report.fingerprint() == baseline_report.fingerprint()
    assert baseline_report.spec_profile == {}
    # compartment blocks expand, so rows >= top-level statements
    assert len(analytics_report.spec_profile) >= len(statements)

    emit(
        "analytics_overhead",
        format_table(
            ["Analytics", "Seconds (best of 3)", "Overhead"],
            [
                ("off", f"{baseline_seconds:.3f}", "baseline"),
                (
                    "on",
                    f"{analytics_seconds:.3f}",
                    f"{analytics_seconds / baseline_seconds - 1:+.1%}",
                ),
            ],
        )
        + f"\n(Type A corpus, {type_a_store.instance_count} instances, "
        f"{len(statements)} statements, serial evaluation)",
    )

    if type_a_store.instance_count >= OVERHEAD_GATE_INSTANCES:
        ratio = analytics_seconds / baseline_seconds
        assert ratio < ANALYTICS_OVERHEAD_CEILING, (
            f"analytics overhead {ratio - 1:.1%} exceeds "
            f"{ANALYTICS_OVERHEAD_CEILING - 1:.0%}"
        )


def test_shadow_overhead(benchmark, emit, type_a_store):
    """The shadow lane (docs/LIFECYCLE.md) stays under 5 % of the scan for
    a steady-state candidate population and never changes the verdict."""
    from repro import InferenceEngine
    from repro.lifecycle import SpecLifecycleManager, constraint_spec_id
    from repro.lifecycle.model import SpecRecord

    statements = optimize_statements(
        list(parse(EXPERT_SPECS["type_a"]).statements)
    )
    inferred = InferenceEngine().infer(type_a_store)
    assert len(inferred.constraints) >= SHADOW_CANDIDATES

    def manager_with(count):
        manager = SpecLifecycleManager()
        for constraint in inferred.constraints[:count]:
            spec_id = constraint_spec_id(constraint)
            if spec_id in manager.records:
                continue
            manager.records[spec_id] = SpecRecord.new(
                spec_id, constraint.to_cpl(),
                constraint.kind, constraint.class_key,
            )
        return manager

    def validate():
        return ParallelValidator(
            type_a_store, executor="serial", max_shards=MAX_SHARDS
        ).validate_statements(statements)

    def scan_with(manager):
        report = validate()
        if manager is not None:
            manager.run_scan(type_a_store)
        return report

    def run_modes():
        observability.disable()
        validate()  # warm-up
        populations = {"off": None,
                       f"shadow ({SHADOW_CANDIDATES} specs)":
                           manager_with(SHADOW_CANDIDATES),
                       f"shadow ({4 * SHADOW_CANDIDATES} specs)":
                           manager_with(4 * SHADOW_CANDIDATES)}
        return {
            label: best_of(lambda m=manager: scan_with(m))
            for label, manager in populations.items()
        }

    rows = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    baseline_report, baseline_seconds = rows["off"]
    table = []
    for label, (report, seconds) in rows.items():
        # the lane never touches the enforced report
        assert report.fingerprint() == baseline_report.fingerprint(), label
        table.append((
            label,
            f"{seconds:.3f}",
            f"{seconds / baseline_seconds - 1:+.1%}"
            if label != "off" else "baseline",
        ))
    emit(
        "shadow_overhead",
        format_table(["Shadow lane", "Seconds (best of 3)", "Overhead"], table)
        + f"\n(Type A corpus, {type_a_store.instance_count} instances, "
        f"{len(statements)} enforced statements, serial evaluation; "
        "fingerprints identical in every mode)",
    )

    if type_a_store.instance_count >= OVERHEAD_GATE_INSTANCES:
        __, shadow_seconds = rows[f"shadow ({SHADOW_CANDIDATES} specs)"]
        ratio = shadow_seconds / baseline_seconds
        assert ratio < SHADOW_OVERHEAD_CEILING, (
            f"shadow-lane overhead {ratio - 1:.1%} exceeds "
            f"{SHADOW_OVERHEAD_CEILING - 1:.0%}"
        )


def test_federation_overhead(benchmark, emit, type_a_store, tmp_path):
    """Fleet federation (docs/OBSERVABILITY.md) adds under 5 % wall clock
    per job on top of plain observability and never changes validation
    output.

    The ``federated`` mode pays exactly what an external worker pays on
    top of plain observability for every job it runs: the per-job
    wall-clock span tree (claim → evaluate → report), one trace-segment
    append to its partition file, and one atomic metrics-snapshot export
    into the shared directory.  The gate times those added operations
    directly and holds them under 5 % of the enabled-mode scan — the
    enabled-vs-disabled instrumentation cost is gated separately by
    ``test_observability_overhead`` and must not be double-billed to
    federation.
    """
    from repro.jobs import JobDirectory
    from repro.observability import (
        SpanContext,
        Tracer,
        export_metrics_snapshot,
    )
    from repro.observability.federation import TraceSegmentWriter

    statements = optimize_statements(
        list(parse(EXPERT_SPECS["type_a"]).statements)
    )
    directory = JobDirectory(str(tmp_path / "jobsdir")).ensure()

    def validate():
        return ParallelValidator(
            type_a_store, executor="serial", max_shards=MAX_SHARDS
        ).validate_statements(statements)

    def federated_job(writer):
        # what ExternalWorker._run_claimed adds around one job
        tracer = Tracer(
            origin=SpanContext("job-bench", "job-bench:root"),
            prefix="job-bench:bench.1:",
            time_source=time.time,
        )
        with tracer.span("claim"):
            pass
        with tracer.span("evaluate"):
            report = validate()
        with tracer.span("report"):
            pass
        writer.write("job-bench", tracer.finished_spans())
        export_metrics_snapshot(
            directory.metrics_snapshot("bench"),
            observability.get_metrics(),
            stats={"worker": "bench"},
        )
        return report

    def federation_ops(writer):
        # exactly the work ``federated_job`` adds around the validate
        # call — measured on its own because the gate needs to resolve a
        # ~1 ms increment, which end-to-end subtraction of two jittery
        # >100 ms runs cannot do
        tracer = Tracer(
            origin=SpanContext("job-bench", "job-bench:root"),
            prefix="job-bench:bench.1:",
            time_source=time.time,
        )
        with tracer.span("claim"):
            pass
        with tracer.span("evaluate"):
            pass
        with tracer.span("report"):
            pass
        writer.write("job-bench", tracer.finished_spans())
        export_metrics_snapshot(
            directory.metrics_snapshot("bench"),
            observability.get_metrics(),
            stats={"worker": "bench"},
        )

    def run_modes():
        observability.disable()
        validate()  # warm-up: discovery-index caches must not bill a mode
        # 9 end-to-end rounds per mode (not the usual 3): these rows are
        # context, but they should not smear ±20 % scheduler jitter over
        # a table whose whole point is a ~1 ms per-job increment
        rows = {"disabled": best_of(validate, rounds=9)}
        observability.enable()
        try:
            rows["enabled"] = best_of(validate, rounds=9)
            writer = TraceSegmentWriter(
                directory.trace_partition("bench"), "bench"
            )
            rows["federated"] = best_of(
                lambda: federated_job(writer), rounds=9
            )
            __, ops_seconds = best_of(
                lambda: federation_ops(writer), rounds=5
            )
        finally:
            observability.disable()
        return rows, ops_seconds

    rows, ops_seconds = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    baseline_report, baseline_seconds = rows["disabled"]
    table = []
    for mode, (report, seconds) in rows.items():
        # federation must never change validation output
        assert report.fingerprint() == baseline_report.fingerprint(), mode
        table.append((
            mode,
            f"{seconds:.3f}",
            f"{seconds / baseline_seconds - 1:+.1%}"
            if mode != "disabled" else "baseline",
        ))
    __, enabled_seconds = rows["enabled"]
    increment = ops_seconds / enabled_seconds
    emit(
        "federation_overhead",
        format_table(["Federation", "Seconds (best of 9)", "Overhead"], table)
        + f"\nfederation ops measured directly: {ops_seconds * 1e3:.2f} ms"
        f"/job = {increment:+.1%} of the enabled-mode scan"
        + f"\n(Type A corpus, {type_a_store.instance_count} instances, "
        "serial evaluation; federated = enabled + per-job span segment "
        "append + atomic snapshot export; fingerprints identical in "
        "every mode)",
    )

    # the federated run actually produced segments and a readable snapshot
    from repro.observability import load_snapshot, read_trace_segments

    segments = read_trace_segments(directory.trace_partition("bench"))
    assert segments and segments[-1]["trace_id"] == "job-bench"
    snapshot = load_snapshot(directory.metrics_snapshot("bench"))
    assert snapshot["stats"]["worker"] == "bench"

    if type_a_store.instance_count >= OVERHEAD_GATE_INSTANCES:
        assert 1 + increment < FEDERATION_OVERHEAD_CEILING, (
            f"federation ops add {increment:.1%} per job over the "
            f"enabled baseline, exceeding "
            f"{FEDERATION_OVERHEAD_CEILING - 1:.0%}"
        )


def test_endpoint_scrape_latency(benchmark, emit, tmp_path):
    """Every operator endpoint answers a scrape in single-digit ms."""
    import json
    import urllib.request

    from repro import SourceSpec, ValidationService
    from repro.jobs import JobService
    from repro.lifecycle import SpecLifecycleManager
    from repro.observability.server import ENDPOINTS

    spec = tmp_path / "specs.cpl"
    spec.write_text(
        "$fabric.Timeout -> int & [1, 60]\n"
        "$fabric.Retries -> int & [0, 5]\n"
        "$ghost.Missing -> int\n"
    )
    config = tmp_path / "prod.ini"
    config.write_text("[fabric]\nTimeout = 30\nRetries = 2\n")

    observability.enable()
    # every subsystem attached, so every path in ENDPOINTS answers 200
    # (without --jobs /jobs and /workers 404, without --shadow /specs does)
    service = ValidationService(
        str(spec), [SourceSpec("ini", str(config))],
        lifecycle=SpecLifecycleManager(),
    )
    service.attach_jobs(JobService(
        journal_path=str(tmp_path / "journal.jsonl"), workers=0,
    ))
    for __ in range(5):  # some history/analytics so bodies are non-trivial
        service.run_once()
    server = service.start_http()
    try:
        def scrape(path):
            with urllib.request.urlopen(server.url + path, timeout=10) as response:
                assert response.status == 200, path
                return response.read().decode("utf-8")

        def scrape_all():
            return {
                path: best_of(lambda p=path: scrape(p), rounds=5)
                for path in ENDPOINTS
            }

        scrape_all()  # warm-up: connection setup must not bill the table
        rows = benchmark.pedantic(scrape_all, rounds=1, iterations=1)
    finally:
        service.stop_http()
        service.jobs.close()
        observability.disable()

    table = []
    for path, (body, seconds) in rows.items():
        if path == "/metrics":
            parse_prometheus(body)
        else:
            json.loads(body)
        table.append((path, len(body), f"{seconds * 1e3:.2f}"))
    emit(
        "endpoint_scrape_latency",
        format_table(["Endpoint", "Body bytes", "ms (best of 5)"], table)
        + "\n(loopback HTTP, 5 scans of history, analytics+tracing enabled)",
    )


def test_exposition_scales_with_series(benchmark, emit):
    """Exposition stays linear and parsable as label cardinality grows."""
    from repro.observability import MetricsRegistry

    def expose(series):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "Ops.")
        histogram = registry.histogram("op_seconds", "Op latency.")
        for index in range(series):
            counter.inc(index + 1, source=f"src{index:04d}")
            histogram.observe(0.001 * (index % 40), source=f"src{index:04d}")
        return registry.to_prometheus()

    rows = []
    for series in (10, 100, 500):
        text, seconds = best_of(lambda s=series: expose(s))
        families = parse_prometheus(text)
        assert families["ops_total"]["type"] == "counter"
        samples = len(families["ops_total"]["samples"])
        assert samples == series
        rows.append((series, len(text.splitlines()), f"{seconds * 1e3:.2f}"))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(
        "observability_exposition",
        format_table(["Series", "Exposition lines", "ms (best of 3)"], rows),
    )
