"""Asynchronous job service throughput and queue-wait latency.

The paper's service sits inside a deployment workflow: many engineers
submit, a shared pool validates.  This bench drives that shape end to
end through the real :class:`~repro.jobs.service.JobService` — admission
control, durable journal, worker pool, spec-cache reuse — and reports,
per worker-pool size (1 / 4 / 8):

* **throughput** — completed validations per second, submission of the
  first job to completion of the last;
* **queue wait** — p50/p99 of each job's submission→start latency, the
  number an operator watches (``confvalley_job_wait_seconds``) to decide
  the pool is undersized.

Two shape claims are asserted on any machine:

* every job's verdict fingerprint equals the single direct ``validate``
  fingerprint — byte-identical results regardless of pool size or
  interleaving (the async path changes *when*, never *what*);
* the spec cache makes the corpus compile once per pool, not once per
  job (hits ≥ jobs - 1 after the first).

The throughput-scales-with-workers claim is only asserted with ≥4 cores
and the default corpus — at smoke scale the table still prints.

Run it alone with::

    PYTHONPATH=src python -m pytest benchmarks/bench_jobs.py -q
"""

from __future__ import annotations

import os
import time

from repro.benchutil import format_table
from repro.core.session import ValidationSession
from repro.jobs import JobService
from repro.jobs.model import report_fingerprint_digest
from repro.synthetic import EXPERT_SPECS
from repro.synthetic.azure import generate_type_a

WORKER_SIZES = (1, 4, 8)
#: submissions per pool size (smoke runs scale this down via the env)
JOB_COUNT = int(os.environ.get("REPRO_JOBS_N", "48"))
SCALE = float(os.environ.get("REPRO_SCALE_A", "0.35"))


def percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def build_corpus():
    """One synthetic Type-A payload + the expert spec, shared by every job."""
    dataset = generate_type_a(max(0.02, SCALE / 5))
    fmt, text, scope = dataset.sources[0]
    source = {"format": fmt, "text": text, "source": "bench.xml",
              "scope": scope}
    return EXPERT_SPECS["type_a"], source


def drive_pool(spec: str, source: dict, workers: int):
    service = JobService(workers=workers)
    try:
        started = time.perf_counter()
        ids = []
        for __ in range(JOB_COUNT):
            job, __created = service.submit(spec=spec, sources=[source])
            ids.append(job.id)
        jobs = [service.wait(job_id, timeout=600) for job_id in ids]
        elapsed = time.perf_counter() - started
        waits = [job.wait_seconds for job in jobs]
        stats = service.spec_cache.stats.as_dict()
        return jobs, elapsed, waits, stats
    finally:
        service.close()


def test_job_throughput_and_wait(emit):
    spec, source = build_corpus()

    session = ValidationSession()
    session.load_text(source["format"], source["text"],
                      source=source["source"], scope=source["scope"])
    expected = report_fingerprint_digest(session.validate(spec))

    rows = []
    throughput = {}
    for workers in WORKER_SIZES:
        jobs, elapsed, waits, cache = drive_pool(spec, source, workers)
        for job in jobs:
            assert job.state == "DONE", (job.state, job.error)
            assert job.result["fingerprint"] == expected
        # the corpus compiles at most once per worker (the first wave can
        # miss concurrently before any store lands), never once per job
        assert cache["misses"] <= workers, cache
        assert cache["hits"] + cache["misses"] == JOB_COUNT, cache
        throughput[workers] = len(jobs) / elapsed
        rows.append((
            workers,
            JOB_COUNT,
            f"{elapsed:.2f}",
            f"{throughput[workers]:.1f}",
            f"{percentile(waits, 0.50) * 1000:.0f}",
            f"{percentile(waits, 0.99) * 1000:.0f}",
        ))

    table = format_table(
        ("workers", "jobs", "total s", "jobs/s", "wait p50 ms", "wait p99 ms"),
        rows,
    )
    emit("jobs_throughput", table + (
        "\n\nEvery job's verdict fingerprint matched the direct validate run."
    ))

    if os.cpu_count() >= 4 and JOB_COUNT >= 48:
        assert throughput[4] > throughput[1], (
            "4 workers should out-drain 1 on a multi-core machine: "
            f"{throughput}"
        )
