"""Asynchronous job service throughput and queue-wait latency.

The paper's service sits inside a deployment workflow: many engineers
submit, a shared pool validates.  This bench drives that shape end to
end through the real :class:`~repro.jobs.service.JobService` — admission
control, durable journal, worker pool, spec-cache reuse — and reports,
per worker-pool size (1 / 4 / 8):

* **throughput** — completed validations per second, submission of the
  first job to completion of the last;
* **queue wait** — p50/p99 of each job's submission→start latency, the
  number an operator watches (``confvalley_job_wait_seconds``) to decide
  the pool is undersized.

Two shape claims are asserted on any machine:

* every job's verdict fingerprint equals the single direct ``validate``
  fingerprint — byte-identical results regardless of pool size or
  interleaving (the async path changes *when*, never *what*);
* the spec cache makes the corpus compile once per pool, not once per
  job (hits ≥ jobs - 1 after the first).

The throughput-scales-with-workers claim is only asserted with ≥4 cores
and the default corpus — at smoke scale the table still prints.

Run it alone with::

    PYTHONPATH=src python -m pytest benchmarks/bench_jobs.py -q
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.benchutil import format_table
from repro.core.session import ValidationSession
from repro.jobs import JobService
from repro.jobs.model import report_fingerprint_digest
from repro.synthetic import EXPERT_SPECS
from repro.synthetic.azure import generate_type_a

WORKER_SIZES = (1, 4, 8)
#: submissions per pool size (smoke runs scale this down via the env)
JOB_COUNT = int(os.environ.get("REPRO_JOBS_N", "48"))
SCALE = float(os.environ.get("REPRO_SCALE_A", "0.35"))

#: external worker *processes* per fleet size (multi-process mode)
PROC_SIZES = (1, 2, 4)
#: submissions per fleet size — smaller than the thread table because a
#: process-boundary job also pays journal/lease I/O per claim
PROC_JOB_COUNT = int(os.environ.get("REPRO_JOBS_PROC_N", "24"))


def percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def build_corpus():
    """One synthetic Type-A payload + the expert spec, shared by every job."""
    dataset = generate_type_a(max(0.02, SCALE / 5))
    fmt, text, scope = dataset.sources[0]
    source = {"format": fmt, "text": text, "source": "bench.xml",
              "scope": scope}
    return EXPERT_SPECS["type_a"], source


def drive_pool(spec: str, source: dict, workers: int):
    service = JobService(workers=workers)
    try:
        started = time.perf_counter()
        ids = []
        for __ in range(JOB_COUNT):
            job, __created = service.submit(spec=spec, sources=[source])
            ids.append(job.id)
        jobs = [service.wait(job_id, timeout=600) for job_id in ids]
        elapsed = time.perf_counter() - started
        waits = [job.wait_seconds for job in jobs]
        stats = service.spec_cache.stats.as_dict()
        return jobs, elapsed, waits, stats
    finally:
        service.close()


def test_job_throughput_and_wait(emit):
    spec, source = build_corpus()

    session = ValidationSession()
    session.load_text(source["format"], source["text"],
                      source=source["source"], scope=source["scope"])
    expected = report_fingerprint_digest(session.validate(spec))

    rows = []
    throughput = {}
    for workers in WORKER_SIZES:
        jobs, elapsed, waits, cache = drive_pool(spec, source, workers)
        for job in jobs:
            assert job.state == "DONE", (job.state, job.error)
            assert job.result["fingerprint"] == expected
        # the corpus compiles at most once per worker (the first wave can
        # miss concurrently before any store lands), never once per job
        assert cache["misses"] <= workers, cache
        assert cache["hits"] + cache["misses"] == JOB_COUNT, cache
        throughput[workers] = len(jobs) / elapsed
        rows.append((
            workers,
            JOB_COUNT,
            f"{elapsed:.2f}",
            f"{throughput[workers]:.1f}",
            f"{percentile(waits, 0.50) * 1000:.0f}",
            f"{percentile(waits, 0.99) * 1000:.0f}",
        ))

    table = format_table(
        ("workers", "jobs", "total s", "jobs/s", "wait p50 ms", "wait p99 ms"),
        rows,
    )
    emit("jobs_throughput", table + (
        "\n\nEvery job's verdict fingerprint matched the direct validate run."
    ))

    if os.cpu_count() >= 4 and JOB_COUNT >= 48:
        assert throughput[4] > throughput[1], (
            "4 workers should out-drain 1 on a multi-core machine: "
            f"{throughput}"
        )


def drive_worker_procs(spec: str, source: dict, procs: int):
    """One fleet size: coordinator + ``procs`` external worker processes.

    The coordinator runs no in-process pool (``workers=0``) so every job
    crosses the process boundary: lease claim, partitioned journal
    append, reaper absorb.  Timing starts only once every worker process
    has announced itself — fleet cold-start is a separate number from
    steady-state throughput.
    """
    root = tempfile.mkdtemp(prefix=f"confvalley-bench-procs{procs}-")
    service = JobService(
        journal_dir=root, workers=0, worker_procs=procs,
        lease_ttl=10.0, reaper_interval=0.05, worker_poll=0.02,
    )
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            alive = [row for row in service.leases.workers() if row["alive"]]
            if len(alive) >= procs:
                break
            time.sleep(0.05)
        else:
            raise AssertionError(f"{procs} worker processes never announced")
        started = time.perf_counter()
        ids = []
        for __ in range(PROC_JOB_COUNT):
            job, __created = service.submit(spec=spec, sources=[source])
            ids.append(job.id)
        jobs = [service.wait(job_id, timeout=600) for job_id in ids]
        elapsed = time.perf_counter() - started
        return jobs, elapsed
    finally:
        service.close()


def test_worker_process_scaling(emit):
    """Throughput table for 1 / 2 / 4 external worker processes.

    Process workers escape the GIL entirely, so on a multi-core machine
    two of them must clearly out-drain one (≥ 1.6×) — that floor is the
    acceptance gate for the multi-process execution layer.
    """
    spec, source = build_corpus()

    session = ValidationSession()
    session.load_text(source["format"], source["text"],
                      source=source["source"], scope=source["scope"])
    expected = report_fingerprint_digest(session.validate(spec))

    rows = []
    throughput = {}
    for procs in PROC_SIZES:
        jobs, elapsed = drive_worker_procs(spec, source, procs)
        workers_used = set()
        for job in jobs:
            assert job.state == "DONE", (job.state, job.error)
            assert job.result["fingerprint"] == expected, (
                "cross-process verdict diverged from the direct run"
            )
            assert job.requeues == 0, job.requeues
            workers_used.add(job.worker)
        throughput[procs] = len(jobs) / elapsed
        rows.append((
            procs,
            PROC_JOB_COUNT,
            len(workers_used),
            f"{elapsed:.2f}",
            f"{throughput[procs]:.1f}",
            f"{throughput[procs] / throughput[PROC_SIZES[0]]:.2f}x",
        ))

    table = format_table(
        ("procs", "jobs", "procs used", "total s", "jobs/s", "speedup"),
        rows,
    )
    emit("workers_scaling", table + (
        f"\n\nmachine: {os.cpu_count()} core(s) — the 2-proc >= 1.6x "
        "floor is asserted on >= 4 cores.\nEvery cross-process verdict "
        "fingerprint matched the direct validate run;\nno job was "
        "re-queued (no lease expired under healthy workers)."
    ))

    if os.cpu_count() >= 4 and PROC_JOB_COUNT >= 24:
        assert throughput[2] >= 1.6 * throughput[1], (
            "2 worker processes should deliver >= 1.6x the throughput of "
            f"1 on a multi-core machine: {throughput}"
        )
