"""Table 8 — validation latency: sequential vs 10-way partitioned.

Paper Table 8 validates three configuration types (44k / 1.97M / 1.5k
instances) sequentially and then "splitting the specifications into 10
pieces, validating each piece in parallel, and measuring the (min, median,
max) validation time of the 10 jobs".  Sequential max was ~9 minutes;
partitioning cut the max to 3.5 minutes — sub-linear "because some
specifications are more complex than others".

We run the same protocol on the synthetic snapshots: Type A uses inferred
(optimized) specs, Type B the human-written corpus, Type C inferred specs —
mirroring the paper's "Source" column — and report sequential and
P10 min/median/max.  Parallel wall clock equals the P10 max (each partition
is an independent job; timing them one at a time avoids GIL distortion).

Shape claims: P10.max < sequential time on the heavy types; speedup is
sub-linear (P10.max > sequential/10).
"""

from __future__ import annotations

import statistics

import pytest

from repro import InferenceEngine, ValidationSession
from repro.benchutil import format_table
from repro.synthetic import EXPERT_SPECS


@pytest.fixture(scope="module")
def workloads(type_a_store, type_b_store, type_c_store):
    engine = InferenceEngine()
    return {
        "Type A": (type_a_store, engine.infer(type_a_store).to_cpl(),
                   "Inferred, optimized", True),
        "Type B": (type_b_store, EXPERT_SPECS["type_b"], "Human-written", True),
        "Type C": (type_c_store, engine.infer(type_c_store).to_cpl(),
                   "Inferred", False),
    }


def run_protocol(workloads):
    rows = []
    checks = {}
    for label, (store, spec_text, source, optimize) in workloads.items():
        session = ValidationSession(store=store, optimize=optimize)
        sequential = session.validate(spec_text)
        partitions = session.validate_partitioned(spec_text, partitions=10)
        times = [elapsed for __, elapsed in partitions]
        spec_count = sum(r.specs_evaluated for r, __ in partitions)
        rows.append((
            label,
            store.instance_count,
            spec_count,
            source,
            f"{sequential.elapsed_seconds:.3f}",
            f"{min(times):.3f}",
            f"{statistics.median(times):.3f}",
            f"{max(times):.3f}",
        ))
        checks[label] = (sequential.elapsed_seconds, times)
    return rows, checks


def test_table8_report(benchmark, emit, workloads):
    rows, checks = benchmark.pedantic(run_protocol, args=(workloads,),
                                      rounds=1, iterations=1)
    emit(
        "table8_validation_latency",
        format_table(
            ["Config.", "Instances", "Specs", "Source", "Sequential",
             "P10.Min", "P10.Median", "P10.Max"],
            rows,
        )
        + "\n(times in seconds; parallel wall clock = P10.Max)",
    )
    for label, (sequential, times) in checks.items():
        if sequential < 0.2:
            continue  # too fast for stable speedup claims (paper's Type C row)
        # partitioning helps, but sub-linearly
        assert max(times) < sequential, label
        assert max(times) > sequential / 10, label


@pytest.mark.parametrize("label", ["Type A", "Type B", "Type C"])
def test_table8_sequential_speed(benchmark, label, workloads):
    store, spec_text, __, optimize = workloads[label]
    session = ValidationSession(store=store, optimize=optimize)
    statements = session.prepare(spec_text)
    report = benchmark.pedantic(
        session.validate_statements, args=(statements,), rounds=2, iterations=1
    )
    assert report.specs_evaluated > 0
