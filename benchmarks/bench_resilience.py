"""Resilience — supervision overhead and chaos-mode service behavior.

Two claims behind the fault-tolerant pipeline are measured:

* **Supervision is cheap and invisible** — running the thread executor
  under per-shard supervision (generous timeout, nothing fails) produces a
  report with the *same fingerprint* as unsupervised serial evaluation,
  and the overhead of the watchdog layer is reported; recovery from a
  deliberately wedged shard (timeout → serial re-run) is timed as well and
  still yields the identical report.
* **Chaos runs are survivable and replayable** — a resilient service
  scanning the Type-C corpus under a seeded
  :class:`~repro.resilience.FaultPlan` completes every scan, and the same
  seed reproduces the same per-scan health sequence.

Run it alone with::

    PYTHONPATH=src python -m pytest benchmarks/bench_resilience.py -q
"""

from __future__ import annotations

import time

from repro import (
    FaultPlan,
    FaultyRuntimeProvider,
    ParallelValidator,
    ResiliencePolicy,
    SourceSpec,
    ValidationService,
    parse,
)
from repro.benchutil import format_table
from repro.core.compiler import optimize_statements
from repro.parallel import partition_statements
from repro.synthetic import EXPERT_SPECS

MAX_SHARDS = 8
CHAOS_SCANS = 10
CHAOS_SEED = 17
CHAOS_RATES = dict(
    io_error_rate=0.06,
    not_found_rate=0.06,
    truncate_rate=0.08,
    garbage_rate=0.06,
)


class WedgeExecutor:
    """Wedges (sleeps past the timeout) every time one shard is attempted."""

    name = "wedge"

    def __init__(self, wedge_label, delay):
        self.wedge_label = wedge_label
        self.delay = delay

    def run(self, state, shards):
        from repro.parallel.engine import evaluate_shard

        out = []
        for shard in shards:
            if shard.label == self.wedge_label:
                time.sleep(self.delay)
            out.append(evaluate_shard(state, shard))
        return out


def timed(fn, *args, **kwargs):
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started


def run_supervision_modes(store, statements):
    def validate(**kwargs):
        return ParallelValidator(
            store, max_shards=MAX_SHARDS, **kwargs
        ).validate_statements(statements)

    rows = {}
    rows["serial"] = timed(validate, executor="serial")
    rows["thread"] = timed(validate, executor="thread")
    rows["thread+supervised"] = timed(
        validate, executor="thread", shard_timeout=60.0
    )
    __, shards = partition_statements(statements, MAX_SHARDS)
    rows["wedged→serial-rerun"] = timed(
        validate,
        executor=WedgeExecutor(shards[0].label, delay=0.5),
        shard_timeout=0.1,
        shard_retries=1,
    )
    return rows


def test_supervision_overhead(benchmark, emit, type_a_store):
    statements = optimize_statements(
        list(parse(EXPERT_SPECS["type_a"]).statements)
    )
    rows = benchmark.pedantic(
        run_supervision_modes,
        args=(type_a_store, statements),
        rounds=1,
        iterations=1,
    )
    baseline_report, baseline_seconds = rows["serial"]
    table = []
    for mode, (report, seconds) in rows.items():
        assert report.fingerprint() == baseline_report.fingerprint()
        table.append((
            mode,
            report.health.status,
            len(report.health.shard_failures),
            f"{seconds:.3f}",
            f"{seconds / baseline_seconds:.2f}x",
        ))
    emit(
        "resilience_supervision",
        format_table(
            ["Mode", "Health", "Shard failures", "Seconds", "vs serial"], table
        )
        + f"\n(Type A corpus, {type_a_store.instance_count} instances; every "
        "mode's report fingerprint is identical to serial)",
    )
    # the wedged run must have walked the ladder to a serial re-run
    wedged_report, __ = rows["wedged→serial-rerun"]
    assert wedged_report.health.shard_failures
    assert wedged_report.health.shard_failures[0]["recovered"] == "serial"


def build_chaos_service(tmp_path, dataset, seed):
    sources = []
    paths = set()
    for index, (format_name, text, scope) in enumerate(dataset.sources):
        path = tmp_path / f"env{index:02d}.ini"
        path.write_text(text)
        sources.append(SourceSpec(format_name, str(path), scope))
        paths.add(str(path))
    spec = tmp_path / "spec.cpl"
    spec.write_text(EXPERT_SPECS["type_c"])
    plan = FaultPlan(seed=seed, only_paths=paths, **CHAOS_RATES)
    service = ValidationService(
        str(spec),
        sources,
        runtime=FaultyRuntimeProvider(plan),
        resilience=ResiliencePolicy(),
    )
    return service, plan


def run_chaos(tmp_path, dataset, seed):
    service, plan = build_chaos_service(tmp_path, dataset, seed)
    statuses = []
    started = time.perf_counter()
    for __ in range(CHAOS_SCANS):
        statuses.append(service.run_once().health.status)
    return statuses, plan, time.perf_counter() - started


def test_chaos_service(benchmark, emit, tmp_path_factory, type_c_dataset):
    statuses, plan, seconds = benchmark.pedantic(
        run_chaos,
        args=(tmp_path_factory.mktemp("chaos-bench"), type_c_dataset, CHAOS_SEED),
        rounds=1,
        iterations=1,
    )
    # replayability: an identical run sees the identical health sequence
    replay, __, __ = run_chaos(
        tmp_path_factory.mktemp("chaos-replay"), type_c_dataset, CHAOS_SEED
    )
    assert replay == statuses
    counts = {status: statuses.count(status) for status in sorted(set(statuses))}
    rows = [
        ("scans completed", f"{len(statuses)}/{CHAOS_SCANS}"),
        ("health sequence", " ".join(s[0] for s in statuses)),
        ("status counts", ", ".join(f"{k}={v}" for k, v in counts.items())),
        ("faults injected", len(plan.injected)),
        ("reads issued", plan.reads),
        ("total seconds", f"{seconds:.3f}"),
        ("replay identical", "yes"),
    ]
    emit(
        "resilience_chaos",
        format_table(["Metric", "Value"], rows)
        + f"\n(Type C corpus, seed {CHAOS_SEED}; O=OK D=DEGRADED F=FAILED)",
    )
    assert len(statuses) == CHAOS_SCANS
