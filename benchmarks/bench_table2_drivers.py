"""Table 2 — driver code size per configuration format, plus parse throughput.

Paper Table 2 reports the lines of driver code needed to convert each Azure
configuration format into the unified representation (400 LoC for generic
XML down to 30 for the simplest).  We report the same metric for our seven
drivers and benchmark each driver's parse throughput on a matching sample.

Shape claim: the generic XML driver is the largest; simple flat formats
need a small fraction of its code.
"""

from __future__ import annotations

import inspect

import pytest

from repro.drivers import (
    CSVDriver,
    EnvFileDriver,
    INIDriver,
    JSONDriver,
    KeyValueDriver,
    RESTDriver,
    TOMLDriver,
    XMLDriver,
    YAMLDriver,
    get_driver,
    register_endpoint,
)

from repro.benchutil import format_table

_DRIVERS = {
    "Generic XML settings": XMLDriver,
    "INI": INIDriver,
    "Key-value": KeyValueDriver,
    "JSON": JSONDriver,
    "YAML": YAMLDriver,
    "TOML": TOMLDriver,
    "Dotenv": EnvFileDriver,
    "CSV": CSVDriver,
    "REST (simulated)": RESTDriver,
}


def module_loc(cls) -> int:
    source = inspect.getsource(inspect.getmodule(cls))
    count = 0
    in_docstring = False
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith('"""') or stripped.endswith('"""'):
            in_docstring = (
                not in_docstring if stripped.count('"""') % 2 == 1 else in_docstring
            )
            continue
        if in_docstring or not stripped or stripped.startswith("#"):
            continue
        count += 1
    return count


def test_table2_driver_loc(benchmark, emit):
    rows = benchmark(
        lambda: [(name, module_loc(cls)) for name, cls in _DRIVERS.items()]
    )
    emit("table2_driver_loc", format_table(["Config. format", "Driver (LOC)"], rows))
    by_name = dict(rows)
    # shape: generic XML is the biggest driver, flat formats are much smaller
    assert by_name["Generic XML settings"] == max(by_name.values())
    assert by_name["Key-value"] * 2 <= by_name["Generic XML settings"]


_SAMPLES = {
    "xml": "<C Name='c'>" + "".join(
        f"<Setting Key='K{i}' Value='{i}'/>" for i in range(50)
    ) + "</C>",
    "ini": "[s]\n" + "\n".join(f"K{i} = {i}" for i in range(50)),
    "keyvalue": "\n".join(f"S::c.K{i} = {i}" for i in range(50)),
    "json": "{\"s\": {" + ", ".join(f'"K{i}": {i}' for i in range(50)) + "}}",
    "yaml": "s:\n" + "\n".join(f"  K{i}: {i}" for i in range(50)),
    "toml": "[s]\n" + "\n".join(f"K{i} = {i}" for i in range(50)),
    "env": "\n".join(f'K{i}="{i}"' for i in range(50)),
    "csv": "Name,A,B\n" + "\n".join(f"r{i},{i},{i}" for i in range(25)),
}


@pytest.mark.parametrize("format_name", sorted(_SAMPLES))
def test_table2_parse_throughput(benchmark, format_name):
    driver = get_driver(format_name)
    text = _SAMPLES[format_name]
    result = benchmark(driver.parse, text)
    assert len(result) >= 25


def test_table2_rest_throughput(benchmark):
    register_endpoint("bench:443", {"s": {f"K{i}": i for i in range(50)}})
    driver = get_driver("rest")
    result = benchmark(driver.parse, "bench:443")
    assert len(result) == 50
