"""End-to-end smoke test of composable validation workflows.

Drives the whole surface the way an operator would:

1. ``confvalley workflow validate`` checks the definition and prints the
   step graph;
2. ``confvalley workflow run`` on a clean corpus passes (exit 0) with the
   violation-gated webhook step skipped;
3. an injected fault (``debug = true`` in a production store) flips the
   run to exit 1: the cross-store rule pack fires, the ``on_pass`` deploy
   gate skips, and the webhook step POSTs the failure to a real local
   HTTP receiver;
4. the same pure-validation pipeline submitted as a ``mode=workflow`` job
   against a live ``service --http --jobs`` subprocess finishes DONE with
   per-step statuses in the job record and a verdict fingerprint
   **byte-identical** to a direct in-process scan;
5. SIGTERM shuts the service down cleanly.

Run directly (``make workflow-smoke``)::

    PYTHONPATH=src python benchmarks/workflow_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from http.server import BaseHTTPRequestHandler, HTTPServer
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.session import ValidationSession  # noqa: E402
from repro.jobs.model import report_fingerprint_digest  # noqa: E402

ANNOUNCEMENT = re.compile(r"operator endpoint: (http://\S+)")
STARTUP_DEADLINE = 30.0
SHUTDOWN_DEADLINE = 15.0

APP_JSON = json.dumps(
    {
        "database": {"host": "db.internal", "pool_size": "10"},
        "environment": "production",
        "debug": "false",
    },
    indent=2,
)
SPEC = (
    "$database.pool_size -> int & [1, 64]\n"
    "$debug -> in('true', 'false')\n"
)
RULES = """\
rulepack:
  name: smoke-rules
rules:
  - id: no-debug-in-prod
    kind: forbid
    severity: error
    key: debug
    equals: "true"
    when: {key: environment, equals: production}
"""


def cli(args, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    return subprocess.run(
        [
            sys.executable, "-c",
            "import sys; from repro.console.cli import main; "
            "sys.exit(main(sys.argv[1:]))",
            *args,
        ],
        env=env, capture_output=True, text=True, timeout=120, **kwargs,
    )


class _Receiver(BaseHTTPRequestHandler):
    payloads: list = []

    def do_POST(self):
        length = int(self.headers.get("Content-Length", 0))
        _Receiver.payloads.append(json.loads(self.rfile.read(length)))
        self.send_response(200)
        self.end_headers()

    def log_message(self, *args):
        pass


def wait_for_announcement(stderr) -> str:
    deadline = time.monotonic() + STARTUP_DEADLINE
    while time.monotonic() < deadline:
        line = stderr.readline()
        if not line:
            raise AssertionError("service exited before announcing its URL")
        sys.stderr.write(line)
        match = ANNOUNCEMENT.search(line)
        if match:
            return match.group(1)
    raise AssertionError("no endpoint announcement within deadline")


def statuses(record: dict) -> dict:
    return {step["name"]: step["status"] for step in record["steps"]}


def main() -> int:
    workspace = Path(tempfile.mkdtemp(prefix="confvalley-workflow-smoke-"))
    (workspace / "app.json").write_text(APP_JSON)
    (workspace / "app.cpl").write_text(SPEC)
    (workspace / "rules.yaml").write_text(RULES)

    receiver = HTTPServer(("127.0.0.1", 0), _Receiver)
    threading.Thread(target=receiver.serve_forever, daemon=True).start()
    hook = f"http://127.0.0.1:{receiver.server_port}/hook"

    flow = workspace / "flow.yaml"
    flow.write_text(
        "workflow:\n  name: smoke\n"
        "steps:\n"
        "  - name: parse\n"
        "    sources:\n"
        "      - {format: json, path: app.json}\n"
        "  - name: validate\n"
        "    spec: app.cpl\n"
        "  - name: cross_check\n"
        "    rulepack: rules.yaml\n"
        "  - name: deploy_gate\n"
        "    kind: report\n"
        "    gate: on_pass\n"
        "  - name: webhook\n"
        "    gate: on_violation\n"
        "    after: cross_check\n"
        f"    url: {hook}\n"
    )

    # 1. the definition validates and the step graph prints
    result = cli(["workflow", "validate", str(flow)])
    assert result.returncode == 0, result.stderr
    assert "5 step(s) OK" in result.stdout, result.stdout
    assert "gate=on_pass" in result.stdout
    print("ok workflow validate -> step graph")

    # 2. clean corpus: pass, webhook (violation-gated) skipped
    result = cli(["workflow", "run", str(flow), "--json"])
    assert result.returncode == 0, result.stderr
    record = json.loads(result.stdout)
    assert record["passed"] is True, record
    assert statuses(record) == {
        "parse": "ok", "validate": "ok", "cross_check": "ok",
        "deploy_gate": "ok", "webhook": "skipped",
    }, statuses(record)
    assert not _Receiver.payloads
    print("ok clean run -> exit 0, webhook gated off")

    # 3. injected fault: rule pack fires, deploy gate skips, webhook posts
    (workspace / "app.json").write_text(APP_JSON.replace('"false"', '"true"'))
    result = cli(["workflow", "run", str(flow), "--json"])
    assert result.returncode == 1, (result.returncode, result.stderr)
    record = json.loads(result.stdout)
    assert record["passed"] is False
    assert statuses(record) == {
        "parse": "ok", "validate": "ok", "cross_check": "ok",
        "deploy_gate": "skipped", "webhook": "ok",
    }, statuses(record)
    violations = record["report"]["violations"]
    assert any(v["constraint"] == "no-debug-in-prod" for v in violations), (
        violations
    )
    assert _Receiver.payloads and _Receiver.payloads[0]["passed"] is False
    assert _Receiver.payloads[0]["workflow"] == "smoke"
    print("ok injected fault -> exit 1, gate skip, webhook delivered")

    # 4. the pure pipeline as an asynchronous job: per-step statuses in
    # the job record, fingerprint parity with a direct in-process scan
    (workspace / "app.json").write_text(APP_JSON)
    pure = workspace / "pure.yaml"
    pure.write_text(
        "workflow:\n  name: pure\n"
        "steps:\n"
        "  - name: parse\n"
        "    sources:\n"
        f"      - {{format: json, path: {workspace / 'app.json'}}}\n"
        "  - name: validate\n"
        f"    spec: {workspace / 'app.cpl'}\n"
        "  - name: report\n"
        "    gate: always\n"
    )
    session = ValidationSession()
    session.load_source("json", str(workspace / "app.json"))
    expected = report_fingerprint_digest(session.validate(SPEC))

    spec = workspace / "service.cpl"
    spec.write_text(SPEC)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    process = subprocess.Popen(
        [
            sys.executable, "-c",
            "import sys; from repro.console.cli import main; "
            "sys.exit(main(sys.argv[1:]))",
            "service", str(spec),
            "--source", f"json:{workspace / 'app.json'}",
            "--http", "127.0.0.1:0",
            "--jobs", "--workers", "2",
            "--interval", "0.2",
        ],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )
    try:
        base = wait_for_announcement(process.stderr).rstrip("/")

        result = cli([
            "submit", "--workflow", str(pure), "--url", base,
            "--wait", "--poll", "0.1", "--json",
        ])
        assert result.returncode == 0, result.stderr
        job = json.loads(result.stdout)
        assert job["state"] == "DONE", job
        assert job["result"]["verdict"] == "admit", job
        assert statuses(job["result"]["workflow"]) == {
            "parse": "ok", "validate": "ok", "report": "ok",
        }
        assert job["result"]["fingerprint"] == expected, (
            "workflow job verdict diverged from the direct scan"
        )
        print(f"ok workflow job -> DONE, fingerprint parity ({job['id']})")

        # the job record itself carries the per-step statuses
        with urllib.request.urlopen(f"{base}/jobs/{job['id']}") as response:
            fetched = json.loads(response.read())
        assert fetched["workflow_steps"], fetched
        assert {s["name"] for s in fetched["workflow_steps"]} == {
            "parse", "validate", "report",
        }
        print("ok GET /jobs/<id> -> per-step statuses")

        # 5. clean SIGTERM shutdown
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=SHUTDOWN_DEADLINE) == 0
        print("ok SIGTERM -> clean shutdown")
    finally:
        if process.poll() is None:
            process.kill()
        receiver.shutdown()

    print("workflow smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
