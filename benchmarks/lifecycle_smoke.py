"""End-to-end smoke test of the inferred-spec lifecycle.

Starts ``confvalley service --shadow`` as a *subprocess* (exactly as the
runbook in docs/OPERATIONS.md §4g describes) and drives the full arc
over the real HTTP surface and the real CLI:

* re-inference on the first scan registers candidates in SHADOW;
* clean scans promote a candidate to ENFORCED (``--promote-after 2``);
* an induced drift (the config key stops being an int) makes the now
  *enforced* spec fail the verdict and demotes it back to SHADOW on the
  same scan;
* the operator re-promotes the survivor through ``confvalley specs``
  after fixing the config, and the override lands in the history with
  ``actor=operator``;
* SIGTERM shuts down cleanly, and a *second* service started on the
  same ``--lifecycle-journal`` replays the exact enforced set — the
  restart-determinism guarantee across a real process boundary.

Run directly (``make lifecycle-smoke``)::

    PYTHONPATH=src python benchmarks/lifecycle_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

ANNOUNCEMENT = re.compile(r"operator endpoint: (http://\S+)")
STARTUP_DEADLINE = 30.0
POLL_DEADLINE = 30.0
SHUTDOWN_DEADLINE = 10.0

SPEC = "$fabric.Name -> nonempty\n"
CONFIG = "[fabric]\nTimeout = {timeout}\nName = web\n"


def wait_for_announcement(stderr) -> str:
    deadline = time.monotonic() + STARTUP_DEADLINE
    while time.monotonic() < deadline:
        line = stderr.readline()
        if not line:
            raise AssertionError("service exited before announcing its URL")
        sys.stderr.write("service| " + line)
        match = ANNOUNCEMENT.search(line)
        if match:
            return match.group(1).rstrip("/")
    raise AssertionError("no endpoint announcement within deadline")


def drain(stderr) -> None:
    """Keep the subprocess's stderr pipe from filling up."""
    import threading

    def pump():
        for line in stderr:
            sys.stderr.write("service| " + line)

    threading.Thread(target=pump, daemon=True).start()


def get_json(url: str):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


def poll(predicate, what: str, deadline: float = POLL_DEADLINE):
    """Poll ``predicate()`` until it returns a truthy value."""
    until = time.monotonic() + deadline
    while time.monotonic() < until:
        value = predicate()
        if value:
            return value
        time.sleep(0.15)
    raise AssertionError(f"timed out waiting for {what}")


def rewrite(path: Path, text: str) -> None:
    path.write_text(text)
    stat = os.stat(path)
    os.utime(path, ns=(stat.st_atime_ns + 1_000_000,
                       stat.st_mtime_ns + 1_000_000))


def start_service(spec: Path, config: Path, journal: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [
            sys.executable, "-c",
            "import sys; from repro.console.cli import main; "
            "sys.exit(main(sys.argv[1:]))",
            "service", str(spec),
            "--source", f"ini:{config}",
            "--http", "127.0.0.1:0",
            "--shadow", "--promote-after", "2", "--demote-drift", "0.05",
            "--lifecycle-journal", str(journal),
            "--interval", "0.1",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    base = wait_for_announcement(process.stderr)
    drain(process.stderr)
    return process, base


def run_cli(*args: str) -> tuple[int, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    completed = subprocess.run(
        [
            sys.executable, "-c",
            "import sys; from repro.console.cli import main; "
            "sys.exit(main(sys.argv[1:]))",
            *args,
        ],
        env=env, capture_output=True, text=True, timeout=30,
    )
    return completed.returncode, completed.stdout + completed.stderr


def stop(process) -> None:
    process.send_signal(signal.SIGTERM)
    code = process.wait(timeout=SHUTDOWN_DEADLINE)
    assert code == 0, f"service exited {code} on SIGTERM"


def enforced_ids(base: str) -> list[str]:
    status, body = get_json(base + "/specs?state=enforced")
    assert status == 200, body
    return sorted(record["id"] for record in body["specs"])


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="confvalley-lifecycle-smoke-"))
    spec = workdir / "spec.cpl"
    config = workdir / "conf.ini"
    journal = workdir / "lifecycle.jsonl"
    spec.write_text(SPEC)
    config.write_text(CONFIG.format(timeout=30))

    process, base = start_service(spec, config, journal)
    try:
        # 1. re-inference on the first scan registered SHADOW candidates
        body = poll(
            lambda: (get_json(base + "/specs")[1] or {}).get("specs"),
            "shadow candidates from the first scan",
        )
        target = next(
            record["id"] for record in body
            if record["kind"] == "type" and record["id"].endswith("Timeout")
        )
        print(f"ok candidates registered ({len(body)} specs, "
              f"watching {target})")

        # 2. clean scans promote (each edit forces a scan; values stay int)
        timeout_value = 31

        def promoted():
            nonlocal timeout_value
            if target in enforced_ids(base):
                return True
            rewrite(config, CONFIG.format(timeout=timeout_value))
            timeout_value += 1
            return False

        poll(promoted, f"promotion of {target}")
        print(f"ok {target} promoted after clean scans")

        # 3. induced drift: the key stops being an int → the *enforced*
        #    spec fails the verdict and is demoted on the same scan
        rewrite(config, "[fabric]\nTimeout = not-an-int\nName = web\n")
        poll(
            lambda: get_json(base + f"/specs/{target}")[1]["state"] == "SHADOW",
            f"demotion of {target}",
        )
        status, record = get_json(base + f"/specs/{target}")
        assert status == 200
        assert record["demotions"] == 1, record
        assert record["last_drift"] > 0.05, record
        print(f"ok {target} demoted on drift "
              f"(last_drift={record['last_drift']:.3f})")

        # 4. fix the config, then operator-promote the survivor via the CLI
        rewrite(config, CONFIG.format(timeout=40))
        poll(
            lambda: get_json(base + "/stats")[1]["lifecycle"]["scan_seq"] > 0
            and get_json(base + f"/specs/{target}")[1]["last_drift"] == 0.0,
            "a clean scan after the fix",
        )
        code, output = run_cli("specs", base, "promote", target)
        assert code == 0, output
        assert "ENFORCED" in output, output
        status, record = get_json(base + f"/specs/{target}")
        assert record["state"] == "ENFORCED"
        assert record["history"][-1]["actor"] == "operator", record["history"]
        print(f"ok {target} re-promoted by operator via CLI")

        # 5. the listing CLI renders the population
        code, output = run_cli("specs", base, "list")
        assert code == 0 and target in output, output

        before = enforced_ids(base)
        assert target in before
        stop(process)
        print("ok clean shutdown on SIGTERM")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=5)

    # 6. restart on the same journal reproduces the enforced set exactly
    process, base = start_service(spec, config, journal)
    try:
        after = poll(lambda: enforced_ids(base), "replayed enforced set")
        assert after == before, f"enforced set diverged: {after} != {before}"
        status, record = get_json(base + f"/specs/{target}")
        assert record["state"] == "ENFORCED"
        assert record["history"][-1]["actor"] == "operator"
        print(f"ok restart replayed {len(after)} enforced spec(s), "
              "operator override included")
        stop(process)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=5)

    print("lifecycle smoke: OK (infer -> shadow -> promote -> drift -> "
          "demote -> operator re-promote -> restart determinism)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
