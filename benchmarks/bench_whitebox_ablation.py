"""Ablation — black-box inference vs black-box + white-box combination.

Paper §6.3: inferred-spec inaccuracies "come from insufficient samples for
a configuration and from suboptimal heuristics … We also plan to explore
whether the heavy-weight white-box solutions can be efficiently combined in
our inference component to improve accuracy."  §6.4 names the two
false-positive mechanisms: an incomplete inferred value range, and a scalar
observation whose "true types are a list of IP address".

This bench measures that combination: constraints extracted from the
synthetic application source (`repro.synthetic.appsource`, whose guards
encode the parameters' true valid ranges and list-ness) are merged into the
black-box result, and both corpora run on branches carrying true errors
plus exactly those benign-drift mechanisms.

Shape claims: the combined corpus eliminates the range-drift and
scalar-to-list false positives while catching every true error the
black-box corpus caught.
"""

from __future__ import annotations

import pytest

from repro import InferenceEngine, ValidationSession
from repro.benchutil import format_table
from repro.inference import combine, extract_constraints
from repro.synthetic import FaultInjector, generate_app_source, score_report

from conftest import TYPE_A_SCALE

TRUE_BATCH = ["wrong_type", "empty_required", "enum_typo", "duplicate_unique",
              "inconsistent_value", "low_replica_count"]
BENIGN_BATCH = ["range_drift", "scalar_to_list", "range_drift"]


@pytest.fixture(scope="module")
def corpora(type_a_store):
    blackbox = InferenceEngine().infer(type_a_store)
    code_constraints = extract_constraints(
        generate_app_source(TYPE_A_SCALE, seed=42)
    )
    combined = combine(blackbox, code_constraints)
    return blackbox, combined, len(code_constraints)


@pytest.fixture(scope="module")
def branches(type_a_dataset):
    base = type_a_dataset.parse()
    return [
        FaultInjector(base, seed=300 + index).make_branch(
            f"branch-{index}", TRUE_BATCH, BENIGN_BATCH
        )
        for index in range(3)
    ]


def test_whitebox_ablation(benchmark, emit, corpora, branches):
    blackbox, combined, code_count = corpora

    def run_all():
        rows = {}
        for label, corpus in (("black-box only", blackbox),
                              ("black-box + white-box", combined)):
            cpl = corpus.to_cpl()
            caught = reported = false_positives = 0
            for branch in branches:
                report = ValidationSession(store=branch.build_store()).validate(cpl)
                score = score_report(report, branch)
                caught += score.true_errors_caught
                reported += score.reported
                false_positives += score.false_positives
            rows[label] = (reported, caught, false_positives)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "whitebox_ablation",
        format_table(
            ["Inference", "Reported", "True errors caught", "False positives"],
            [(label,) + values for label, values in rows.items()],
        )
        + f"\n({code_count} constraints extracted from application source)",
    )
    bb_reported, bb_caught, bb_fp = rows["black-box only"]
    cb_reported, cb_caught, cb_fp = rows["black-box + white-box"]
    # black-box alone misfires on the benign drift …
    assert bb_fp >= 3
    # … the code-informed combination does not …
    assert cb_fp < bb_fp
    assert cb_fp == 0
    # … while catching at least as many true errors
    assert cb_caught >= bb_caught


def test_combined_corpus_clean_on_good_snapshot(benchmark, corpora, type_a_store):
    __, combined, __count = corpora
    session = ValidationSession(store=type_a_store)
    statements = session.prepare(combined.to_cpl())
    report = benchmark.pedantic(
        session.validate_statements, args=(statements,), rounds=1, iterations=1
    )
    assert report.passed, report.render(limit=5)
