"""Table 4 — rewriting OpenStack (Rubick) and CloudStack validation in CPL.

Paper Table 4: OpenStack's Rubick checks (480 LoC Python) become 40 CPL LoC
in 19 specs; CloudStack's in-source Java checks (340 LoC) become 18 CPL LoC
in 15 specs; both translated in ~1-1.5 man-hours.

We compare the executable Rubick-style / CloudStack-style baselines
(:mod:`repro.synthetic.opensource`) against their CPL corpora, assert
functional equivalence on clean data, and benchmark the CPL runs.

Shape claim: ≥3× LoC reduction on both systems (paper shows 12×/19×).
"""

from __future__ import annotations

import pytest

from repro import ValidationSession
from repro.benchutil import count_spec_statements as count_specs
from repro.benchutil import format_table
from repro.synthetic import (
    CLOUDSTACK_SPECS,
    OPENSTACK_SPECS,
    opensource_imperative_loc,
    spec_loc,
    validate_cloudstack,
    validate_openstack,
)


def rows_for(openstack_store, cloudstack_store):
    rows = []
    for label, name, spec_text in (
        ("OpenStack", "openstack", OPENSTACK_SPECS),
        ("CloudStack", "cloudstack", CLOUDSTACK_SPECS),
    ):
        original = opensource_imperative_loc(name)
        cpl = spec_loc(spec_text)
        rows.append((label, original, cpl, count_specs(spec_text),
                     f"{original / cpl:.1f}x"))
    return rows


def test_table4_report(benchmark, emit, openstack_store, cloudstack_store):
    rows = benchmark(rows_for, openstack_store, cloudstack_store)
    emit(
        "table4_opensource",
        format_table(["System", "Orig. code LOC", "CPL LOC", "Specs", "Reduction"], rows),
    )
    for __, original, cpl, __specs, __ratio in rows:
        assert original / cpl >= 3


def test_table4_openstack_cpl_speed(benchmark, openstack_store):
    session = ValidationSession(store=openstack_store)
    statements = session.prepare(OPENSTACK_SPECS)
    report = benchmark(session.validate_statements, statements)
    assert report.passed
    assert validate_openstack(openstack_store) == []


def test_table4_cloudstack_cpl_speed(benchmark, cloudstack_store):
    session = ValidationSession(store=cloudstack_store)
    statements = session.prepare(CLOUDSTACK_SPECS)
    report = benchmark(session.validate_statements, statements)
    assert report.passed
    assert validate_cloudstack(cloudstack_store) == []
