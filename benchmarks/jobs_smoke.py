"""End-to-end smoke test of the asynchronous job service.

Starts ``confvalley service --http --jobs`` as a *subprocess* (real
process boundary, ephemeral port, durable journal), then drives the whole
submission lifecycle the way an engineer would:

1. ``confvalley submit --wait`` uploads a spec + inline source and blocks
   to the verdict — exit 0 and a fingerprint **byte-identical** to a
   direct in-process ``validate`` of the same inputs;
2. a second submission with the same idempotency key deduplicates;
3. ``confvalley jobs`` lists the finished work;
4. a submission against an over-capacity service bounces with a
   structured 429 (checked in-process in the test suite; here we check
   the service keeps answering while jobs run);
5. SIGTERM drains cleanly: exit 0, and the journal still carries every
   job — **no accepted work is lost across the restart boundary**.

Run directly (``make jobs-smoke``)::

    PYTHONPATH=src python benchmarks/jobs_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.session import ValidationSession  # noqa: E402
from repro.jobs.journal import JobJournal  # noqa: E402
from repro.jobs.model import ValidationJob, report_fingerprint_digest  # noqa: E402

ANNOUNCEMENT = re.compile(r"operator endpoint: (http://\S+)")
STARTUP_DEADLINE = 30.0
SHUTDOWN_DEADLINE = 15.0

SPEC = (
    "$fabric.Timeout -> int & [1, 60]\n"
    "$fabric.Retries -> int & [0, 5]\n"
)
CONFIG = "[fabric]\nTimeout = 30\nRetries = 2\n"


def cli(args, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    return subprocess.run(
        [
            sys.executable, "-c",
            "import sys; from repro.console.cli import main; "
            "sys.exit(main(sys.argv[1:]))",
            *args,
        ],
        env=env, capture_output=True, text=True, timeout=120, **kwargs,
    )


def wait_for_announcement(stderr) -> str:
    deadline = time.monotonic() + STARTUP_DEADLINE
    while time.monotonic() < deadline:
        line = stderr.readline()
        if not line:
            raise AssertionError("service exited before announcing its URL")
        sys.stderr.write(line)
        match = ANNOUNCEMENT.search(line)
        if match:
            return match.group(1)
    raise AssertionError("no endpoint announcement within deadline")


def main() -> int:
    workspace = Path(tempfile.mkdtemp(prefix="confvalley-jobs-smoke-"))
    spec = workspace / "specs.cpl"
    spec.write_text(SPEC)
    config = workspace / "prod.ini"
    config.write_text(CONFIG)
    journal = workspace / "jobs.jsonl"

    session = ValidationSession()
    session.load_source("ini", str(config))
    expected = report_fingerprint_digest(session.validate(SPEC))

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    process = subprocess.Popen(
        [
            sys.executable, "-c",
            "import sys; from repro.console.cli import main; "
            "sys.exit(main(sys.argv[1:]))",
            "service", str(spec),
            "--source", f"ini:{config}",
            "--http", "127.0.0.1:0",
            "--jobs", "--workers", "2",
            "--jobs-journal", str(journal),
            "--interval", "0.2",
        ],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )
    try:
        base = wait_for_announcement(process.stderr).rstrip("/")

        # 1. submit --wait: admit verdict, fingerprint parity across the
        # process boundary
        result = cli([
            "submit", str(spec), "--url", base,
            "--inline-source", f"ini:{config}",
            "--idempotency-key", "smoke-1",
            "--wait", "--poll", "0.1", "--json",
        ])
        assert result.returncode == 0, result.stderr
        record = json.loads(result.stdout)
        assert record["state"] == "DONE", record
        assert record["result"]["verdict"] == "admit", record
        assert record["result"]["fingerprint"] == expected, (
            "async verdict diverged from the direct validate run"
        )
        job_id = record["id"]
        print(f"ok submit --wait -> DONE, fingerprint parity ({job_id})")

        # 2. same idempotency key -> the same job, not a second run
        result = cli([
            "submit", str(spec), "--url", base,
            "--inline-source", f"ini:{config}",
            "--idempotency-key", "smoke-1",
        ])
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == job_id, result.stdout
        assert "deduplicated" in result.stderr
        print("ok idempotency-key deduplication")

        # 3. the listing shows the finished job with its verdict
        result = cli(["jobs", base])
        assert result.returncode == 0, result.stderr
        assert job_id in result.stdout
        assert "verdict=admit" in result.stdout
        print("ok jobs listing")

        # 4. queue metrics flow through the operator endpoint
        with urllib.request.urlopen(base + "/metrics", timeout=10) as resp:
            metrics = resp.read().decode("utf-8")
        assert "confvalley_jobs_submitted_total" in metrics
        assert "confvalley_job_run_seconds" in metrics
        print("ok queue metrics exposed")

        # 5. SIGTERM: clean drain, journal retains every accepted job
        process.send_signal(signal.SIGTERM)
        returncode = process.wait(timeout=SHUTDOWN_DEADLINE)
        assert returncode == 0, f"service exited {returncode} on SIGTERM"
        recovered = JobJournal.fold(
            JobJournal(str(journal)).replay(), ValidationJob.from_dict
        )
        assert job_id in recovered, "accepted job missing after drain"
        assert recovered[job_id].state == "DONE"
        assert recovered[job_id].result["fingerprint"] == expected
        print("ok SIGTERM drain, journal intact")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=5)

    print("jobs-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
