"""Figure 4 — compiler rewrite ablation.

Paper Figure 4 names three CPL compiler rewrites: (a) aggregate predicates
with the same domain "to avoid repeated instance discovery", (b) aggregate
domains with the same predicate "to reuse internal predicate memory
objects", (c) omit constraints implied by others "to avoid unnecessary
checking".  Paper §5.2 motivates them with discovery-query load.

We build a deliberately redundant specification corpus over the Type A
snapshot (the shape hand-written spec files take: one line per property per
parameter), then measure validation time and discovery-query count with
each rewrite toggled, plus all-on and all-off.

Shape claims: every rewrite preserves reported violations; predicate
aggregation cuts discovery queries; all-on is no slower than all-off.
"""

from __future__ import annotations

import time

import pytest

from repro import ValidationSession, parse
from repro.benchutil import format_table
from repro.core.compiler import CompilerOptions, optimize_statements
from repro.core.evaluator import Evaluator
from repro.core.report import ValidationReport


@pytest.fixture(scope="module")
def redundant_specs(type_a_store):
    """One spec per (parameter, property) — maximal redundancy."""
    lines = []
    leafs = sorted({
        config_class.leaf_name
        for config_class in type_a_store.classes()
        if "TimeoutSeconds" in config_class.leaf_name
        or "EndpointIP" in config_class.leaf_name
    })
    for leaf in leafs:
        if "TimeoutSeconds" in leaf:
            lines.append(f"$*.{leaf} -> string")
            lines.append(f"$*.{leaf} -> nonempty")
            lines.append(f"$*.{leaf} -> int")
            lines.append(f"$*.{leaf} -> int & float & nonempty")
        else:
            lines.append(f"$*.{leaf} -> string")
            lines.append(f"$*.{leaf} -> nonempty")
            lines.append(f"$*.{leaf} -> ip")
    return "\n".join(lines)


VARIANTS = {
    "no rewrites": CompilerOptions(False, False, False),
    "(a) aggregate predicates": CompilerOptions(True, False, False),
    "(b) aggregate domains": CompilerOptions(False, True, False),
    "(c) omit implied": CompilerOptions(False, False, True),
    "all rewrites": CompilerOptions(True, True, True),
}


def run_variant(store, statements, options):
    optimized = optimize_statements(list(statements), options)
    evaluator = Evaluator(store)
    report = ValidationReport()
    queries_before = store.query_count
    started = time.perf_counter()
    evaluator.run(optimized, report)
    elapsed = time.perf_counter() - started
    return report, elapsed, store.query_count - queries_before, len(optimized)


def test_fig4_ablation(benchmark, emit, type_a_store, redundant_specs):
    statements = parse(redundant_specs).statements

    def run_all():
        return {
            name: run_variant(type_a_store, statements, options)
            for name, options in VARIANTS.items()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    baseline_report = results["no rewrites"][0]
    baseline_keys = {(v.key, v.value) for v in baseline_report.violations}
    rows = []
    for name, (report, elapsed, queries, spec_count) in results.items():
        rows.append((name, spec_count, queries, f"{elapsed * 1000:.1f}"))
        # semantic preservation: same distinct violations under every variant
        assert {(v.key, v.value) for v in report.violations} == baseline_keys, name
    emit(
        "fig4_compiler_opts",
        format_table(["Variant", "Specs after rewrite", "Discovery queries",
                      "Time (ms)"], rows),
    )
    # (a) reduces both the spec count and the discovery-query load
    assert results["(a) aggregate predicates"][3] < results["no rewrites"][3]
    assert results["(a) aggregate predicates"][2] < results["no rewrites"][2]
    # (b) reduces the spec count
    assert results["(b) aggregate domains"][3] < results["no rewrites"][3]
    # all-on issues no more queries than all-off
    assert results["all rewrites"][2] <= results["no rewrites"][2]


@pytest.mark.parametrize("variant", ["no rewrites", "all rewrites"])
def test_fig4_end_to_end_speed(benchmark, variant, type_a_store, redundant_specs):
    statements = parse(redundant_specs).statements
    options = VARIANTS[variant]
    optimized = optimize_statements(list(statements), options)

    def run():
        evaluator = Evaluator(type_a_store)
        report = ValidationReport()
        evaluator.run(optimized, report)
        return report

    report = benchmark(run)
    assert report.specs_evaluated > 0
