"""Shared fixtures and reporting helpers for the paper-reproduction benches.

Scales (recorded in EXPERIMENTS.md): the paper's Azure data is replayed at a
laptop-friendly scale — Type A ≈ paper/10 instances, Type B ≈ paper/100,
Type C ≈ paper scale (it was small).  Absolute times differ from the paper's
2.8 GHz Core i7 + C# stack; every *shape* claim is asserted in the benches.
"""

from __future__ import annotations

import os

import pytest

from repro.synthetic import generate_cloudstack, generate_openstack
from repro.synthetic.azure import generate_type_a, generate_type_b, generate_type_c

# Override via environment to approach paper scale, e.g.
#   REPRO_SCALE_A=1.0 REPRO_SCALE_B=1.0 pytest benchmarks/ --benchmark-only
TYPE_A_SCALE = float(os.environ.get("REPRO_SCALE_A", "0.35"))
TYPE_B_SCALE = float(os.environ.get("REPRO_SCALE_B", "0.02"))
TYPE_C_SCALE = float(os.environ.get("REPRO_SCALE_C", "1.0"))

# Smoke runs (benchmarks/smoke.sh) redirect this so tiny-scale tables never
# overwrite the checked-in default-scale ones.
RESULTS_DIR = os.environ.get(
    "REPRO_RESULTS_DIR", os.path.join(os.path.dirname(__file__), "results")
)


@pytest.fixture(scope="session")
def type_a_dataset():
    return generate_type_a(TYPE_A_SCALE)


@pytest.fixture(scope="session")
def type_b_dataset():
    return generate_type_b(TYPE_B_SCALE)


@pytest.fixture(scope="session")
def type_c_dataset():
    return generate_type_c(TYPE_C_SCALE)


@pytest.fixture(scope="session")
def type_a_store(type_a_dataset):
    return type_a_dataset.build_store()


@pytest.fixture(scope="session")
def type_b_store(type_b_dataset):
    return type_b_dataset.build_store()


@pytest.fixture(scope="session")
def type_c_store(type_c_dataset):
    return type_c_dataset.build_store()


@pytest.fixture(scope="session")
def openstack_store():
    return generate_openstack(nodes=24).build_store()


@pytest.fixture(scope="session")
def cloudstack_store():
    return generate_cloudstack(zones=10).build_store()


@pytest.fixture
def emit(capsys):
    """Print a reproduced table live (uncaptured) and save it to results/."""

    def _emit(experiment_id: str, text: str) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{experiment_id}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text.rstrip() + "\n")
        with capsys.disabled():
            print(f"\n=== {experiment_id} ===")
            print(text.rstrip())

    return _emit
