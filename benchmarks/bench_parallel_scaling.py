"""Parallel scaling — sharded executors vs serial, plus spec-cache warm-up.

Unlike Table 8 (which times 10 *independent* partition jobs one at a time),
this bench drives the real :mod:`repro.parallel` engine end to end: one
spec corpus, sharded by compartment/scope, evaluated by each executor, and
merged back into a single report.  Two claims are checked:

* **Determinism** — every executor's report has the same
  :meth:`~repro.core.report.ValidationReport.fingerprint` as serial
  evaluation (always asserted, any machine).
* **Scaling** — with ≥4 cores the best parallel executor finishes the
  Type-A corpus at least 2× faster than serial.  On smaller machines the
  numbers are still emitted but the speedup assertion is skipped (the
  engine itself falls back to serial below 2 cores).

A second table times compilation with a cold vs warm
:class:`~repro.parallel.SpecCache` — the steady-state scan path where only
configuration data changed.

Run it alone with::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_scaling.py -q
"""

from __future__ import annotations

import os
import time

from repro import ValidationSession
from repro.benchutil import format_table
from repro.parallel import SpecCache
from repro.synthetic import EXPERT_SPECS

EXECUTORS = ("serial", "thread", "process", "auto")
SPEEDUP_CORES = 4           # acceptance threshold applies at ≥4 cores
SPEEDUP_FLOOR = 2.0         # required best-parallel speedup at that size


def run_executors(store, spec_text):
    timings = {}
    reports = {}
    for executor in EXECUTORS:
        session = ValidationSession(store=store, executor=executor)
        statements = session.prepare(spec_text)
        session.validate_statements(statements)   # warm-up (pools, imports)
        started = time.perf_counter()
        report = session.validate_statements(statements)
        timings[executor] = time.perf_counter() - started
        reports[executor] = report
    return timings, reports


def test_parallel_scaling(benchmark, emit, type_a_store):
    spec_text = EXPERT_SPECS["type_a"]
    timings, reports = benchmark.pedantic(
        run_executors, args=(type_a_store, spec_text), rounds=1, iterations=1
    )

    serial = timings["serial"]
    rows = []
    for executor in EXECUTORS:
        report = reports[executor]
        rows.append((
            executor,
            report.executor or "serial",
            report.shards_run,
            f"{timings[executor]:.3f}",
            f"{serial / timings[executor]:.2f}x",
        ))
    cores = os.cpu_count() or 1
    emit(
        "parallel_scaling",
        format_table(
            ["Requested", "Ran as", "Shards", "Seconds", "vs serial"], rows
        )
        + f"\n(Type A corpus, {type_a_store.instance_count} instances, "
        f"{cores} core(s))",
    )

    # Determinism: byte-identical reports whatever the executor.
    baseline = reports["serial"].fingerprint()
    for executor in EXECUTORS:
        assert reports[executor].fingerprint() == baseline, executor

    # Scaling: only a claim worth enforcing when the hardware can parallelize.
    if cores >= SPEEDUP_CORES:
        best = min(timings[e] for e in ("thread", "process"))
        assert serial / best >= SPEEDUP_FLOOR, (
            f"expected ≥{SPEEDUP_FLOOR}x on {cores} cores, "
            f"got {serial / best:.2f}x"
        )


def run_cache(store, spec_text, rounds=5):
    cold_cache = SpecCache()
    session = ValidationSession(store=store, spec_cache=cold_cache)

    started = time.perf_counter()
    session.validate(spec_text)
    cold = time.perf_counter() - started

    warm_times = []
    for __ in range(rounds):
        started = time.perf_counter()
        session.validate(spec_text)
        warm_times.append(time.perf_counter() - started)
    return cold, warm_times, cold_cache.stats


def test_spec_cache_warm_vs_cold(benchmark, emit, type_a_store):
    cold, warm_times, stats = benchmark.pedantic(
        run_cache, args=(type_a_store, EXPERT_SPECS["type_a"]),
        rounds=1, iterations=1,
    )
    warm = min(warm_times)
    emit(
        "spec_cache_warmup",
        format_table(
            ["Scan", "Seconds", "Compile"],
            [
                ("cold (first)", f"{cold:.3f}", "parse + rewrite"),
                ("warm (best of 5)", f"{warm:.3f}", "cache hit"),
            ],
        )
        + f"\n(cache: {stats.hits} hit(s), {stats.misses} miss(es))",
    )
    assert stats.misses == 1 and stats.hits == len(warm_times)
    # A warm scan never costs more than a cold one (evaluation dominates
    # both, so we only claim ordering, not a ratio).
    assert warm <= cold * 1.05
