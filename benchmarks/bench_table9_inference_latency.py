"""Table 9 — inference latency: total / parsing / inference breakdown.

Paper Table 9 (67k / 2.3M / 2.2k instances → 19.7s / 82s / 0.09s total):
"the bottleneck lies in parsing the configuration data into a unified
representation, while the actual inference time is fairly small."

We time the two phases separately on the three synthetic data sets —
parsing = driver conversion of the raw sources into the unified store,
inference = the constraint-mining pass — and assert the paper's shape:
parsing dominates on the large data sets.
"""

from __future__ import annotations

import time

import pytest

from repro import ConfigStore, InferenceEngine
from repro.benchutil import format_table


def measure(dataset):
    started = time.perf_counter()
    instances = dataset.parse()
    store = ConfigStore()
    store.add_all(instances)
    parse_seconds = time.perf_counter() - started
    result = InferenceEngine().infer(store)
    return {
        "instances": store.instance_count,
        "parse": parse_seconds,
        "infer": result.infer_seconds,
        "total": parse_seconds + result.infer_seconds,
    }


def test_table9_report(benchmark, emit, type_a_dataset, type_b_dataset, type_c_dataset):
    def run_all():
        return {
            "Type A": measure(type_a_dataset),
            "Type B": measure(type_b_dataset),
            "Type C": measure(type_c_dataset),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        (label, m["instances"], f"{m['total']:.3f}", f"{m['parse']:.3f}",
         f"{m['infer']:.3f}")
        for label, m in results.items()
    ]
    emit(
        "table9_inference_latency",
        format_table(
            ["Config.", "Instances", "Total (s)", "Parsing (s)", "Inference (s)"],
            rows,
        ),
    )
    # paper shape: parsing dominates inference on the big data sets
    for label in ("Type A", "Type B"):
        assert results[label]["parse"] > results[label]["infer"], label
    # and the biggest data set takes the longest overall
    assert results["Type B"]["total"] >= results["Type C"]["total"]


@pytest.mark.parametrize("phase", ["parsing", "inference"])
def test_table9_type_b_phases(benchmark, phase, type_b_dataset, type_b_store):
    if phase == "parsing":
        result = benchmark.pedantic(
            type_b_dataset.build_store, rounds=2, iterations=1
        )
        assert result.instance_count > 0
    else:
        engine = InferenceEngine()
        result = benchmark.pedantic(
            engine.infer, args=(type_b_store,), rounds=2, iterations=1
        )
        assert result.constraints
