"""End-to-end smoke test of the live operator endpoint.

Starts ``confvalley service --http 127.0.0.1:0`` as a *subprocess* (the
same way an operator would, ephemeral port and all), scrapes every
endpoint, asserts status codes and body parseability, then delivers
SIGTERM and checks the shutdown is clean.  This is the one place the
HTTP surface is exercised across a real process boundary; everything
else in the suite runs the server in-process.

Run directly (``make http-smoke``)::

    PYTHONPATH=src python benchmarks/http_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.observability import parse_prometheus  # noqa: E402
from repro.observability.server import ENDPOINTS  # noqa: E402

ANNOUNCEMENT = re.compile(r"operator endpoint: (http://\S+)")
STARTUP_DEADLINE = 30.0  # seconds to wait for the URL announcement
SHUTDOWN_DEADLINE = 10.0  # seconds from SIGTERM to exit


def wait_for_announcement(stderr) -> str:
    """The service prints ``operator endpoint: <url>`` once the socket is
    bound — that line is the only reliable way to learn an ephemeral port."""
    deadline = time.monotonic() + STARTUP_DEADLINE
    while time.monotonic() < deadline:
        line = stderr.readline()
        if not line:
            raise AssertionError("service exited before announcing its URL")
        sys.stderr.write(line)
        match = ANNOUNCEMENT.search(line)
        if match:
            return match.group(1)
    raise AssertionError("no endpoint announcement within deadline")


def scrape(url: str) -> tuple[int, str]:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def check_endpoints(base: str) -> None:
    for path in ENDPOINTS:
        status, body = scrape(base + path)
        assert status == 200, f"{path} returned {status}"
        if path == "/metrics":
            families = parse_prometheus(body)
            assert "confvalley_scans_total" in families, path
        else:
            payload = json.loads(body)
            assert payload, path
        print(f"ok {path} ({len(body)} bytes)")

    status, body = scrape(base + "/no-such-endpoint")
    assert status == 404, f"404 expected, got {status}"
    assert "/metrics" in body  # the 404 body lists valid endpoints
    print("ok /no-such-endpoint -> 404")

    payload = json.loads(scrape(base + "/health")[1])
    assert payload["status"] in ("OK", "never-validated"), payload
    print(f"ok /health status={payload['status']!r}")


def main() -> int:
    workspace = Path(tempfile.mkdtemp(prefix="confvalley-http-smoke-"))
    spec = workspace / "specs.cpl"
    spec.write_text(
        "$fabric.Timeout -> int & [1, 60]\n"
        "$fabric.Retries -> int & [0, 5]\n"
    )
    config = workspace / "prod.ini"
    config.write_text("[fabric]\nTimeout = 30\nRetries = 2\n")

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    process = subprocess.Popen(
        [
            sys.executable, "-c",
            "import sys; from repro.console.cli import main; "
            "sys.exit(main(sys.argv[1:]))",
            "service", str(spec),
            "--source", f"ini:{config}",
            "--http", "127.0.0.1:0",
            "--jobs", "--workers", "1",
            "--shadow",
            "--interval", "0.2",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        base = wait_for_announcement(process.stderr).rstrip("/")
        time.sleep(0.5)  # let at least one scan land so bodies are populated
        check_endpoints(base)

        process.send_signal(signal.SIGTERM)
        returncode = process.wait(timeout=SHUTDOWN_DEADLINE)
        assert returncode == 0, f"service exited {returncode} on SIGTERM"
        print("ok clean shutdown on SIGTERM")

        # the socket must actually be released
        try:
            urllib.request.urlopen(base + "/health", timeout=2)
        except OSError:
            print("ok port closed after shutdown")
        else:
            raise AssertionError("endpoint still answering after shutdown")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=5)

    print("http-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
