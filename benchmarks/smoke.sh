#!/bin/sh
# Smoke-run every benchmark on a tiny corpus.
#
# This is a correctness gate, not a measurement: each bench's shape
# assertions (determinism, table structure, monotonicity) execute at a
# scale small enough for CI, with pytest-benchmark's timing machinery
# disabled.  Timing-ratio assertions in the benches are themselves gated
# on corpus size / core count, so they do not fire here.
#
# Usage:  sh benchmarks/smoke.sh [extra pytest args]
set -eu

cd "$(dirname "$0")/.."

RESULTS_DIR="$(mktemp -d)"
trap 'rm -rf "$RESULTS_DIR"' EXIT

REPRO_SCALE_A="${REPRO_SCALE_A:-0.1}" \
REPRO_SCALE_B="${REPRO_SCALE_B:-0.005}" \
REPRO_SCALE_C="${REPRO_SCALE_C:-0.5}" \
REPRO_RESULTS_DIR="$RESULTS_DIR" \
PYTHONPATH=src \
python -m pytest benchmarks/ -q --benchmark-disable "$@"
