"""Figure 5 — histogram of inferred constraints per configuration key.

Paper Figure 5 (Type A, 1,391 keys / 67,231 instances): the majority of
keys get ≥ 2 inferred constraints, while a tail of 79 keys — parameters
"without much associated semantics or constraints by nature, e.g.,
IncidentOwner, ClusterName" — get none.

We reproduce the histogram on the synthetic Type A snapshot (which contains
the same free-text tail by construction) and assert both shape claims.
"""

from __future__ import annotations

from repro import InferenceEngine
from repro.benchutil import ascii_histogram


def test_fig5_histogram(benchmark, emit, type_a_store):
    result = benchmark.pedantic(
        InferenceEngine().infer, args=(type_a_store,), rounds=3, iterations=1
    )
    histogram = result.histogram()
    emit(
        "fig5_histogram",
        ascii_histogram(histogram)
        + f"\n(total keys: {result.classes_analyzed})",
    )
    total = sum(histogram.values())
    assert total == result.classes_analyzed
    at_least_two = sum(count for bucket, count in histogram.items() if bucket >= 2)
    # paper: "the majority of the configuration keys had at least 2
    # constraints inferred"
    assert at_least_two > total / 2
    # paper: a nonzero tail of keys has no constraints (free-text names)
    assert histogram.get(0, 0) > 0
