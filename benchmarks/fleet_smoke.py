"""End-to-end smoke test of fleet-wide observability (ISSUE 9).

Starts ``confvalley service --http --jobs --jobs-dir`` as a subprocess
(the coordinator) plus **two** external ``confvalley worker`` processes,
and drives the federation story the way an operator would:

1. a job with a ``--callback`` URL is submitted over HTTP and executed
   by one of the standalone workers; ``GET /jobs/<id>/trace`` returns
   **one stitched tree** — a single root, no orphan spans — covering
   submit → claim → parse → evaluate → report → webhook across the
   coordinator and the worker process;
2. ``GET /metrics`` federates: both workers' registry snapshots surface
   under a ``worker`` label next to the coordinator's own series, with
   ``confvalley_fleet_*`` rollups on top;
3. one worker is **SIGKILLed**; after the staleness TTL its snapshot is
   fenced out of the merged ``/metrics`` (``GET /fleet`` still shows it,
   flagged stale, for triage) — a dead worker's last export must not
   lie in the exposition forever;
4. the stitched trace **survives** the kill (trace partitions are
   append-only files, not process state), and ``confvalley trace``
   fetches it as a loadable Chrome ``trace_event`` file;
5. SIGTERM drains the surviving worker and the coordinator cleanly.

Run directly (``make fleet-smoke``)::

    PYTHONPATH=src python benchmarks/fleet_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from http.server import BaseHTTPRequestHandler, HTTPServer
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.session import ValidationSession  # noqa: E402
from repro.jobs.model import report_fingerprint_digest  # noqa: E402

ANNOUNCEMENT = re.compile(r"operator endpoint: (http://\S+)")
STARTUP_DEADLINE = 30.0
SHUTDOWN_DEADLINE = 15.0
#: coordinator lease TTL; snapshot staleness fencing is max(TTL, 2.0)
LEASE_TTL = 1.0
STALE_AFTER = max(LEASE_TTL, 2.0)

SPEC = (
    "$fabric.Timeout -> int & [1, 60]\n"
    "$fabric.Retries -> int & [0, 5]\n"
)
CONFIG = "[fabric]\nTimeout = 30\nRetries = 2\n"

SOURCE_ROOT = str(Path(__file__).resolve().parent.parent / "src")


def python_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SOURCE_ROOT
    return env


def cli_command(args):
    return [
        sys.executable, "-c",
        "import sys; from repro.console.cli import main; "
        "sys.exit(main(sys.argv[1:]))",
        *args,
    ]


def cli(args, **kwargs):
    return subprocess.run(
        cli_command(args), env=python_env(),
        capture_output=True, text=True, timeout=120, **kwargs,
    )


def spawn_worker(jobs_dir, worker_id):
    return subprocess.Popen(
        cli_command([
            "worker", "--journal", str(jobs_dir), "--id", worker_id,
            "--lease-ttl", str(LEASE_TTL), "--poll", "0.02",
        ]),
        env=python_env(), stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def wait_for_announcement(stderr) -> str:
    deadline = time.monotonic() + STARTUP_DEADLINE
    while time.monotonic() < deadline:
        line = stderr.readline()
        if not line:
            raise AssertionError("service exited before announcing its URL")
        sys.stderr.write(line)
        match = ANNOUNCEMENT.search(line)
        if match:
            return match.group(1)
    raise AssertionError("no endpoint announcement within deadline")


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


def poll_until(describe, predicate, timeout=60.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {describe}")


def federated_workers(base: str) -> set:
    """Worker labels present in the *merged* (non-rollup) families."""
    families = get_json(f"{base}/metrics.json")
    workers = set()
    for name, family in families.items():
        if name.startswith("confvalley_fleet_"):
            continue  # meta families keep naming stale workers for triage
        for series in family.get("series") or ():
            worker = (series.get("labels") or {}).get("worker")
            if worker:
                workers.add(worker)
    return workers


class CallbackReceiver(BaseHTTPRequestHandler):
    received: list[dict] = []
    lock = threading.Lock()

    def do_POST(self):  # noqa: N802 (stdlib naming)
        body = self.rfile.read(int(self.headers.get("Content-Length", 0)))
        with CallbackReceiver.lock:
            CallbackReceiver.received.append(json.loads(body))
        self.send_response(200)
        self.end_headers()

    def log_message(self, *args):  # keep the smoke output readable
        pass


def main() -> int:
    workspace = Path(tempfile.mkdtemp(prefix="confvalley-fleet-smoke-"))
    spec = workspace / "specs.cpl"
    spec.write_text(SPEC)
    config = workspace / "prod.ini"
    config.write_text(CONFIG)
    jobs_dir = workspace / "jobsdir"

    session = ValidationSession()
    session.load_source("ini", str(config))
    expected = report_fingerprint_digest(session.validate(SPEC))

    receiver = HTTPServer(("127.0.0.1", 0), CallbackReceiver)
    threading.Thread(target=receiver.serve_forever, daemon=True).start()
    callback = f"http://127.0.0.1:{receiver.server_port}/hook"

    service = subprocess.Popen(
        cli_command([
            "service", str(spec),
            "--source", f"ini:{config}",
            "--http", "127.0.0.1:0",
            "--jobs", "--workers", "0",
            "--jobs-dir", str(jobs_dir),
            "--lease-ttl", str(LEASE_TTL),
            "--interval", "0.2",
        ]),
        env=python_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )
    workers = {}
    try:
        base = wait_for_announcement(service.stderr).rstrip("/")
        workers["w1"] = spawn_worker(jobs_dir, "w1")
        workers["w2"] = spawn_worker(jobs_dir, "w2")

        # 1. submit; a standalone worker runs it; the trace stitches
        result = cli([
            "submit", str(spec), "--url", base,
            "--inline-source", f"ini:{config}",
            "--callback", callback,
        ])
        assert result.returncode == 0, result.stderr
        job_id = result.stdout.strip()
        record = poll_until(
            "a worker to finish the job",
            lambda: (lambda r: r if r["state"] == "DONE" else None)(
                get_json(f"{base}/jobs/{job_id}")
            ),
        )
        claimant = record["worker"]
        assert claimant in ("w1", "w2"), record
        assert record["result"]["fingerprint"] == expected, record

        trace = poll_until(
            "the stitched trace to cover both processes and the webhook",
            lambda: (lambda t: t if {"webhook", "report"} <=
                     {s["name"] for s in t["spans"]} else None)(
                get_json(f"{base}/jobs/{job_id}/trace")
            ),
        )
        names = {s["name"] for s in trace["spans"]}
        assert names == {"job", "submit", "claim", "parse", "evaluate",
                         "report", "webhook"}, names
        assert trace["roots"] == [f"{job_id}:root"], trace["roots"]
        assert trace["orphan_spans"] == [], trace["orphan_spans"]
        assert sorted(trace["sources"]) == ["coordinator", claimant], (
            trace["sources"])
        assert trace["traceEvents"], "Chrome trace body must not be empty"
        print(f"ok one stitched tree across coordinator + {claimant} "
              f"({len(trace['spans'])} spans, submit -> webhook)")

        # 2. /metrics federates both workers under a worker label
        poll_until(
            "both workers' snapshots in the merged exposition",
            lambda: federated_workers(base) >= {"w1", "w2"} or None,
        )
        exposition = urllib.request.urlopen(
            f"{base}/metrics", timeout=10).read().decode()
        assert f'worker="{claimant}"' in exposition, (
            "claimant series missing from /metrics")
        assert "confvalley_fleet_workers" in exposition
        fleet = get_json(f"{base}/fleet")
        assert fleet["federation"] is True, fleet
        assert {row["worker"] for row in fleet["workers"]} == {"w1", "w2"}
        assert all(row["fresh"] for row in fleet["workers"]), fleet
        print("ok /metrics federated (2 workers labeled, fleet rollups)")

        # 3. SIGKILL one worker; staleness fencing ages it out
        victim = "w2" if claimant == "w1" else "w1"
        os.kill(workers[victim].pid, signal.SIGKILL)
        workers[victim].wait(timeout=10)
        poll_until(
            f"{victim}'s snapshot to age out of /metrics "
            f"(stale after {STALE_AFTER:g}s)",
            lambda: victim not in federated_workers(base) or None,
            timeout=STALE_AFTER + 20.0,
        )
        fleet = get_json(f"{base}/fleet")
        flags = {row["worker"]: row["fresh"] for row in fleet["workers"]}
        assert flags[victim] is False, (
            f"{victim} must stay visible in /fleet, flagged stale: {flags}")
        print(f"ok SIGKILLed {victim} fenced out of /metrics after "
              f"{STALE_AFTER:g}s, still visible stale in /fleet")

        # 4. the stitched trace survives the kill; the CLI exports it
        trace = get_json(f"{base}/jobs/{job_id}/trace")
        assert trace["roots"] == [f"{job_id}:root"]
        assert trace["orphan_spans"] == []
        out_file = workspace / "trace.json"
        result = cli(["trace", base, job_id, "--out", str(out_file)])
        assert result.returncode == 0, result.stderr
        document = json.loads(out_file.read_text())
        assert document["trace_id"] == job_id
        assert document["traceEvents"], document
        print("ok stitched trace survived the kill; "
              "`confvalley trace` wrote a Chrome trace file")

        # 5. clean SIGTERM drain
        survivor = workers["w1" if victim == "w2" else "w2"]
        survivor.send_signal(signal.SIGTERM)
        assert survivor.wait(timeout=10) == 0, "worker SIGTERM drain failed"
        service.send_signal(signal.SIGTERM)
        returncode = service.wait(timeout=SHUTDOWN_DEADLINE)
        assert returncode == 0, f"service exited {returncode} on SIGTERM"
        print("ok SIGTERM drain")
    finally:
        receiver.shutdown()
        for process in list(workers.values()) + [service]:
            if process is not None and process.poll() is None:
                process.kill()
                process.wait(timeout=5)

    print("fleet-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
