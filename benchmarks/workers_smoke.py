"""End-to-end smoke test of multi-process job execution.

Starts ``confvalley service --http --jobs --jobs-dir`` as a *subprocess*
(the coordinator), spawns **two external** ``confvalley worker``
processes over the same shared directory, and drives the full
crash-tolerance story the way an outage would:

1. a job with a ``--callback`` URL is submitted over HTTP; the first
   worker claims it and is **SIGKILLed mid-job** (held in place by the
   chaos hold-file hook, so the kill provably lands mid-execution);
2. the coordinator's reaper expires the dead worker's lease and
   re-queues the job **exactly once**; the second worker picks it up and
   finishes it — verdict fingerprint **byte-identical** to a direct
   in-process ``validate`` of the same inputs;
3. the terminal record is POSTed to the callback receiver (at-least-once
   webhook delivery with retries), carrying the same JSON as
   ``GET /jobs/<id>``;
4. ``GET /workers`` reports the fleet: the rescuer's presence, its
   claim/done counters, and the lease-expiry/requeue totals;
5. SIGTERM drains the coordinator cleanly.

Run directly (``make workers-smoke``)::

    PYTHONPATH=src python benchmarks/workers_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from http.server import BaseHTTPRequestHandler, HTTPServer
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.session import ValidationSession  # noqa: E402
from repro.jobs.model import report_fingerprint_digest  # noqa: E402

ANNOUNCEMENT = re.compile(r"operator endpoint: (http://\S+)")
STARTUP_DEADLINE = 30.0
SHUTDOWN_DEADLINE = 15.0

SPEC = (
    "$fabric.Timeout -> int & [1, 60]\n"
    "$fabric.Retries -> int & [0, 5]\n"
)
CONFIG = "[fabric]\nTimeout = 30\nRetries = 2\n"

SOURCE_ROOT = str(Path(__file__).resolve().parent.parent / "src")


def python_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SOURCE_ROOT
    return env


def cli_command(args):
    return [
        sys.executable, "-c",
        "import sys; from repro.console.cli import main; "
        "sys.exit(main(sys.argv[1:]))",
        *args,
    ]


def cli(args, **kwargs):
    return subprocess.run(
        cli_command(args), env=python_env(),
        capture_output=True, text=True, timeout=120, **kwargs,
    )


def wait_for_announcement(stderr) -> str:
    deadline = time.monotonic() + STARTUP_DEADLINE
    while time.monotonic() < deadline:
        line = stderr.readline()
        if not line:
            raise AssertionError("service exited before announcing its URL")
        sys.stderr.write(line)
        match = ANNOUNCEMENT.search(line)
        if match:
            return match.group(1)
    raise AssertionError("no endpoint announcement within deadline")


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


def poll_until(describe, predicate, timeout=60.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {describe}")


class CallbackReceiver(BaseHTTPRequestHandler):
    """Records webhook POSTs; fails the first one to prove retry works."""

    received: list[dict] = []
    failures_left = 1
    lock = threading.Lock()

    def do_POST(self):  # noqa: N802 (stdlib naming)
        body = self.rfile.read(int(self.headers.get("Content-Length", 0)))
        with CallbackReceiver.lock:
            if CallbackReceiver.failures_left > 0:
                CallbackReceiver.failures_left -= 1
                self.send_response(503)
                self.end_headers()
                return
            CallbackReceiver.received.append(json.loads(body))
        self.send_response(200)
        self.end_headers()

    def log_message(self, *args):  # keep the smoke output readable
        pass


def main() -> int:
    workspace = Path(tempfile.mkdtemp(prefix="confvalley-workers-smoke-"))
    spec = workspace / "specs.cpl"
    spec.write_text(SPEC)
    config = workspace / "prod.ini"
    config.write_text(CONFIG)
    jobs_dir = workspace / "jobsdir"
    hold_file = workspace / "hold"
    hold_file.write_text("")

    session = ValidationSession()
    session.load_source("ini", str(config))
    expected = report_fingerprint_digest(session.validate(SPEC))

    receiver = HTTPServer(("127.0.0.1", 0), CallbackReceiver)
    threading.Thread(target=receiver.serve_forever, daemon=True).start()
    callback = f"http://127.0.0.1:{receiver.server_port}/hook"

    service = subprocess.Popen(
        cli_command([
            "service", str(spec),
            "--source", f"ini:{config}",
            "--http", "127.0.0.1:0",
            "--jobs", "--workers", "0",
            "--jobs-dir", str(jobs_dir),
            "--lease-ttl", "1.0",
            "--max-requeues", "2",
            "--interval", "0.2",
        ]),
        env=python_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )
    victim = rescuer = None
    try:
        base = wait_for_announcement(service.stderr).rstrip("/")

        # the victim parks mid-job on the hold file, so the SIGKILL below
        # provably lands between its claim and its terminal event
        victim_env = python_env()
        victim_env["CONFVALLEY_WORKER_HOLD_FILE"] = str(hold_file)
        victim = subprocess.Popen(
            cli_command([
                "worker", "--journal", str(jobs_dir), "--id", "victim",
                "--lease-ttl", "1.0", "--poll", "0.02",
            ]),
            env=victim_env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

        # 1. submit with a callback; the victim claims it
        result = cli([
            "submit", str(spec), "--url", base,
            "--inline-source", f"ini:{config}",
            "--callback", callback,
        ])
        assert result.returncode == 0, result.stderr
        job_id = result.stdout.strip()
        record = poll_until(
            "the victim to claim the job",
            lambda: (lambda r: r if r["state"] == "RUNNING" else None)(
                get_json(f"{base}/jobs/{job_id}")
            ),
        )
        assert record["worker"] == "victim", record
        print(f"ok victim claimed {job_id} (epoch {record['epoch']})")

        # 2. SIGKILL mid-job; the reaper re-queues; the rescuer finishes
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=10)
        hold_file.unlink()
        rescuer = subprocess.Popen(
            cli_command([
                "worker", "--journal", str(jobs_dir), "--id", "rescuer",
                "--lease-ttl", "1.0", "--poll", "0.02",
            ]),
            env=python_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        record = poll_until(
            "the rescuer to finish the re-queued job",
            lambda: (lambda r: r if r["state"] in (
                "DONE", "FAILED", "EXPIRED") else None)(
                get_json(f"{base}/jobs/{job_id}")
            ),
        )
        assert record["state"] == "DONE", record
        assert record["worker"] == "rescuer", record
        assert record["requeues"] == 1, (
            f"expected exactly one re-queue, got {record['requeues']}"
        )
        assert record["epoch"] == 2, record
        assert record["result"]["fingerprint"] == expected, (
            "verdict diverged from the direct validate run after the kill"
        )
        print("ok SIGKILL mid-job -> re-queued exactly once, "
              "fingerprint parity")

        # 3. the webhook lands (first POST got 503; delivery retried)
        payload = poll_until(
            "the callback webhook delivery",
            lambda: next(iter(CallbackReceiver.received), None),
        )
        assert payload["id"] == job_id, payload
        assert payload["state"] == "DONE", payload
        assert payload["result"]["fingerprint"] == expected, payload
        print("ok webhook received after one induced 503 (retry worked)")

        # 4. the fleet view knows the rescuer and the expiry accounting
        fleet = get_json(f"{base}/workers")
        assert fleet["mode"] == "multi-process", fleet
        assert fleet["lease_expiries"] >= 1, fleet
        assert fleet["requeues"] >= 1, fleet
        rows = {row["id"]: row for row in fleet["workers"]}
        assert rows["rescuer"]["alive"], rows
        assert rows["rescuer"]["counts"] == {"claims": 1, "done": 1}, rows
        print("ok GET /workers fleet view")

        # 5. clean SIGTERM drain (worker first, then the coordinator)
        rescuer.send_signal(signal.SIGTERM)
        assert rescuer.wait(timeout=10) == 0, "rescuer SIGTERM drain failed"
        service.send_signal(signal.SIGTERM)
        returncode = service.wait(timeout=SHUTDOWN_DEADLINE)
        assert returncode == 0, f"service exited {returncode} on SIGTERM"
        print("ok SIGTERM drain")
    finally:
        receiver.shutdown()
        for process in (victim, rescuer, service):
            if process is not None and process.poll() is None:
                process.kill()
                process.wait(timeout=5)

    print("workers-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
