"""Workflow-engine overhead over a bare single-pass scan.

A pure-validation workflow (parse → validate → report) does exactly the
work of a direct :class:`ValidationSession` scan plus the engine's
bookkeeping: gate evaluation, per-step supervision, result assembly.  The
documented budget for that bookkeeping is **<5 % wall clock** on the
Type A corpus — and the merged report must stay fingerprint-identical to
the bare scan, which is also asserted here at every scale.

Splicing is disabled so the measured workflow run repeats the full
pipeline each round (splice hits would make the "overhead" negative and
the comparison meaningless).
"""

from __future__ import annotations

import time

from repro.benchutil import format_table
from repro.core.session import ValidationSession
from repro.synthetic import EXPERT_SPECS
from repro.workflows import Workflow, WorkflowEngine

ROUNDS = 3
#: below this corpus size per-run jitter dwarfs the engine bookkeeping
OVERHEAD_GATE_INSTANCES = 3000
OVERHEAD_CEILING = 1.05


def best_of(fn, rounds=ROUNDS):
    result, best = None, float("inf")
    for __ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return result, best


def workflow_sources(dataset) -> list[dict]:
    return [
        {
            "format": format_name,
            "text": text,
            "source": f"{dataset.name}#{index}",
            "scope": scope,
        }
        for index, (format_name, text, scope) in enumerate(dataset.sources)
    ]


def test_workflow_overhead(benchmark, emit, type_a_dataset, type_a_store):
    spec = EXPERT_SPECS["type_a"]

    def bare_scan():
        session = ValidationSession()
        for index, (format_name, text, scope) in enumerate(
            type_a_dataset.sources
        ):
            session.load_text(
                format_name, text,
                source=f"{type_a_dataset.name}#{index}", scope=scope,
            )
        return session.validate(spec)

    workflow = Workflow.from_dict(
        {
            "workflow": {"name": "overhead"},
            "steps": [
                {"name": "parse", "sources": workflow_sources(type_a_dataset)},
                {"name": "validate", "spec_text": spec},
                {"name": "report", "gate": "always"},
            ],
        }
    )

    def workflow_scan():
        return WorkflowEngine(workflow, splice=False).run()

    def measure():
        bare_scan()  # warm-up: shared caches must not bill either side
        bare = best_of(bare_scan)
        flow = best_of(workflow_scan)
        return bare, flow

    (bare_report, bare_seconds), (outcome, flow_seconds) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    # the engine must never change validation output
    assert outcome.fingerprint() == bare_report.fingerprint()
    assert all(result.status == "ok" for result in outcome.steps)

    ratio = flow_seconds / bare_seconds
    emit(
        "workflow_overhead",
        format_table(
            ["Mode", "Seconds (best of 3)", "Overhead"],
            [
                ("bare scan", f"{bare_seconds:.3f}", "baseline"),
                ("workflow (3 steps)", f"{flow_seconds:.3f}",
                 f"{ratio - 1:+.1%}"),
            ],
        )
        + f"\n(Type A corpus, {type_a_store.instance_count} instances, "
        "splicing disabled; fingerprints identical)",
    )

    if type_a_store.instance_count >= OVERHEAD_GATE_INSTANCES:
        assert ratio < OVERHEAD_CEILING, (
            f"workflow overhead {ratio - 1:.1%} exceeds "
            f"{OVERHEAD_CEILING - 1:.0%}"
        )


def test_workflow_splice_pays_for_itself(benchmark, emit, type_a_dataset):
    """Second run of an unchanged inline-source workflow splices parse and
    validate, so the steady-state re-run beats the from-scratch run."""
    spec = EXPERT_SPECS["type_a"]
    workflow = Workflow.from_dict(
        {
            "workflow": {"name": "steady"},
            "steps": [
                {"name": "parse", "sources": workflow_sources(type_a_dataset)},
                {"name": "validate", "spec_text": spec},
            ],
        }
    )
    engine = WorkflowEngine(workflow)

    def first_then_second():
        engine.reset()
        first = engine.run()
        started = time.perf_counter()
        second = engine.run()
        return first, second, time.perf_counter() - started

    first, second, second_seconds = benchmark.pedantic(
        first_then_second, rounds=1, iterations=1
    )
    assert second.fingerprint() == first.fingerprint()
    assert second.step("parse").spliced and second.step("validate").spliced
    emit(
        "workflow_splice",
        format_table(
            ["Run", "Steps executed", "Steps spliced"],
            [
                ("first", sum(1 for s in first.steps if not s.spliced), 0),
                ("second (unchanged)",
                 sum(1 for s in second.steps if not s.spliced),
                 sum(1 for s in second.steps if s.spliced)),
            ],
        )
        + f"\n(second run {second_seconds * 1000:.1f} ms)",
    )
