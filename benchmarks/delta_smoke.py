"""End-to-end smoke test of watch-mode incremental validation.

Starts ``confvalley service --delta --watch`` as a *subprocess* (exactly
as the runbook in docs/INCREMENTAL.md describes), waits for the
bootstrap validation line, edits one key in the watched config, and
asserts that:

* exactly ONE delta scan fires for the edit (no scan storms, no missed
  change), scoped to a strict subset of the statements;
* the fingerprint digest the watch line prints is byte-identical to the
  digest a full, in-process scan of the same files produces — the
  delta/full equivalence guarantee across a real process boundary;
* an idle quiet period produces no further validations;
* SIGTERM shuts the loop down cleanly with the last verdict as the exit
  code.

Run directly (``make delta-smoke``)::

    PYTHONPATH=src python benchmarks/delta_smoke.py
"""

from __future__ import annotations

import os
import queue
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import SourceSpec, ValidationService  # noqa: E402
from repro.jobs.model import report_fingerprint_digest  # noqa: E402

SPEC = (
    "$fabric.Timeout -> int & [1, 60]\n"
    "$fabric.RecoveryAttempts -> int & [1, 10]\n"
    "$fabric.Name -> nonempty\n"
)
BASE_INI = "[fabric]\nTimeout = 30\nRecoveryAttempts = 3\nName = web\n"
EDIT_INI = "[fabric]\nTimeout = 45\nRecoveryAttempts = 3\nName = web\n"

WATCH_LINE = re.compile(
    r"\[(?P<seq>\d+)\] (?P<status>PASS|FAIL) .*"
    r"mode=(?P<mode>[a-z-]+)(?: selected=(?P<sel>\d+)/(?P<total>\d+))?.*"
    r"fingerprint=(?P<digest>[0-9a-f]{64})"
)
STARTUP_DEADLINE = 30.0
QUIET_PERIOD = 1.0  # seconds of idle polling that must produce no scans
SHUTDOWN_DEADLINE = 10.0


def reader(stream, lines: "queue.Queue[str]") -> None:
    for line in stream:
        sys.stderr.write("service| " + line)
        lines.put(line)


def next_watch_line(lines: "queue.Queue[str]", deadline: float) -> re.Match:
    while True:
        remaining = deadline - time.monotonic()
        assert remaining > 0, "no watch line within deadline"
        try:
            line = lines.get(timeout=remaining)
        except queue.Empty:
            raise AssertionError("no watch line within deadline") from None
        # non-validation output (diagnostics, health continuations) is skipped
        match = WATCH_LINE.search(line)
        if match:
            return match


def expect_digest(spec: Path, config: Path) -> str:
    """What a full, in-process scan of the current files fingerprints to."""
    service = ValidationService(str(spec), [SourceSpec("ini", str(config))])
    return report_fingerprint_digest(service.run_once().report)


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="confvalley-delta-smoke-"))
    spec = workdir / "spec.cpl"
    config = workdir / "conf.ini"
    spec.write_text(SPEC)
    config.write_text(BASE_INI)

    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.console.cli", "service",
            str(spec), "--source", f"ini:{config}",
            "--delta", "--watch", "--interval", "0.1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    lines: "queue.Queue[str]" = queue.Queue()
    threading.Thread(
        target=reader, args=(process.stdout, lines), daemon=True
    ).start()

    try:
        # 1. bootstrap validation: everything runs once
        first = next_watch_line(lines, time.monotonic() + STARTUP_DEADLINE)
        assert first.group("status") == "PASS", first.group(0)
        assert first.group("mode") == "bootstrap", first.group(0)
        assert first.group("sel") == first.group("total") == "3", first.group(0)
        assert first.group("digest") == expect_digest(spec, config)

        # 2. one edit → exactly one delta scan, scoped to the one statement
        config.write_text(EDIT_INI)
        second = next_watch_line(lines, time.monotonic() + STARTUP_DEADLINE)
        assert second.group("status") == "PASS", second.group(0)
        assert second.group("mode") == "delta", second.group(0)
        assert second.group("sel") == "1", second.group(0)
        assert second.group("total") == "3", second.group(0)
        # the equivalence guarantee, across the process boundary
        assert second.group("digest") == expect_digest(spec, config)

        # 3. idle polls must not validate
        quiet_until = time.monotonic() + QUIET_PERIOD
        while time.monotonic() < quiet_until:
            try:
                stray = lines.get(timeout=quiet_until - time.monotonic())
            except queue.Empty:
                break
            assert not WATCH_LINE.search(stray), f"stray scan: {stray!r}"

        # 4. clean SIGTERM shutdown, exit code = last verdict (PASS → 0)
        process.send_signal(signal.SIGTERM)
        code = process.wait(timeout=SHUTDOWN_DEADLINE)
        assert code == 0, f"expected exit 0 after passing scans, got {code}"
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=5)

    print("delta smoke: OK (bootstrap 3/3, delta 1/3, fingerprint parity, "
          "quiet idle, clean shutdown)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
