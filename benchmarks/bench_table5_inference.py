"""Table 5 — constraints inferred per kind on the three Azure data types.

Paper Table 5 reports, per configuration type, the number of classes and
instances analyzed and the count of inferred constraints per kind (Type,
Nonempty, Range, Equality, Consistency, Uniqueness).  Example shape: every
type has many Type and Nonempty constraints; Range/Equality/Consistency/
Uniqueness depend on whether the constraint is applicable to the data.

We run the inference engine on the three synthetic snapshots, print the
same table, and benchmark the inference pass itself.
"""

from __future__ import annotations

import pytest

from repro import InferenceEngine
from repro.benchutil import format_table

COLUMNS = ("type", "nonempty", "range", "equality", "consistency", "uniqueness", "enum")


@pytest.fixture(scope="module")
def inference_results(type_a_store, type_b_store, type_c_store):
    engine = InferenceEngine()
    return {
        "Type A": (type_a_store, engine.infer(type_a_store)),
        "Type B": (type_b_store, engine.infer(type_b_store)),
        "Type C": (type_c_store, engine.infer(type_c_store)),
    }


def test_table5_report(benchmark, emit, inference_results):
    def build():
        rows = []
        for label, (store, result) in inference_results.items():
            counts = result.counts_by_kind()
            rows.append(
                (label, store.class_count, store.instance_count)
                + tuple(counts.get(kind, 0) for kind in COLUMNS)
                + (len(result.constraints),)
            )
        return rows

    rows = benchmark(build)
    emit(
        "table5_inference",
        format_table(
            ["Config.", "Classes", "Instances", "Type", "Nonempty", "Range",
             "Equality", "Consistency", "Uniqueness", "Enum", "Total"],
            rows,
        ),
    )
    by_label = {row[0]: row for row in rows}
    for label, row in by_label.items():
        classes, type_count, nonempty = row[1], row[3], row[4]
        # shape: most classes have a type or nonempty constraint inferred
        assert type_count > 0 and nonempty > 0
        assert type_count <= classes
    # Type A (rich catalog, consistent params) infers consistency+uniqueness
    assert by_label["Type A"][7] > 0 or by_label["Type A"][8] > 0


@pytest.mark.parametrize("label", ["Type A", "Type B", "Type C"])
def test_table5_inference_speed(benchmark, label, inference_results):
    store, __ = inference_results[label]
    engine = InferenceEngine()
    result = benchmark.pedantic(engine.infer, args=(store,), rounds=3, iterations=1)
    assert result.constraints
