"""Ablation — incremental (change-driven) vs full validation per check-in.

DESIGN.md's check-in scenario (paper §3.2) gates every configuration update
with validation.  This ablation quantifies what the incremental selector in
:mod:`repro.core.incremental` buys over re-running the whole corpus on each
small update, on the Type A snapshot with its expert corpus plus the
inferred corpus (hundreds of specs — the realistic production mix).

Shape claims: single-parameter changes select a small fraction of the
corpus; incremental validation is ≥2× faster per check-in than full; both
report identical violations for the touched classes.

The second half benchmarks the *service-level* delta path (ISSUE-6): a
``ValidationService(delta=True)`` twin driven through single-key edits
must re-validate under 10% of the statements per edit while producing
reports whose ``fingerprint()`` is byte-identical to a full-scan twin's.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import (
    ConfigRepository,
    IncrementalValidator,
    InferenceEngine,
    SourceSpec,
    ValidationService,
    ValidationSession,
)
from repro.benchutil import format_table
from repro.repository.model import ConfigInstance
from repro.synthetic import EXPERT_SPECS


@pytest.fixture(scope="module")
def corpus(type_a_store):
    inferred = InferenceEngine().infer(type_a_store).to_cpl()
    return EXPERT_SPECS["type_a"] + "\n" + inferred


@pytest.fixture(scope="module")
def checkins(type_a_dataset):
    """Ten single-parameter check-ins derived from the base snapshot."""
    base = type_a_dataset.parse()
    repo = ConfigRepository()
    repo.commit(base, "base")
    edits = []
    taken = set()
    for instance in base:
        leaf = instance.key.leaf_name
        if leaf in taken:
            continue
        if "TimeoutSeconds" in leaf or leaf in ("MachinePool", "FccDnsName"):
            taken.add(leaf)
            edits.append(instance)
        if len(edits) == 10:
            break
    snapshots = []
    for edit in edits:
        changed = [
            ConfigInstance(i.key, "7" if i.key == edit.key else i.value, i.source)
            for i in base
        ]
        snapshots.append(repo.commit(changed, f"edit {edit.key.leaf_name}"))
    return repo, snapshots


def test_incremental_ablation(benchmark, emit, corpus, checkins, type_a_store):
    repo, snapshots = checkins
    validator = IncrementalValidator(corpus)
    base = repo.log()[0]

    def run_incremental():
        total_selected = 0
        elapsed = 0.0
        for snapshot in snapshots:
            change = repo.diff(base, snapshot)
            store = repo.store_for(snapshot)
            started = time.perf_counter()
            validator.validate_change(store, change)
            elapsed += time.perf_counter() - started
            total_selected += validator.last_selected
        return total_selected, elapsed

    selected, incremental_seconds = benchmark.pedantic(
        run_incremental, rounds=1, iterations=1
    )

    started = time.perf_counter()
    for snapshot in snapshots:
        store = repo.store_for(snapshot)
        ValidationSession(store=store).validate(corpus)
    full_seconds = time.perf_counter() - started

    per_checkin_selected = selected / len(snapshots)
    emit(
        "incremental_ablation",
        format_table(
            ["Strategy", "Specs/check-in", "Total time (s)"],
            [
                ("full corpus", validator.statement_count, f"{full_seconds:.3f}"),
                ("incremental", f"{per_checkin_selected:.1f}",
                 f"{incremental_seconds:.3f}"),
            ],
        )
        + f"\nspeedup: {full_seconds / max(incremental_seconds, 1e-9):.1f}x "
        f"over {len(snapshots)} single-parameter check-ins",
    )
    # small change → small spec selection
    assert per_checkin_selected < validator.statement_count / 4
    # and a real end-to-end win
    assert incremental_seconds * 2 < full_seconds


def test_incremental_agrees_with_full_on_faulty_checkin(corpus, checkins, benchmark):
    repo, __ = checkins
    base = repo.log()[0]
    broken = [
        ConfigInstance(
            i.key,
            "" if i.key.leaf_name == "FccDnsName" else i.value,
            i.source,
        )
        for i in base.instances
    ]
    snapshot = repo.commit(broken, "break every FccDnsName")
    change = repo.diff(base, snapshot)
    store = repo.store_for(snapshot)

    validator = IncrementalValidator(corpus)
    incremental = benchmark.pedantic(
        validator.validate_change, args=(store, change), rounds=1, iterations=1
    )
    full = ValidationSession(store=store).validate(corpus)

    incremental_keys = {(v.key, v.constraint) for v in incremental.violations}
    full_keys = {
        (v.key, v.constraint)
        for v in full.violations
        if "FccDnsName" in v.key
    }
    assert incremental_keys == full_keys
    assert incremental_keys  # the fault is actually reported


# ---------------------------------------------------------------------------
# Service-level delta scans (ISSUE-6 acceptance gate)
# ---------------------------------------------------------------------------

DELTA_CLASSES = 12
DELTA_KEYS = 10  # DELTA_CLASSES * DELTA_KEYS = 120 statements


def _write_corpus(tmp_path, values: dict):
    """One spec statement and one INI key per (class, key) pair."""
    spec_lines, ini_lines = [], []
    for c in range(DELTA_CLASSES):
        ini_lines.append(f"[svc{c}]")
        for k in range(DELTA_KEYS):
            # distinct ranges keep the compiler's statement merging from
            # collapsing the corpus into one evaluation unit
            ceiling = 1000 + c * DELTA_KEYS + k
            spec_lines.append(f"$svc{c}.Param{k} -> int & [0, {ceiling}]")
            ini_lines.append(f"Param{k} = {values.get((c, k), (c * 37 + k) % 900)}")
    spec = tmp_path / "spec.cpl"
    config = tmp_path / "corpus.ini"
    spec.write_text("\n".join(spec_lines) + "\n")
    config.write_text("\n".join(ini_lines) + "\n")
    stat = os.stat(config)
    os.utime(config, ns=(stat.st_atime_ns + 1_000_000, stat.st_mtime_ns + 1_000_000))
    return spec, config


def test_delta_service_scoping_and_parity(tmp_path, emit, benchmark):
    """Steady-state re-validation cost must scale with the change size.

    Ten single-key check-ins against a 120-statement corpus: the delta
    twin must select <10% of the statements per check-in and every one of
    its reports must fingerprint identically to the full twin's.
    """
    spec, config = _write_corpus(tmp_path, {})
    sources = [SourceSpec("ini", str(config))]
    full = ValidationService(str(spec), sources)
    delta = ValidationService(str(spec), sources, delta=True)

    bootstrap_full = full.run_once()
    bootstrap_delta = delta.run_once()
    assert bootstrap_delta.report.fingerprint() == bootstrap_full.report.fingerprint()
    assert bootstrap_delta.delta["mode"] == "bootstrap"

    checkins = 10
    values: dict = {}
    timings = {"full": 0.0, "delta": 0.0}
    fractions = []

    def run_checkins():
        for index in range(checkins):
            edit = (index % DELTA_CLASSES, (index * 3) % DELTA_KEYS)
            values[edit] = 500 + index
            _write_corpus(tmp_path, values)
            started = time.perf_counter()
            full_result = full.run_once()
            timings["full"] += time.perf_counter() - started
            started = time.perf_counter()
            delta_result = delta.run_once()
            timings["delta"] += time.perf_counter() - started
            assert (
                delta_result.report.fingerprint()
                == full_result.report.fingerprint()
            ), f"check-in {index}: delta report diverged from full scan"
            assert delta_result.delta["mode"] == "delta"
            fractions.append(
                delta_result.delta["selected"]
                / delta_result.delta["statements_total"]
            )

    benchmark.pedantic(run_checkins, rounds=1, iterations=1)

    mean_fraction = sum(fractions) / len(fractions)
    stats = delta.stats()["delta"]
    emit(
        "delta_service",
        format_table(
            ["Strategy", "Statements/check-in", "Total time (s)"],
            [
                ("full scan", DELTA_CLASSES * DELTA_KEYS, f"{timings['full']:.3f}"),
                (
                    "delta scan",
                    f"{mean_fraction * DELTA_CLASSES * DELTA_KEYS:.1f}",
                    f"{timings['delta']:.3f}",
                ),
            ],
        )
        + f"\nmean selection: {mean_fraction:.1%} of the corpus over "
        f"{checkins} single-key check-ins; fallbacks: {stats['fallbacks']}; "
        f"every delta report fingerprint-identical to its full twin",
    )
    # the ISSUE-6 acceptance gate: a single-key change re-validates <10%
    assert mean_fraction < 0.10, f"delta selected {mean_fraction:.1%}"
    assert max(fractions) < 0.10
    assert stats["fallbacks"] == 0
