"""Ablation — incremental (change-driven) vs full validation per check-in.

DESIGN.md's check-in scenario (paper §3.2) gates every configuration update
with validation.  This ablation quantifies what the incremental selector in
:mod:`repro.core.incremental` buys over re-running the whole corpus on each
small update, on the Type A snapshot with its expert corpus plus the
inferred corpus (hundreds of specs — the realistic production mix).

Shape claims: single-parameter changes select a small fraction of the
corpus; incremental validation is ≥2× faster per check-in than full; both
report identical violations for the touched classes.
"""

from __future__ import annotations

import time

import pytest

from repro import ConfigRepository, IncrementalValidator, InferenceEngine, ValidationSession
from repro.benchutil import format_table
from repro.repository.model import ConfigInstance
from repro.synthetic import EXPERT_SPECS


@pytest.fixture(scope="module")
def corpus(type_a_store):
    inferred = InferenceEngine().infer(type_a_store).to_cpl()
    return EXPERT_SPECS["type_a"] + "\n" + inferred


@pytest.fixture(scope="module")
def checkins(type_a_dataset):
    """Ten single-parameter check-ins derived from the base snapshot."""
    base = type_a_dataset.parse()
    repo = ConfigRepository()
    repo.commit(base, "base")
    edits = []
    taken = set()
    for instance in base:
        leaf = instance.key.leaf_name
        if leaf in taken:
            continue
        if "TimeoutSeconds" in leaf or leaf in ("MachinePool", "FccDnsName"):
            taken.add(leaf)
            edits.append(instance)
        if len(edits) == 10:
            break
    snapshots = []
    for edit in edits:
        changed = [
            ConfigInstance(i.key, "7" if i.key == edit.key else i.value, i.source)
            for i in base
        ]
        snapshots.append(repo.commit(changed, f"edit {edit.key.leaf_name}"))
    return repo, snapshots


def test_incremental_ablation(benchmark, emit, corpus, checkins, type_a_store):
    repo, snapshots = checkins
    validator = IncrementalValidator(corpus)
    base = repo.log()[0]

    def run_incremental():
        total_selected = 0
        elapsed = 0.0
        for snapshot in snapshots:
            change = repo.diff(base, snapshot)
            store = repo.store_for(snapshot)
            started = time.perf_counter()
            validator.validate_change(store, change)
            elapsed += time.perf_counter() - started
            total_selected += validator.last_selected
        return total_selected, elapsed

    selected, incremental_seconds = benchmark.pedantic(
        run_incremental, rounds=1, iterations=1
    )

    started = time.perf_counter()
    for snapshot in snapshots:
        store = repo.store_for(snapshot)
        ValidationSession(store=store).validate(corpus)
    full_seconds = time.perf_counter() - started

    per_checkin_selected = selected / len(snapshots)
    emit(
        "incremental_ablation",
        format_table(
            ["Strategy", "Specs/check-in", "Total time (s)"],
            [
                ("full corpus", validator.statement_count, f"{full_seconds:.3f}"),
                ("incremental", f"{per_checkin_selected:.1f}",
                 f"{incremental_seconds:.3f}"),
            ],
        )
        + f"\nspeedup: {full_seconds / max(incremental_seconds, 1e-9):.1f}x "
        f"over {len(snapshots)} single-parameter check-ins",
    )
    # small change → small spec selection
    assert per_checkin_selected < validator.statement_count / 4
    # and a real end-to-end win
    assert incremental_seconds * 2 < full_seconds


def test_incremental_agrees_with_full_on_faulty_checkin(corpus, checkins, benchmark):
    repo, __ = checkins
    base = repo.log()[0]
    broken = [
        ConfigInstance(
            i.key,
            "" if i.key.leaf_name == "FccDnsName" else i.value,
            i.source,
        )
        for i in base.instances
    ]
    snapshot = repo.commit(broken, "break every FccDnsName")
    change = repo.diff(base, snapshot)
    store = repo.store_for(snapshot)

    validator = IncrementalValidator(corpus)
    incremental = benchmark.pedantic(
        validator.validate_change, args=(store, change), rounds=1, iterations=1
    )
    full = ValidationSession(store=store).validate(corpus)

    incremental_keys = {(v.key, v.constraint) for v in incremental.violations}
    full_keys = {
        (v.key, v.constraint)
        for v in full.violations
        if "FccDnsName" in v.key
    }
    assert incremental_keys == full_keys
    assert incremental_keys  # the fault is actually reported
