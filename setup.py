"""Legacy setup shim.

This offline environment has setuptools but no `wheel` package, so PEP 660
editable installs (`pip install -e .` via pyproject build backend) fail with
`invalid command 'bdist_wheel'`.  This shim lets
`pip install -e . --no-build-isolation --no-use-pep517` (and plain
`python setup.py develop`) work; all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
