"""Runtime information and filesystem abstractions (paper §4.3)."""

from .filesystem import FakeFileSystem, FileSystem, RealFileSystem
from .info import HostRuntime, RuntimeProvider, StaticRuntime

__all__ = [
    "FileSystem",
    "RealFileSystem",
    "FakeFileSystem",
    "RuntimeProvider",
    "HostRuntime",
    "StaticRuntime",
]
