"""Runtime information, filesystem and clock abstractions (paper §4.3)."""

from .clock import Clock, FakeClock, MonotonicClock, get_clock, set_clock
from .filesystem import FakeFileSystem, FileSystem, RealFileSystem
from .info import HostRuntime, RuntimeProvider, StaticRuntime

__all__ = [
    "FileSystem",
    "RealFileSystem",
    "FakeFileSystem",
    "RuntimeProvider",
    "HostRuntime",
    "StaticRuntime",
    "Clock",
    "MonotonicClock",
    "FakeClock",
    "get_clock",
    "set_clock",
]
