"""Pluggable filesystem abstraction backing the ``exists`` predicate.

The paper's example specifications check that configured paths exist
(``$OSBuildPath -> path & exists``).  In production that touches the real
filesystem (or a network share); in tests and benchmarks we substitute an
in-memory fake so validation runs are hermetic and deterministic.
"""

from __future__ import annotations

import os
from typing import Iterable

__all__ = ["FileSystem", "RealFileSystem", "FakeFileSystem"]


class FileSystem:
    """Interface consumed by runtime predicates."""

    def exists(self, path: str) -> bool:
        raise NotImplementedError


class RealFileSystem(FileSystem):
    """Delegates to the host filesystem."""

    def exists(self, path: str) -> bool:
        return os.path.exists(path)


class FakeFileSystem(FileSystem):
    """In-memory path set; a path exists when it or a descendant was added.

    Both Windows (``\\\\share\\OS\\v2``) and POSIX separators are normalized
    so Azure-style UNC paths work on any host.
    """

    def __init__(self, paths: Iterable[str] = ()):
        self._paths: set[str] = set()
        for path in paths:
            self.add(path)

    @staticmethod
    def _normalize(path: str) -> str:
        return path.replace("\\", "/").rstrip("/").lower()

    def add(self, path: str) -> None:
        normalized = self._normalize(path)
        # Register every ancestor so directory prefixes also exist.
        while normalized:
            self._paths.add(normalized)
            parent, __, __ = normalized.rpartition("/")
            if parent == normalized:
                break
            normalized = parent

    def remove(self, path: str) -> None:
        self._paths.discard(self._normalize(path))

    def exists(self, path: str) -> bool:
        return self._normalize(path) in self._paths
