"""Runtime information provider (paper §4.3).

"The validation engine may also collect some runtime information such as the
host environment to evaluate predicates that require this information.  For
example, the OS name of a host or date time can be used in predicates."

The provider is injectable: validation sessions default to
:class:`HostRuntime` but tests and the synthetic benchmarks pin a
:class:`StaticRuntime` so predicate outcomes are reproducible.  Values are
exposed to CPL as pseudo-variables (``$env.os``, ``$env.hostname``, …) and
consumed by the evaluator's variable-substitution step, plus the
``reachable`` predicate resolves endpoints against the provider.
"""

from __future__ import annotations

import datetime as _datetime
import hashlib
import os
import platform
import socket
from typing import Mapping, Optional

from .filesystem import FakeFileSystem, FileSystem, RealFileSystem

__all__ = ["RuntimeProvider", "HostRuntime", "StaticRuntime"]


class RuntimeProvider:
    """Environment facts + filesystem + endpoint reachability."""

    def __init__(self, filesystem: Optional[FileSystem] = None):
        self.filesystem = filesystem if filesystem is not None else RealFileSystem()

    def environment(self) -> dict[str, str]:
        """Facts exposed to CPL as ``$env.<name>`` variables."""
        raise NotImplementedError

    def read_bytes(self, path: str) -> bytes:
        """Read a configuration/spec file for the validation pipeline.

        All source and spec-file I/O in :class:`~repro.core.session.ValidationSession`
        routes through this hook, so providers can virtualize it — notably
        :class:`repro.resilience.FaultyRuntimeProvider`, which injects
        deterministic I/O faults for chaos testing.
        """
        with open(path, "rb") as handle:
            return handle.read()

    def probe(self, path: str) -> Optional[tuple[int, int, str]]:
        """Change token for ``path``: ``(mtime_ns, size, content digest)``.

        ``None`` when the file cannot be statted or read.  The continuous
        service compares successive probes to decide whether a watched
        file changed; including size and a content hash catches rewrites
        that preserve the mtime (same-second writes, ``cp -p``, archive
        extraction), which an mtime-only comparison silently misses.
        """
        try:
            stat = os.stat(path)
            # Deliberately bypasses read_bytes: the probe is a change
            # detector, not pipeline I/O.  Fault-injecting providers
            # target load-time reads; a probe consuming injected faults
            # would desynchronize seeded chaos plans from the loads they
            # are meant to hit.
            with open(path, "rb") as handle:
                digest = hashlib.sha256(handle.read()).hexdigest()
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size, digest)

    def is_reachable(self, endpoint: str) -> bool:
        raise NotImplementedError


class HostRuntime(RuntimeProvider):
    """Reads facts from the host machine."""

    def environment(self) -> dict[str, str]:
        now = _datetime.datetime.now()
        return {
            "os": platform.system(),
            "hostname": socket.gethostname(),
            "date": now.strftime("%Y-%m-%d"),
            "time": now.strftime("%H:%M:%S"),
            "weekday": now.strftime("%A"),
        }

    def is_reachable(self, endpoint: str) -> bool:
        host, __, port_text = endpoint.partition(":")
        port = int(port_text) if port_text.isdigit() else 80
        try:
            with socket.create_connection((host, port), timeout=1):
                return True
        except OSError:
            return False


class StaticRuntime(RuntimeProvider):
    """Fixed facts and reachable-endpoint set, for deterministic runs."""

    def __init__(
        self,
        environment: Optional[Mapping[str, str]] = None,
        reachable: Optional[set[str]] = None,
        filesystem: Optional[FileSystem] = None,
    ):
        super().__init__(filesystem if filesystem is not None else FakeFileSystem())
        self._environment = dict(environment or {"os": "Linux", "hostname": "testhost"})
        self._reachable = set(reachable or ())

    def environment(self) -> dict[str, str]:
        return dict(self._environment)

    def add_reachable(self, endpoint: str) -> None:
        self._reachable.add(endpoint)

    def is_reachable(self, endpoint: str) -> bool:
        return endpoint in self._reachable
