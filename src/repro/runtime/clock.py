"""Injectable monotonic clock for timing instrumentation.

Every wall-clock measurement in the validation pipeline — report
``elapsed_seconds``, per-spec profile timings, shard timings, inference
latency, observability spans and histograms — reads the *process clock*
installed here instead of calling ``time.perf_counter()`` directly.  In
production the default :class:`MonotonicClock` is exactly
``time.perf_counter``; tests and the chaos/observability harnesses install
a :class:`FakeClock` so timing-derived behavior (span durations, histogram
buckets, overhead accounting) is fully deterministic.

The clock is process-wide on purpose: fork-based shard workers inherit it
through copy-on-write memory, and thread workers share it, so one
``set_clock`` call governs the whole pipeline.  It is *not* part of
:class:`~repro.runtime.info.RuntimeProvider` — providers travel into
worker processes by pickling, while the clock must stay ambient.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Clock", "MonotonicClock", "FakeClock", "get_clock", "set_clock", "now"]


class Clock:
    """Monotonic time source: ``now()`` returns seconds as a float."""

    def now(self) -> float:
        raise NotImplementedError


class MonotonicClock(Clock):
    """The production clock — delegates to ``time.perf_counter``."""

    def now(self) -> float:
        return time.perf_counter()


class FakeClock(Clock):
    """Deterministic clock for tests.

    ``tick`` seconds elapse automatically on every :meth:`now` call (so two
    consecutive reads always order correctly, like a real monotonic clock);
    :meth:`advance` models explicit passage of time.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0):
        self._now = float(start)
        self.tick = float(tick)
        self.reads = 0

    def now(self) -> float:
        self.reads += 1
        current = self._now
        self._now += self.tick
        return current

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self._now += seconds


_clock: Clock = MonotonicClock()


def get_clock() -> Clock:
    """The currently installed process clock."""
    return _clock


def set_clock(clock: Optional[Clock]) -> Clock:
    """Install ``clock`` (``None`` restores the monotonic default).

    Returns the previously installed clock so callers can restore it.
    """
    global _clock
    previous = _clock
    _clock = clock if clock is not None else MonotonicClock()
    return previous


def now() -> float:
    """Read the installed clock (the pipeline's ``perf_counter``)."""
    return _clock.now()
