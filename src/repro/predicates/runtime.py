"""Runtime-dependent predicate primitives (paper §4.3, §4.2.6).

``exists`` checks a configured path against the session's filesystem
abstraction; ``reachable`` is the paper's example of a primitive added by
extending the compiler ("e.g., keyword reachable") — here it asks the
runtime provider whether an endpoint answers.
"""

from __future__ import annotations

from ..runtime import RuntimeProvider
from .base import register_predicate

__all__ = ["register_runtime_predicates"]


def _exists(value: str, runtime: RuntimeProvider = None) -> bool:
    if runtime is None:
        return False
    return runtime.filesystem.exists(value)


def _reachable(value: str, runtime: RuntimeProvider = None) -> bool:
    if runtime is None:
        return False
    return runtime.is_reachable(value)


def register_runtime_predicates() -> None:
    register_predicate(
        "exists",
        _exists,
        message="path {value!r} of {key} does not exist",
        needs_runtime=True,
    )
    register_predicate(
        "reachable",
        _reachable,
        message="endpoint {value!r} of {key} is not reachable",
        needs_runtime=True,
    )
