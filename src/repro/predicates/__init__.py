"""CPL predicate primitives and the plug-in registry (paper §4.2.1, §4.2.6).

Importing this package registers the built-in primitives.  User code extends
the language by calling :func:`register_predicate` /
:func:`register_aggregate` — no compiler changes needed, matching the
paper's plug-in extension path.
"""

from .base import (
    PredicateSpec,
    get_predicate,
    is_registered,
    predicate_names,
    register_aggregate,
    register_predicate,
)
from .aggregate import register_aggregate_predicates
from .relational import RELATION_OPS, compare, in_range, values_equal
from .runtime import register_runtime_predicates
from .types import register_type_predicates
from .value import register_value_predicates

register_type_predicates()
register_value_predicates()
register_aggregate_predicates()
register_runtime_predicates()

__all__ = [
    "PredicateSpec",
    "get_predicate",
    "is_registered",
    "predicate_names",
    "register_aggregate",
    "register_predicate",
    "RELATION_OPS",
    "compare",
    "in_range",
    "values_equal",
]
