"""Data-type predicate primitives (paper Figure 2 bottom tier).

Each primitive accepts a raw string value and reports whether it parses as
the named type.  List variants (``ip`` over ``"10.0.0.1,10.0.0.2"``) are
*not* implicit — the paper handles list values through transformations
(``split(',')``) or the explicit ``list(<type>)`` forms registered here.
"""

from __future__ import annotations

from .. import typesys
from .base import register_predicate

__all__ = ["register_type_predicates"]


def _is_int(value: str) -> bool:
    return typesys.parse_int(value) is not None


def _is_float(value: str) -> bool:
    return typesys.parse_float(value) is not None


def _is_bool(value: str) -> bool:
    return typesys.parse_bool(value) is not None


def _is_ip(value: str) -> bool:
    return typesys.parse_ipv4(value) is not None


def _is_ipv6(value: str) -> bool:
    return typesys.parse_ipv6(value) is not None


def _is_cidr(value: str) -> bool:
    return typesys.parse_cidr(value) is not None


def _is_mac(value: str) -> bool:
    return typesys.parse_mac(value) is not None


def _is_port(value: str) -> bool:
    return typesys.parse_port(value) is not None


def _is_url(value: str) -> bool:
    return typesys.parse_url(value) is not None


def _is_email(value: str) -> bool:
    return typesys.parse_email(value) is not None


def _is_guid(value: str) -> bool:
    return typesys.parse_guid(value) is not None


def _is_path(value: str) -> bool:
    return typesys.is_path(value)


def _is_ip_range(value: str) -> bool:
    return typesys.parse_ip_range(value) is not None


def _is_duration(value: str) -> bool:
    return typesys.parse_duration(value) is not None


def _is_string(value: str) -> bool:
    return True  # every raw value is a string; useful in compound predicates


def _list_of(element_check):
    def check(value: str) -> bool:
        parts = typesys.split_list(value)
        if parts is None:
            parts = [value]  # a single element is a 1-element list
        return all(element_check(part) for part in parts)

    return check


def register_type_predicates() -> None:
    simple = {
        "int": _is_int,
        "float": _is_float,
        "bool": _is_bool,
        "ip": _is_ip,
        "ipv6": _is_ipv6,
        "cidr": _is_cidr,
        "mac": _is_mac,
        "port": _is_port,
        "url": _is_url,
        "email": _is_email,
        "guid": _is_guid,
        "path": _is_path,
        "iprange": _is_ip_range,
        "duration": _is_duration,
        "string": _is_string,
    }
    for name, fn in simple.items():
        register_predicate(
            name, fn, message="value {value!r} of {key} is not a valid " + name
        )
    for name, fn in simple.items():
        if name == "string":
            continue
        register_predicate(
            f"list_{name}",
            _list_of(fn),
            message="value {value!r} of {key} is not a list of " + name,
        )
