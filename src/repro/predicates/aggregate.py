"""Whole-domain predicate primitives: consistency, uniqueness, ordering.

These realize the "Consistency, uniqueness" tier of paper Figure 2.  Each
primitive inspects the full instance list of a domain at once and returns
``(offending_indices, detail)`` — an empty offender list means the domain
passes.  Reporting offenders by index lets the report name the exact
configuration instances that broke the constraint (§4.4).
"""

from __future__ import annotations

from collections import Counter, defaultdict

from .base import register_aggregate
from .relational import compare

__all__ = ["register_aggregate_predicates"]


def _consistent(values: list[str]) -> tuple[list[int], str]:
    """All instances must share one value; minority instances are offenders.

    The majority value is treated as intended (the paper's report grouping
    relies on errors being rare), so offenders are everything that differs
    from the most common value.
    """
    if len(values) <= 1:
        return [], ""
    counts = Counter(values)
    majority, __ = counts.most_common(1)[0]
    offenders = [i for i, value in enumerate(values) if value != majority]
    if not offenders:
        return [], ""
    return offenders, f"expected consistent value {majority!r}"


def _unique(values: list[str]) -> tuple[list[int], str]:
    """No two instances may share a value; later duplicates are offenders."""
    seen: dict[str, int] = {}
    offenders = []
    duplicated = set()
    for index, value in enumerate(values):
        if value in seen:
            offenders.append(index)
            duplicated.add(value)
        else:
            seen[value] = index
    if not offenders:
        return [], ""
    listed = ", ".join(repr(value) for value in sorted(duplicated))
    return offenders, f"duplicate value(s): {listed}"


def _order(values: list[str], direction: str = "asc") -> tuple[list[int], str]:
    """Instances must be sorted (``asc`` or ``desc``); misordered ones offend."""
    op = "<=" if str(direction) == "asc" else ">="
    offenders = [
        index
        for index in range(1, len(values))
        if not compare(values[index - 1], op, values[index])
    ]
    if not offenders:
        return [], ""
    return offenders, f"values are not in {direction} order"


def register_aggregate_predicates() -> None:
    register_aggregate(
        "consistent",
        _consistent,
        message="value {value!r} of {key} is inconsistent: {detail}",
    )
    register_aggregate(
        "unique",
        _unique,
        message="value {value!r} of {key} is not unique: {detail}",
    )
    register_aggregate(
        "order",
        _order,
        message="value {value!r} of {key} breaks ordering: {detail}",
    )
