"""Type-aware value comparison shared by relations, ranges, and ordering.

CPL relations (``$A <= $B``), ranges (``[$StartIP, $EndIP]``) and the
``order`` aggregate all compare configuration values whose raw form is a
string but whose semantics may be numeric or address-like.  ``coerce_pair``
promotes both sides to the richest common interpretation before comparing:
numbers compare numerically, IPv4/IPv6 addresses compare by address order,
everything else falls back to string comparison.
"""

from __future__ import annotations

import operator
from typing import Any, Callable

from .. import typesys

__all__ = ["coerce_scalar", "coerce_pair", "compare", "RELATION_OPS", "values_equal"]

RELATION_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def coerce_scalar(value: str) -> Any:
    """Promote one raw value to its natural comparable form."""
    number = typesys.parse_int(value)
    if number is not None:
        return number
    real = typesys.parse_float(value)
    if real is not None:
        return real
    duration = typesys.parse_duration(value)
    if duration is not None:
        return duration  # seconds: '30s' < '1m' compares numerically
    address = typesys.parse_ipv4(value)
    if address is not None:
        return address
    address6 = typesys.parse_ipv6(value)
    if address6 is not None:
        return address6
    return value.strip()


def coerce_pair(left: str, right: str) -> tuple[Any, Any]:
    """Promote both sides to a directly comparable pair."""
    a, b = coerce_scalar(left), coerce_scalar(right)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return a, b
    if type(a) is type(b):
        return a, b
    # Mixed interpretations (e.g. "5" vs "abc"): compare as strings.
    return left.strip(), right.strip()


def compare(left: str, op: str, right: str) -> bool:
    """Evaluate ``left <op> right`` with type-aware coercion."""
    fn = RELATION_OPS[op]
    a, b = coerce_pair(left, right)
    try:
        return bool(fn(a, b))
    except TypeError:
        return bool(fn(str(a), str(b)))


def values_equal(left: str, right: str) -> bool:
    return compare(left, "==", right)


def in_range(value: str, low: str, high: str) -> bool:
    """Inclusive range membership with type-aware coercion."""
    return compare(value, ">=", low) and compare(value, "<=", high)
