"""Per-value predicate primitives: emptiness, patterns, ranges, membership.

These cover the lower-middle of the paper's specification spectrum
(Figure 2): "Format, nonempty" and "Value range".
"""

from __future__ import annotations

import re
from functools import lru_cache

from .base import register_predicate
from .relational import compare, in_range

__all__ = ["register_value_predicates"]


def _nonempty(value: str) -> bool:
    return bool(value.strip())


@lru_cache(maxsize=1024)
def _compiled(pattern: str) -> "re.Pattern[str]":
    return re.compile(pattern)


def _match(value: str, pattern: str) -> bool:
    """Substring-anchored regular-expression match (paper: match('UtilityFabric')
    is true when the value contains that pattern)."""
    return _compiled(str(pattern)).search(value) is not None


def _fullmatch(value: str, pattern: str) -> bool:
    return _compiled(str(pattern)).fullmatch(value) is not None


def _startswith(value: str, prefix: str) -> bool:
    return value.startswith(str(prefix))


def _endswith(value: str, suffix: str) -> bool:
    return value.endswith(str(suffix))


def _range(value: str, low, high) -> bool:
    return in_range(value, str(low), str(high))


def _in_set(value: str, *members) -> bool:
    return any(compare(value, "==", str(member)) for member in members)


def _length(value: str, low, high) -> bool:
    return int(low) <= len(value) <= int(high)


def register_value_predicates() -> None:
    register_predicate(
        "nonempty", _nonempty, message="value of {key} is empty"
    )
    register_predicate(
        "match",
        _match,
        message="value {value!r} of {key} does not match pattern {args}",
    )
    register_predicate(
        "fullmatch",
        _fullmatch,
        message="value {value!r} of {key} does not fully match pattern {args}",
    )
    register_predicate(
        "startswith",
        _startswith,
        message="value {value!r} of {key} does not start with {args}",
    )
    register_predicate(
        "endswith",
        _endswith,
        message="value {value!r} of {key} does not end with {args}",
    )
    register_predicate(
        "range",
        _range,
        message="value {value!r} of {key} is out of range {args}",
    )
    register_predicate(
        "in",
        _in_set,
        message="value {value!r} of {key} is not one of {args}",
    )
    register_predicate(
        "length",
        _length,
        message="value {value!r} of {key} has length outside {args}",
    )
