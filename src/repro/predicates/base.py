"""Predicate primitive registry (paper §4.2.1, §4.2.6).

CPL ships a common set of predicate primitives ("the current implementation
provides 19 predicate primitives") and allows extensions: new primitives can
be registered as plug-ins without touching the compiler, exactly the
extension path §4.2.6 describes.

Two evaluation shapes exist:

* **value predicates** — checked against each instance's value in turn
  (the default ∀ iteration); signature ``fn(value: str, *args) -> bool``.
  Predicates flagged ``needs_runtime`` additionally receive the session's
  :class:`~repro.runtime.RuntimeProvider` as keyword ``runtime``.
* **aggregate predicates** — checked once over the whole domain
  (``consistent``, ``unique``, ``order``); signature
  ``fn(values: list[str], *args) -> tuple[list[int], str]`` returning the
  offending indices and a human-readable detail for the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import UnknownPredicateError

__all__ = [
    "PredicateSpec",
    "register_predicate",
    "register_aggregate",
    "get_predicate",
    "predicate_names",
    "is_registered",
]


@dataclass(frozen=True)
class PredicateSpec:
    """One registered primitive."""

    name: str
    fn: Callable
    aggregate: bool = False
    needs_runtime: bool = False
    #: Template for auto-generated error messages (§4.4); ``{value}``,
    #: ``{key}`` and ``{args}`` are substituted by the report builder.
    message: str = "value {value!r} of {key} violates '{name}'"


_REGISTRY: dict[str, PredicateSpec] = {}


def register_predicate(
    name: str,
    fn: Callable,
    message: Optional[str] = None,
    needs_runtime: bool = False,
) -> PredicateSpec:
    """Register (or override) a per-value predicate primitive."""
    spec = PredicateSpec(
        name=name,
        fn=fn,
        aggregate=False,
        needs_runtime=needs_runtime,
        message=message or PredicateSpec.message,
    )
    _REGISTRY[name] = spec
    return spec


def register_aggregate(
    name: str, fn: Callable, message: Optional[str] = None
) -> PredicateSpec:
    """Register (or override) a whole-domain predicate primitive."""
    spec = PredicateSpec(
        name=name,
        fn=fn,
        aggregate=True,
        message=message or PredicateSpec.message,
    )
    _REGISTRY[name] = spec
    return spec


def get_predicate(name: str) -> PredicateSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownPredicateError(
            f"unknown predicate {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def predicate_names() -> list[str]:
    return sorted(_REGISTRY)


def is_registered(name: str) -> bool:
    return name in _REGISTRY
