"""Structured logging for the validation pipeline.

Every module in the pipeline logs through a child of the ``repro`` root
logger (:func:`get_logger`), which carries a ``NullHandler`` by default —
the library stays silent unless the embedding application (or the
``confvalley`` CLI) opts in with :func:`configure_logging`.  Configured
output is one JSON object per line::

    {"event": "source quarantined", "level": "warning", "logger":
     "repro.service", "path": "env03.ini", "failures": 2, ...}

so a fleet's scan logs aggregate cleanly (grep, jq, or any log pipeline)
instead of requiring a human to eyeball free-form text.  Any ``extra=``
fields passed at the call site land as top-level JSON keys; exception info
renders under ``"exc"``.

The formatter never raises on unserializable extras — values that are not
JSON types are stringified, because a log line must not be able to take
down a scan.
"""

from __future__ import annotations

import io
import json
import logging as _logging
import traceback
from typing import Optional

__all__ = ["JsonFormatter", "get_logger", "configure_logging", "reset_logging"]

ROOT_LOGGER_NAME = "repro"

#: LogRecord attributes that are plumbing, not payload
_RESERVED = frozenset(
    vars(
        _logging.LogRecord("", 0, "", 0, "", (), None)
    )
) | {"message", "asctime", "taskName"}


def get_logger(name: str = "") -> _logging.Logger:
    """A logger under the ``repro`` root (``get_logger("service")`` →
    ``repro.service``)."""
    if not name:
        return _logging.getLogger(ROOT_LOGGER_NAME)
    return _logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


class JsonFormatter(_logging.Formatter):
    """One sorted-key JSON object per record."""

    def format(self, record: _logging.LogRecord) -> str:
        payload = {
            "event": record.getMessage(),
            "level": record.levelname.lower(),
            "logger": record.name,
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key in payload:
                continue
            if isinstance(value, (str, int, float, bool)) or value is None:
                payload[key] = value
            else:
                payload[key] = str(value)
        if record.exc_info and record.exc_info[0] is not None:
            buffer = io.StringIO()
            traceback.print_exception(*record.exc_info, file=buffer)
            payload["exc"] = buffer.getvalue().rstrip()
        return json.dumps(payload, sort_keys=True, default=str)


# the handler configure_logging installed, so it can be swapped/removed
_configured_handler: Optional[_logging.Handler] = None

# library default: silent unless the application configures logging
get_logger().addHandler(_logging.NullHandler())


def configure_logging(
    level: int = _logging.INFO,
    stream=None,
    formatter: Optional[_logging.Formatter] = None,
) -> _logging.Handler:
    """Attach a JSON stream handler to the ``repro`` root logger.

    Idempotent: a handler installed by a previous call is replaced, not
    stacked.  Returns the installed handler.  ``stream`` defaults to
    stderr; pass any writable object (tests use ``io.StringIO``).
    """
    global _configured_handler
    root = get_logger()
    if _configured_handler is not None:
        root.removeHandler(_configured_handler)
    handler = _logging.StreamHandler(stream)
    handler.setFormatter(formatter if formatter is not None else JsonFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    _configured_handler = handler
    return handler


def reset_logging() -> None:
    """Remove the configured handler; back to the silent library default."""
    global _configured_handler
    root = get_logger()
    if _configured_handler is not None:
        root.removeHandler(_configured_handler)
        _configured_handler = None
    root.setLevel(_logging.NOTSET)
    root.propagate = True
