"""Observability for the validation pipeline (``repro.observability``).

The third pillar after sharded performance (``repro.parallel``) and fault
tolerance (``repro.resilience``): a continuously-running validation fleet
is only operable if you can see *where time goes* and *what degraded* —
the paper's own evaluation (§6, Tables 8–9) is a sequence of exactly these
questions.  Four parts:

* **tracing** (:mod:`.tracing`) — hierarchical timestamped spans
  (``scan → compile → discover → shard[i] → evaluate(stmt)``) whose
  contexts pickle across the thread/fork executor boundary and re-parent
  on merge; exports JSON and Chrome ``trace_event`` format;
* **metrics** (:mod:`.metrics`) — a process-wide registry of counters,
  gauges and fixed-bucket histograms fed by hooks throughout the pipeline;
  exports Prometheus text and JSON;
* **snapshots** (:mod:`.snapshot`) — the atomically-rewritten exposition
  file behind ``confvalley service --metrics-file`` / ``confvalley stats``;
* **structured logging** (:mod:`.logging`) — a ``repro``-rooted JSON-lines
  logging integration, silent by default.

The cardinal rule is **nil cost by default**: the process-wide tracer and
registry are no-op singletons until :func:`enable` swaps real ones in, so
the instrumentation sprinkled through hot paths costs one attribute lookup
and a no-op call when observability is off — and validation output is
*never* affected either way (``ValidationReport.fingerprint()`` is
byte-identical with observability on or off; asserted in
``tests/test_observability.py`` and measured in
``benchmarks/bench_observability.py``).

Usage::

    from repro import observability

    obs = observability.enable()
    ... run scans ...
    print(obs.metrics.to_prometheus())
    print(obs.tracer.to_json())
    observability.disable()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .analytics import SpecAnalytics, format_drift, format_hot_specs
from .federation import (
    FleetView,
    TraceSegmentStore,
    TraceSegmentWriter,
    export_metrics_snapshot,
    fleet_meta_families,
    merge_metrics,
    read_metrics_snapshots,
    read_trace_segments,
    render_families,
    stitch_trace,
    trace_payload,
)
from .logging import JsonFormatter, configure_logging, get_logger, reset_logging
from .metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    parse_prometheus,
)
from .server import ObservabilityServer, parse_http_address
from .snapshot import load_snapshot, render_stats, write_snapshot
from .tracing import (
    NULL_TRACER,
    NullTracer,
    SpanContext,
    Tracer,
    render_chrome_trace,
)

__all__ = [
    "FleetView",
    "TraceSegmentStore",
    "TraceSegmentWriter",
    "export_metrics_snapshot",
    "fleet_meta_families",
    "merge_metrics",
    "read_metrics_snapshots",
    "read_trace_segments",
    "render_families",
    "render_chrome_trace",
    "stitch_trace",
    "trace_payload",
    "Observability",
    "enable",
    "disable",
    "enabled",
    "get_tracer",
    "get_metrics",
    "Tracer",
    "NullTracer",
    "SpanContext",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_BUCKETS",
    "parse_prometheus",
    "SpecAnalytics",
    "format_hot_specs",
    "format_drift",
    "ObservabilityServer",
    "parse_http_address",
    "JsonFormatter",
    "configure_logging",
    "reset_logging",
    "get_logger",
    "write_snapshot",
    "load_snapshot",
    "render_stats",
]


@dataclass
class Observability:
    """One enabled observability configuration (tracer + registry pair)."""

    tracer: Union[Tracer, NullTracer] = field(default_factory=Tracer)
    metrics: Union[MetricsRegistry, NullRegistry] = field(
        default_factory=MetricsRegistry
    )


# process-wide installed instances; fork workers inherit them, thread
# workers share them — see the worker-side tracer protocol in .tracing
_tracer: Union[Tracer, NullTracer] = NULL_TRACER
_metrics: Union[MetricsRegistry, NullRegistry] = NULL_REGISTRY


def enable(
    tracing: bool = True,
    metrics: bool = True,
    observability: Optional[Observability] = None,
) -> Observability:
    """Install a live tracer and/or metrics registry process-wide.

    Returns the :class:`Observability` handle holding whichever live
    instances were installed (no-op singletons fill disabled slots).  Pass
    a prebuilt ``observability`` to share instances across services.
    """
    global _tracer, _metrics
    if observability is None:
        observability = Observability(
            tracer=Tracer() if tracing else NULL_TRACER,
            metrics=MetricsRegistry() if metrics else NULL_REGISTRY,
        )
    _tracer = observability.tracer
    _metrics = observability.metrics
    return observability


def disable() -> None:
    """Restore the no-op tracer and registry (the default state)."""
    global _tracer, _metrics
    _tracer = NULL_TRACER
    _metrics = NULL_REGISTRY


def enabled() -> bool:
    return _tracer.enabled or _metrics.enabled


def get_tracer() -> Union[Tracer, NullTracer]:
    """The process-wide tracer (no-op unless :func:`enable` ran)."""
    return _tracer


def get_metrics() -> Union[MetricsRegistry, NullRegistry]:
    """The process-wide metrics registry (no-op unless :func:`enable` ran)."""
    return _metrics
