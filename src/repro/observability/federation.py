"""Fleet-wide observability: trace stitching and metrics federation.

Since jobs went multi-process (``confvalley worker``), each worker process
has been an observability island: its :class:`MetricsRegistry` is invisible
to the coordinator's ``/metrics``, and a job's span tree ends at the
process boundary.  This module is the coordinator-side pane of glass over
the whole fleet, in two halves:

**Distributed job traces.**  The job record carries a
:class:`~.tracing.SpanContext` origin: ``submit`` opens the root span, the
claiming worker continues the tree (claim → parse → evaluate → report),
and the webhook delivery closes it.  Each process appends its finished
spans as *trace segments* — one JSON line per segment — to its own
partition file under ``<jobs-dir>/traces/`` (single-writer, mirroring the
journal partitions, so a crashed writer can only tear its own trailing
line).  :func:`stitch_trace` merges the segments for one trace id back
into a single rooted span list; re-emissions of the same span id (the
root is written open at submit and again closed at webhook delivery)
merge rather than duplicate.  Span timestamps in these segments are
**wall-clock** (``time.time``), not the process-local monotonic clock,
because they are compared across processes — the same rule the lease
deadlines follow.

**Metrics federation.**  Workers atomically export registry snapshots
(via :func:`~.snapshot.write_snapshot`) into ``<jobs-dir>/metrics/`` on
their heartbeat cadence; the coordinator merges the fresh ones into its
own exposition: every worker series is re-exported under its original
family name with a ``worker`` label (the coordinator's own series stay
unlabeled), and cross-fleet rollups are published as
``confvalley_fleet_*`` families — counters summed across all sources,
histograms bucket-wise merged (identical bucket bounds only), gauges
left per-worker (summing queue depths from different processes is a lie).
**Staleness fencing**: a snapshot older than ``stale_after`` seconds is
fenced out of the merge, so a dead worker's last export ages out of
``/metrics`` rather than lying forever; it remains visible — flagged
stale — in ``GET /fleet`` for triage.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from typing import Callable, Iterable, Optional

from .logging import get_logger
from .metrics import _format_value, _label_key, _render_labels
from .snapshot import load_snapshot, write_snapshot
from .tracing import render_chrome_trace

__all__ = [
    "TRACE_SEGMENT_VERSION",
    "TraceSegmentWriter",
    "TraceSegmentStore",
    "read_trace_segments",
    "stitch_trace",
    "trace_payload",
    "export_metrics_snapshot",
    "read_metrics_snapshots",
    "merge_metrics",
    "fleet_meta_families",
    "render_families",
    "FleetView",
]

_log = get_logger("observability.federation")

TRACE_SEGMENT_VERSION = 1

#: marker label added to every federated worker series
WORKER_LABEL = "worker"


# ---------------------------------------------------------------------------
# Trace segments: append-only per-process partitions
# ---------------------------------------------------------------------------


class TraceSegmentWriter:
    """Appends trace segments to one process's partition file.

    One JSON line per segment: ``{"v", "trace_id", "source",
    "recorded_at", "spans": [...]}``.  Single-writer by construction
    (each process owns its partition), so appends never contend across
    processes; the lock only serializes threads within one process.
    """

    def __init__(
        self,
        path: str,
        source: str,
        time_fn: Callable[[], float] = time.time,
    ):
        self.path = path
        self.source = source
        self._time = time_fn
        self._lock = threading.Lock()
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)

    def write(self, trace_id: str, spans: Iterable[dict]) -> dict:
        """Append one segment; returns the segment that was written."""
        segment = {
            "v": TRACE_SEGMENT_VERSION,
            "trace_id": trace_id,
            "source": self.source,
            "recorded_at": self._time(),
            "spans": [dict(span) for span in spans],
        }
        line = json.dumps(segment, sort_keys=True, separators=(",", ":"))
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
        return segment


def read_trace_segments(path: str) -> list[dict]:
    """Read one trace partition; torn trailing line dropped, others skipped.

    Mirrors the journal reader's crash tolerance: a writer killed
    mid-append tears only its own trailing line, which is dropped; a
    corrupt line anywhere else is skipped with a warning so one bad
    segment cannot take the partition hostage.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError:
        return []
    segments = []
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            segment = json.loads(line)
        except ValueError:
            if index == len(lines) - 1:
                _log.warning(
                    "dropping torn trailing trace segment",
                    extra={"path": path, "line": index + 1},
                )
            else:
                _log.warning(
                    "skipping corrupt trace segment",
                    extra={"path": path, "line": index + 1},
                )
            continue
        if not isinstance(segment, dict) or not segment.get("trace_id"):
            continue
        segments.append(segment)
    return segments


class TraceSegmentStore:
    """Bounded in-memory segment store (coordinator / in-process mode).

    Keeps the most recent ``limit`` traces so ``GET /jobs/<id>/trace``
    works in single-process mode too, where no shared directory exists.
    """

    def __init__(self, limit: int = 256):
        self.limit = max(1, int(limit))
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, list[dict]]" = OrderedDict()

    def add(self, segment: dict) -> None:
        trace_id = segment.get("trace_id")
        if not trace_id:
            return
        with self._lock:
            bucket = self._traces.get(trace_id)
            if bucket is None:
                bucket = []
                self._traces[trace_id] = bucket
            bucket.append(segment)
            self._traces.move_to_end(trace_id)
            while len(self._traces) > self.limit:
                self._traces.popitem(last=False)

    def segments(self, trace_id: str) -> list[dict]:
        with self._lock:
            return [dict(seg) for seg in self._traces.get(trace_id, ())]

    def trace_ids(self) -> list[str]:
        with self._lock:
            return list(self._traces)


# ---------------------------------------------------------------------------
# Stitching: segments → one rooted span list → Chrome trace
# ---------------------------------------------------------------------------


def stitch_trace(trace_id: str, segments: Iterable[dict]) -> list[dict]:
    """Merge trace segments into one span list for ``trace_id``.

    Re-emissions of the same span id merge: earliest non-null start wins,
    latest non-null end wins, attributes overlay — this is how the root
    span, written open at submit and re-emitted closed at webhook
    delivery, ends up as one closed span.  Spans still open after the
    merge (close segment lost with a crashed coordinator) are closed
    against the latest end seen anywhere in the trace, so the stitched
    tree always renders.  Output is sorted by start time.
    """
    merged: dict[str, dict] = {}
    order: list[str] = []
    for segment in segments:
        if segment.get("trace_id") != trace_id:
            continue
        for span in segment.get("spans") or ():
            if not isinstance(span, dict):
                continue
            span_id = span.get("span_id")
            if not span_id:
                continue
            existing = merged.get(span_id)
            if existing is None:
                record = dict(span)
                record.setdefault("parent_id", "")
                record.setdefault("name", "")
                record.setdefault("start", 0.0)
                record.setdefault("end", None)
                record["attrs"] = dict(span.get("attrs") or {})
                merged[span_id] = record
                order.append(span_id)
                continue
            start = span.get("start")
            if start is not None and start < existing["start"]:
                existing["start"] = start
            end = span.get("end")
            if end is not None and (existing["end"] is None or end > existing["end"]):
                existing["end"] = end
            existing["attrs"].update(span.get("attrs") or {})
            if not existing["name"]:
                existing["name"] = span.get("name", "")
            if not existing["parent_id"]:
                existing["parent_id"] = span.get("parent_id", "")
    spans = [merged[span_id] for span_id in order]
    latest_end = None
    for span in spans:
        if span["end"] is not None and (latest_end is None or span["end"] > latest_end):
            latest_end = span["end"]
    for span in spans:
        if span["end"] is None:
            if latest_end is not None and latest_end >= span["start"]:
                span["end"] = latest_end
            else:
                span["end"] = span["start"]
    spans.sort(key=lambda span: (span["start"], span["span_id"]))
    return spans


def trace_payload(trace_id: str, segments: Iterable[dict]) -> dict:
    """The ``GET /jobs/<id>/trace`` document for one stitched trace.

    A valid Chrome ``trace_event`` file (extra top-level keys are allowed
    by the format) carrying the raw stitched spans alongside, so tests
    and tools can assert tree shape without re-parsing ``traceEvents``.
    """
    segments = [seg for seg in segments if seg.get("trace_id") == trace_id]
    spans = stitch_trace(trace_id, segments)
    ids = {span["span_id"] for span in spans}
    roots = [
        span["span_id"] for span in spans
        if not span["parent_id"] or span["parent_id"] not in ids
    ]
    orphans = [
        span["span_id"] for span in spans
        if span["parent_id"] and span["parent_id"] not in ids
    ]
    payload = render_chrome_trace(trace_id, spans)
    payload.update(
        {
            "trace_id": trace_id,
            "spans": spans,
            "segments": len(segments),
            "sources": sorted({seg.get("source", "") for seg in segments}),
            "roots": roots,
            "orphan_spans": orphans,
        }
    )
    return payload


# ---------------------------------------------------------------------------
# Metrics federation: worker snapshots → merged exposition
# ---------------------------------------------------------------------------


def export_metrics_snapshot(
    path: str,
    registry,
    stats: Optional[dict] = None,
    time_fn: Callable[[], float] = time.time,
) -> None:
    """Atomically export one process's registry into the shared directory.

    Reuses :func:`~.snapshot.write_snapshot` (same-directory temp file +
    ``os.replace``), so the coordinator never reads a torn snapshot; the
    wall-clock ``exported_at`` inside ``stats`` is what staleness fencing
    compares against.
    """
    stats = dict(stats or {})
    stats.setdefault("exported_at", time_fn())
    write_snapshot(path, stats, registry)


def read_metrics_snapshots(
    paths: dict,
    now: Optional[float] = None,
) -> list[dict]:
    """Load exported snapshots: ``{source: path}`` → one row per source.

    Unreadable or torn files are skipped (the next export heals them);
    each row carries ``worker``, ``exported_at``, ``age`` (when ``now``
    given), the JSON ``metrics`` families, and the exporter's ``stats``.
    """
    rows = []
    for source in sorted(paths):
        try:
            snap = load_snapshot(paths[source])
        except (OSError, ValueError):
            continue
        stats = snap.get("stats") or {}
        try:
            exported_at = float(stats.get("exported_at") or 0.0)
        except (TypeError, ValueError):
            exported_at = 0.0
        row = {
            "worker": source,
            "exported_at": exported_at,
            "metrics": snap.get("metrics") or {},
            "stats": stats,
        }
        if now is not None:
            row["age"] = max(0.0, now - exported_at)
        rows.append(row)
    return rows


def _fleet_name(name: str) -> str:
    if name.startswith("confvalley_"):
        return "confvalley_fleet_" + name[len("confvalley_"):]
    return "confvalley_fleet_" + name


def _label_worker(labels: dict, worker: str) -> dict:
    labeled = dict(labels)
    labeled[WORKER_LABEL] = worker
    return labeled


def merge_metrics(local: dict, snapshots: Iterable[dict]) -> dict:
    """Merge worker snapshot families into the coordinator's own.

    ``local`` is the coordinator registry's :meth:`to_dict`; its series
    stay unlabeled.  Every worker series is re-exported under the same
    family name with a ``worker`` label.  Rollup families
    (``confvalley_fleet_*``) aggregate across *all* sources: counters
    summed and histograms bucket-wise merged by original label set;
    gauges are not rolled up (they stay per-worker only).  A worker
    histogram whose bucket bounds differ from the family's established
    bounds is skipped — merging mismatched buckets would fabricate data.
    """
    families: dict[str, dict] = {}
    rollups: dict[str, dict] = {}

    def family_for(name: str, source_family: dict) -> Optional[dict]:
        family = families.get(name)
        if family is None:
            family = {
                "kind": source_family.get("kind", ""),
                "help": source_family.get("help", ""),
                "series": [],
            }
            if source_family.get("kind") == "histogram":
                family["buckets"] = list(source_family.get("buckets") or ())
            families[name] = family
            return family
        if family["kind"] != source_family.get("kind"):
            return None
        return family

    def rollup(name: str, source_family: dict, worker_series: list) -> None:
        kind = source_family.get("kind")
        if kind not in ("counter", "histogram"):
            return
        fleet = rollups.get(_fleet_name(name))
        if fleet is None:
            fleet = {
                "kind": kind,
                "help": f"fleet rollup of {name} across all processes",
                "series": {},
            }
            if kind == "histogram":
                fleet["buckets"] = list(source_family.get("buckets") or ())
            rollups[_fleet_name(name)] = fleet
        if fleet["kind"] != kind:
            return
        if kind == "histogram" and list(source_family.get("buckets") or ()) != fleet["buckets"]:
            return
        for series in worker_series:
            key = _label_key(series.get("labels") or {})
            slot = fleet["series"].get(key)
            if kind == "counter":
                value = float(series.get("value") or 0.0)
                fleet["series"][key] = (slot or 0.0) + value
            else:
                counts = list(series.get("counts") or ())
                if len(counts) != len(fleet["buckets"]) + 1:
                    continue
                if slot is None:
                    fleet["series"][key] = {
                        "counts": counts,
                        "sum": float(series.get("sum") or 0.0),
                        "count": int(series.get("count") or 0),
                    }
                else:
                    slot["counts"] = [
                        a + b for a, b in zip(slot["counts"], counts)
                    ]
                    slot["sum"] += float(series.get("sum") or 0.0)
                    slot["count"] += int(series.get("count") or 0)

    for name in sorted(local):
        source_family = local[name]
        family = family_for(name, source_family)
        if family is None:
            continue
        family["series"].extend(dict(series) for series in source_family.get("series") or ())
        rollup(name, source_family, source_family.get("series") or [])

    for row in snapshots:
        worker = row.get("worker", "")
        for name in sorted(row.get("metrics") or {}):
            source_family = row["metrics"][name]
            if not isinstance(source_family, dict):
                continue
            family = family_for(name, source_family)
            if family is None:
                continue
            if (
                source_family.get("kind") == "histogram"
                and list(source_family.get("buckets") or ())
                != family.get("buckets")
            ):
                continue
            labeled = [
                dict(series, labels=_label_worker(series.get("labels") or {}, worker))
                for series in source_family.get("series") or ()
            ]
            family["series"].extend(labeled)
            rollup(name, source_family, source_family.get("series") or [])

    for name, fleet in rollups.items():
        if fleet["kind"] == "counter":
            series = [
                {"labels": dict(key), "value": value}
                for key, value in sorted(fleet["series"].items())
            ]
        else:
            series = [
                {
                    "labels": dict(key),
                    "counts": slot["counts"],
                    "sum": slot["sum"],
                    "count": slot["count"],
                }
                for key, slot in sorted(fleet["series"].items())
            ]
        merged = {"kind": fleet["kind"], "help": fleet["help"], "series": series}
        if fleet["kind"] == "histogram":
            merged["buckets"] = fleet["buckets"]
        families[name] = merged

    return families


def fleet_meta_families(fleet: dict) -> dict:
    """``confvalley_fleet_*`` presence/freshness families from a fleet payload.

    * ``confvalley_fleet_workers{state}`` — exporting workers by freshness;
    * ``confvalley_fleet_metrics_age_seconds{worker}`` — snapshot age;
    * ``confvalley_fleet_trace_segments_total{worker}`` — segments written;
    * ``confvalley_fleet_trace_segment_lag_seconds{worker}`` — time since
      a source last recorded a trace segment.
    """
    rows = fleet.get("workers") or []
    fresh = sum(1 for row in rows if row.get("fresh"))
    families = {
        "confvalley_fleet_workers": {
            "kind": "gauge",
            "help": "metric-exporting worker processes by snapshot freshness",
            "series": [
                {"labels": {"state": "fresh"}, "value": float(fresh)},
                {"labels": {"state": "stale"}, "value": float(len(rows) - fresh)},
            ],
        },
        "confvalley_fleet_metrics_age_seconds": {
            "kind": "gauge",
            "help": "age of each worker's last exported metrics snapshot",
            "series": [
                {
                    "labels": {WORKER_LABEL: row.get("worker", "")},
                    "value": float(row.get("metrics_age_s") or 0.0),
                }
                for row in rows
            ],
        },
    }
    sources = (fleet.get("traces") or {}).get("sources") or []
    families["confvalley_fleet_trace_segments_total"] = {
        "kind": "counter",
        "help": "trace segments recorded per process partition",
        "series": [
            {
                "labels": {WORKER_LABEL: row.get("source", "")},
                "value": float(row.get("segments") or 0),
            }
            for row in sources
        ],
    }
    families["confvalley_fleet_trace_segment_lag_seconds"] = {
        "kind": "gauge",
        "help": "seconds since each process last recorded a trace segment",
        "series": [
            {
                "labels": {WORKER_LABEL: row.get("source", "")},
                "value": float(row.get("lag_s") or 0.0),
            }
            for row in sources
            if row.get("lag_s") is not None
        ],
    }
    return families


def render_families(families: dict) -> str:
    """Prometheus text exposition of merged family dicts.

    Mirrors :meth:`MetricsRegistry.to_prometheus` — sorted families,
    sorted series, the same value formatting and label escaping — but
    renders from the JSON family shape so federated (dict-merged)
    families and live-registry families share one output format.
    """
    lines: list[str] = []
    for name in sorted(families):
        family = families[name]
        kind = family.get("kind", "untyped")
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {kind}")
        series = sorted(
            (family.get("series") or ()),
            key=lambda row: _label_key(row.get("labels") or {}),
        )
        if kind == "histogram":
            buckets = list(family.get("buckets") or ())
            if not series:
                series = [{"labels": {}, "counts": [0] * (len(buckets) + 1),
                           "sum": 0.0, "count": 0}]
            for row in series:
                key = _label_key(row.get("labels") or {})
                counts = list(row.get("counts") or [0] * (len(buckets) + 1))
                cumulative = 0
                for bound, count in zip(buckets, counts):
                    cumulative += count
                    bucket_key = key + (("le", _format_value(bound)),)
                    lines.append(
                        f"{name}_bucket{_render_labels(bucket_key)} {cumulative}"
                    )
                cumulative += counts[-1] if counts else 0
                inf_key = key + (("le", "+Inf"),)
                lines.append(f"{name}_bucket{_render_labels(inf_key)} {cumulative}")
                lines.append(
                    f"{name}_sum{_render_labels(key)} "
                    f"{_format_value(float(row.get('sum') or 0.0))}"
                )
                lines.append(
                    f"{name}_count{_render_labels(key)} {int(row.get('count') or 0)}"
                )
            continue
        if not series:
            series = [{"labels": {}, "value": 0.0}]
        for row in series:
            key = _label_key(row.get("labels") or {})
            lines.append(
                f"{name}{_render_labels(key)} "
                f"{_format_value(float(row.get('value') or 0.0))}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# The coordinator-side fleet view
# ---------------------------------------------------------------------------


class FleetView:
    """One pane of glass over the fleet: traces + federated metrics.

    Owned by the coordinating :class:`~repro.jobs.service.JobService`.
    With a shared job directory it reads worker trace partitions and
    metrics snapshots from disk and writes the coordinator's own
    segments to ``traces/coordinator.jsonl`` (so offline journal-dir
    stitching sees the submit/webhook spans too); without one (pure
    in-process mode) everything lives in the bounded in-memory store.
    """

    SOURCE = "coordinator"

    def __init__(
        self,
        directory=None,
        stale_after: Optional[float] = None,
        time_fn: Callable[[], float] = time.time,
        store_limit: int = 256,
    ):
        self.directory = directory
        self.stale_after = stale_after
        self._time = time_fn
        self.store = TraceSegmentStore(store_limit)
        self._writer = None
        if directory is not None:
            self._writer = TraceSegmentWriter(
                directory.trace_partition(self.SOURCE), self.SOURCE, time_fn
            )

    # -- traces --------------------------------------------------------

    def record_segment(self, trace_id: str, spans: Iterable[dict]) -> None:
        """Record coordinator-side spans for one trace (memory + disk)."""
        spans = [dict(span) for span in spans]
        if not spans:
            return
        if self._writer is not None:
            segment = self._writer.write(trace_id, spans)
        else:
            segment = {
                "v": TRACE_SEGMENT_VERSION,
                "trace_id": trace_id,
                "source": self.SOURCE,
                "recorded_at": self._time(),
                "spans": spans,
            }
        self.store.add(segment)

    def trace_segments(self, trace_id: str) -> list[dict]:
        """All known segments for one trace: memory plus disk partitions."""
        segments = self.store.segments(trace_id)
        if self.directory is not None:
            # segments this process wrote live both in the store and on
            # disk; (source, recorded_at) identity dedupes the overlap
            seen_disk = {
                (seg.get("source"), seg.get("recorded_at"))
                for seg in segments
            }
            for path in self.directory.trace_partitions().values():
                for segment in read_trace_segments(path):
                    if segment.get("trace_id") != trace_id:
                        continue
                    marker = (segment.get("source"), segment.get("recorded_at"))
                    if marker in seen_disk:
                        continue
                    seen_disk.add(marker)
                    segments.append(segment)
        return segments

    def trace(self, trace_id: str) -> dict:
        return trace_payload(trace_id, self.trace_segments(trace_id))

    def trace_stats(self) -> list[dict]:
        """Per-source segment counts and recency, for `/fleet` and lag."""
        now = self._time()
        rows = []
        if self.directory is not None:
            for source, path in sorted(self.directory.trace_partitions().items()):
                segments = read_trace_segments(path)
                last = max(
                    (seg.get("recorded_at") or 0.0 for seg in segments),
                    default=None,
                )
                rows.append(
                    {
                        "source": source,
                        "segments": len(segments),
                        "last_segment_at": last,
                        "lag_s": (
                            round(max(0.0, now - last), 3)
                            if last else None
                        ),
                    }
                )
        return rows

    # -- metrics -------------------------------------------------------

    def _stale_after(self) -> float:
        if self.stale_after is not None:
            return self.stale_after
        return 10.0

    def metric_rows(self) -> list[dict]:
        """One row per exported snapshot, each flagged ``fresh``."""
        if self.directory is None:
            return []
        now = self._time()
        stale_after = self._stale_after()
        rows = read_metrics_snapshots(self.directory.metrics_snapshots(), now)
        for row in rows:
            row["metrics_age_s"] = round(row.pop("age", 0.0), 3)
            row["fresh"] = row["metrics_age_s"] <= stale_after
        return rows

    def merged_families(self, local: dict) -> dict:
        """Coordinator families + fresh worker snapshots + fleet meta."""
        rows = self.metric_rows()
        fresh = [row for row in rows if row["fresh"]]
        families = merge_metrics(local, fresh)
        families.update(fleet_meta_families(self.fleet_payload(rows)))
        return families

    # -- the /fleet document -------------------------------------------

    def fleet_payload(self, rows: Optional[list] = None) -> dict:
        if rows is None:
            rows = self.metric_rows()
        workers = [
            {
                "worker": row["worker"],
                "exported_at": row["exported_at"],
                "metrics_age_s": row["metrics_age_s"],
                "fresh": row["fresh"],
                "families": len(row.get("metrics") or {}),
            }
            for row in rows
        ]
        return {
            "federation": self.directory is not None,
            "stale_after_s": self._stale_after(),
            "workers": workers,
            "traces": {
                "sources": self.trace_stats(),
                "stored_traces": len(self.store.trace_ids()),
            },
        }
