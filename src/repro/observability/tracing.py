"""Hierarchical pipeline tracing: spans, span contexts, trace export.

One validation scan decomposes into the span tree the paper's evaluation
reasons about (Tables 8–9: where does scan time go?)::

    scan
    ├── discover              change detection + source loading
    │   └── load[source]      one per attempted configuration source
    ├── compile               parse + Figure-4 rewrites (or cache hit)
    └── evaluate              serial evaluation, or the sharded engine
        ├── shard[label]      one per shard, recorded *inside* the worker
        │   └── evaluate(stmt)  one per top-level statement in the shard
        └── ...

Spans cross the executor boundary by construction rather than by luck: the
parent allocates a :class:`SpanContext` (a tiny picklable dataclass) and
ships it inside :class:`~repro.parallel.engine.WorkerState`; each worker —
thread, fork child, or the supervisor's serial re-run — builds its own
:class:`Tracer` rooted at that context with a shard-unique span-id prefix,
and its finished spans travel back inside the
:class:`~repro.parallel.engine.ShardResult`.  At merge time the parent
calls :meth:`Tracer.adopt`, and because every worker span already names
its parent, the re-parented tree assembles itself — including spans from
shards the supervision ladder re-ran serially (their timed-out first
attempts are discarded along with their results, so no orphan spans).

Export formats:

* :meth:`Tracer.to_json` — flat span list, one dict per span;
* :meth:`Tracer.span_tree` — nested parent→children view for tests/tools;
* :meth:`Tracer.to_chrome_trace` — Chrome ``trace_event`` JSON (load it at
  ``chrome://tracing`` or https://ui.perfetto.dev).

Timestamps come from :mod:`repro.runtime.clock`, so a
:class:`~repro.runtime.clock.FakeClock` makes span durations — and hence
whole trace files — deterministic.  Span ids are sequence numbers, never
random, for the same reason.

When tracing is disabled the process-wide tracer is :data:`NULL_TRACER`:
``span()`` returns one shared reentrant no-op context manager, so
instrumented code costs an attribute lookup and a method call — nothing
is allocated and no clock is read.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Iterable, Optional

from ..runtime import clock as _clock

__all__ = [
    "SpanContext",
    "SpanHandle",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "render_chrome_trace",
]


def render_chrome_trace(trace_id: str, spans: Iterable[dict]) -> dict:
    """Render finished spans as Chrome ``trace_event`` complete events.

    Module-level so stitched cross-process traces (which assemble span
    lists without any live :class:`Tracer`) share one renderer with
    :meth:`Tracer.to_chrome_trace`.  Span ids double as flow identifiers;
    everything before the last ``:`` in a span id becomes the ``tid`` so
    each shard/worker renders as its own row in the viewer.
    """
    events = []
    for span in spans:
        span_id = span["span_id"]
        prefix, __, __ = span_id.rpartition(":")
        end = span["end"] if span["end"] is not None else span["start"]
        events.append(
            {
                "name": span["name"],
                "ph": "X",
                "ts": round(span["start"] * 1e6, 3),
                "dur": round((end - span["start"]) * 1e6, 3),
                "pid": trace_id,
                "tid": prefix or "main",
                "args": dict(span["attrs"], span_id=span_id,
                             parent_id=span["parent_id"]),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


@dataclass(frozen=True)
class SpanContext:
    """Picklable pointer to a live span: travels into shard workers."""

    trace_id: str
    span_id: str


class SpanHandle:
    """Mutable view of an open span; ``set`` attaches attributes."""

    __slots__ = ("_record",)

    def __init__(self, record: dict):
        self._record = record

    def set(self, **attrs) -> "SpanHandle":
        self._record["attrs"].update(attrs)
        return self

    @property
    def span_id(self) -> str:
        return self._record["span_id"]

    @property
    def name(self) -> str:
        return self._record["name"]


class _SpanScope:
    """Context manager for one span: times it and maintains the stack."""

    __slots__ = ("_tracer", "_handle")

    def __init__(self, tracer: "Tracer", handle: SpanHandle):
        self._tracer = tracer
        self._handle = handle

    def __enter__(self) -> SpanHandle:
        return self._handle

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._handle._record["attrs"]["error"] = exc_type.__name__
        self._tracer._finish(self._handle._record)
        return False


class Tracer:
    """Collects timestamped hierarchical spans for one process/worker.

    ``origin`` roots this tracer under a span owned by another tracer
    (the worker side of the executor boundary); ``prefix`` namespaces the
    span ids so merged trees never collide across workers.
    """

    enabled = True

    def __init__(
        self,
        trace_id: str = "trace",
        origin: Optional[SpanContext] = None,
        prefix: str = "",
        time_source=None,
    ):
        self.trace_id = origin.trace_id if origin is not None else trace_id
        self._origin = origin
        self._prefix = prefix
        # default clock is process-local (perf_counter via runtime.clock);
        # cross-process traces pass time.time so segment timestamps from
        # different workers land on one comparable axis
        self._time_source = time_source
        self._lock = threading.Lock()
        self._counter = 0
        self._finished: list[dict] = []
        self._local = threading.local()

    def _now(self) -> float:
        if self._time_source is not None:
            return self._time_source()
        return _clock.now()

    # -- span lifecycle ------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_id(self) -> str:
        with self._lock:
            self._counter += 1
            return f"{self._prefix}{self._counter}"

    def span(self, name: str, **attrs) -> _SpanScope:
        """Open a span as a context manager; the parent is the innermost
        open span on this thread, else this tracer's origin context."""
        stack = self._stack()
        if stack:
            parent_id = stack[-1]["span_id"]
        elif self._origin is not None:
            parent_id = self._origin.span_id
        else:
            parent_id = ""
        record = {
            "span_id": self._next_id(),
            "parent_id": parent_id,
            "name": name,
            "start": self._now(),
            "end": None,
            "attrs": dict(attrs),
        }
        stack.append(record)
        return _SpanScope(self, SpanHandle(record))

    def _finish(self, record: dict) -> None:
        record["end"] = self._now()
        stack = self._stack()
        if stack and stack[-1] is record:
            stack.pop()
        else:  # pragma: no cover - misnested exit; never drop the record
            try:
                stack.remove(record)
            except ValueError:
                pass
        with self._lock:
            self._finished.append(record)

    def current_context(self) -> Optional[SpanContext]:
        """Context of the innermost open span (for shipping to workers)."""
        stack = self._stack()
        if not stack:
            return self._origin
        return SpanContext(self.trace_id, stack[-1]["span_id"])

    # -- merging -------------------------------------------------------

    def adopt(self, spans: Iterable[dict]) -> int:
        """Fold finished spans from a worker tracer into this one.

        The spans already carry parent ids allocated from this tracer's
        tree (via the :class:`SpanContext` the worker was rooted at), so
        adoption *is* the re-parenting step of the merge.
        """
        adopted = [dict(span) for span in spans]
        with self._lock:
            self._finished.extend(adopted)
        return len(adopted)

    # -- reading / export ----------------------------------------------

    def finished_spans(self) -> list[dict]:
        with self._lock:
            return [dict(span) for span in self._finished]

    def find(self, name: str) -> list[dict]:
        """All finished spans with the given name (test convenience)."""
        return [span for span in self.finished_spans() if span["name"] == name]

    def span_tree(self) -> list[dict]:
        """Finished spans as a nested forest (children inside parents)."""
        spans = self.finished_spans()
        by_id = {span["span_id"]: dict(span, children=[]) for span in spans}
        roots: list[dict] = []
        for span in spans:
            node = by_id[span["span_id"]]
            parent = by_id.get(span["parent_id"])
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        return roots

    def subtree(self, span_id: str) -> list[dict]:
        """Finished spans forming the tree rooted at ``span_id``.

        Order matches the finished-span list (completion order), so the
        extraction is deterministic.  Used by the service to capture the
        most recent scan's spans for ``GET /traces/latest``.
        """
        spans = self.finished_spans()
        children: dict[str, list[str]] = {}
        for span in spans:
            children.setdefault(span["parent_id"], []).append(span["span_id"])
        wanted = {span_id}
        queue = [span_id]
        while queue:
            for child in children.get(queue.pop(), ()):
                if child not in wanted:
                    wanted.add(child)
                    queue.append(child)
        return [span for span in spans if span["span_id"] in wanted]

    def discard(self, span_ids: Iterable[str]) -> int:
        """Drop finished spans by id; returns how many were removed.

        Long-running services consume each scan's subtree into a trace
        export and discard it, so tracer memory stays bounded by one scan
        rather than growing with service lifetime.
        """
        drop = set(span_ids)
        with self._lock:
            before = len(self._finished)
            self._finished = [
                span for span in self._finished if span["span_id"] not in drop
            ]
            return before - len(self._finished)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(
            {"trace_id": self.trace_id, "spans": self.finished_spans()},
            indent=indent,
            sort_keys=True,
        )

    def to_chrome_trace(self, spans: Optional[list[dict]] = None) -> dict:
        """Chrome ``trace_event`` format: complete ("X") events.

        Span ids double as flow identifiers; the worker prefix (everything
        before the last ``:``) becomes the ``tid`` so each shard renders as
        its own row in the viewer.  ``spans`` exports a subset (e.g. one
        scan's :meth:`subtree`); default is every finished span.
        """
        return render_chrome_trace(
            self.trace_id, self.finished_spans() if spans is None else spans
        )

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()


class _NullScope:
    """Reentrant, stateless no-op span scope shared by every call site."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullScope":
        return self

    span_id = ""
    name = ""


_NULL_SCOPE = _NullScope()


class NullTracer:
    """Disabled-mode tracer: free to call, records nothing."""

    enabled = False
    trace_id = ""

    def span(self, name: str, **attrs) -> _NullScope:
        return _NULL_SCOPE

    def current_context(self) -> None:
        return None

    def adopt(self, spans: Iterable[dict]) -> int:
        return 0

    def finished_spans(self) -> list[dict]:
        return []

    def find(self, name: str) -> list[dict]:
        return []

    def span_tree(self) -> list[dict]:
        return []

    def subtree(self, span_id: str) -> list[dict]:
        return []

    def discard(self, span_ids: Iterable[str]) -> int:
        return 0

    def to_json(self, indent: int = 2) -> str:
        return "{}"

    def to_chrome_trace(self, spans: Optional[list[dict]] = None) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
