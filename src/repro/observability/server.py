"""The live operator endpoint: scrape, probe, and inspect a running service.

PR 3 made observability state *pull-a-file-and-look* (``--metrics-file``
snapshots); production metric systems expose a live scrape endpoint
instead, so collectors and load balancers talk to the service directly.
:class:`ObservabilityServer` embeds a stdlib :class:`ThreadingHTTPServer`
in a :class:`~repro.service.ValidationService` (CLI:
``confvalley service --http HOST:PORT``) serving:

========================  ==================================================
``GET /metrics``          Prometheus text exposition 0.0.4 (the live
                          registry; validated by ``parse_prometheus``)
``GET /metrics.json``     the registry as JSON
``GET /health``           health probe: **503** when the last scan's
                          :class:`~repro.core.report.HealthBlock` is
                          ``FAILED``, **200** otherwise — wire it straight
                          into a load balancer
``GET /stats``            the service's :meth:`stats` payload (scan
                          history, cache, analytics, drift, coverage)
``GET /traces/latest``    the most recent scan's span tree as Chrome
                          ``trace_event`` JSON
========================  ==================================================

When a :class:`~repro.jobs.service.JobService` is attached to the
validation service (``confvalley service --jobs``), the endpoint also
serves the asynchronous submission API — the server's first *write*
endpoints:

==========================  ================================================
``POST /jobs``              submit a validation job: **202** + job id,
                            **429** + structured backpressure body when
                            admission control rejects, **400** on a
                            malformed payload; duplicate submissions with
                            the same ``idempotency_key`` return the
                            original job id
``GET /jobs/<id>``          full job record: state machine position,
                            timestamps, and the verdict (report summary +
                            fingerprint digest) once terminal
``GET /jobs``               filterable listing
                            (``?state=…&tenant=…&limit=…``)
``POST /jobs/<id>/cancel``  cancel: immediate for QUEUED jobs, best-effort
                            for RUNNING ones; **409** once terminal
``GET /jobs/<id>/trace``    the job's distributed trace: span segments from
                            every process that touched it, stitched into one
                            Chrome ``trace_event`` tree
``GET /workers``            the worker fleet: presence heartbeats, live
                            leases, per-worker claim/done counters, metrics
                            snapshot freshness, and supervisor restart
                            counts (multi-process mode)
``GET /fleet``              fleet observability: per-worker metrics-snapshot
                            freshness (staleness fencing), trace-segment
                            lag, and job throughput — see
                            docs/OBSERVABILITY.md
==========================  ================================================

In multi-process mode ``/metrics`` and ``/metrics.json`` additionally
federate: workers export registry snapshots into the shared job
directory, and the coordinator merges fresh ones into its own exposition
under a ``worker`` label (see :mod:`repro.observability.federation`).

When the service runs an inferred-spec lifecycle (``service --shadow``,
see ``repro.lifecycle`` and docs/LIFECYCLE.md), the endpoint also serves
the spec lifecycle API:

===========================  ===============================================
``GET /specs``               every lifecycle-tracked spec: state, CPL,
                             drift ledger, transition counts
                             (``?state=shadow|enforced|retired`` filters)
``GET /specs/<id>``          one spec's full record including its
                             transition history
``POST /specs/<id>/promote`` operator override: shadow → enforced
                             (**409** when the transition is not legal,
                             **404** for unknown ids); ``demote`` and
                             ``retire`` work the same way.  Overrides are
                             journalled with an ``operator`` actor and
                             survive restarts exactly like policy decisions
===========================  ===============================================

Design constraints:

* **read-only, except ``/jobs``** — the observability endpoints render
  in-memory state and never mutate the service; writes exist only on the
  job API, which forwards every mutation to the job service's own
  journalled state machine;
* **never blocks a scan** — each request runs in its own handler thread
  and takes no lock a scan holds for longer than a dict copy, so
  endpoints answer *during* an in-flight scan;
* **single-writer-safe** — the scan loop is the only writer; readers see
  either the previous or the new scan's state, never a torn mix (the
  service guards analytics/trace swaps with a lock);
* **clean shutdown** — :meth:`stop` (and SIGTERM handling in the CLI)
  drains the listener via ``shutdown()`` + ``server_close()``; port 0
  binds an ephemeral port for tests, readable from :attr:`address`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import urlsplit

from .logging import get_logger

__all__ = ["ObservabilityServer", "parse_http_address"]

_log = get_logger("observability.server")

#: the canonical scrape content type for text exposition format 0.0.4
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
JSON_CONTENT_TYPE = "application/json; charset=utf-8"

ENDPOINTS = (
    "/metrics", "/metrics.json", "/health", "/stats", "/traces/latest",
    "/jobs", "/workers", "/fleet", "/specs",
)

#: request bodies larger than this are rejected outright (a submission
#: carries spec text + inline sources, not a configuration dump)
MAX_BODY_BYTES = 4 * 1024 * 1024


def parse_http_address(text: str) -> tuple[str, int]:
    """``HOST:PORT``, ``:PORT`` or bare ``PORT`` → ``(host, port)``."""
    # rpartition leaves the whole string in the port slot when there is
    # no ":", which is exactly the bare-PORT case
    host, __, port_text = text.rpartition(":")
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid --http address {text!r}: PORT must be an integer")
    if not 0 <= port <= 65535:
        raise ValueError(f"invalid --http address {text!r}: port out of range")
    return host, port


class _Handler(BaseHTTPRequestHandler):
    """Routes GETs to the owning :class:`ObservabilityServer`."""

    server_version = "confvalley"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # route access logs through the structured logger (silent by default)
        _log.debug("http request", extra={"request": format % args})

    def _respond(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        owner: "ObservabilityServer" = self.server.owner  # type: ignore[attr-defined]
        parts = urlsplit(self.path)
        path = parts.path.rstrip("/") or "/"
        try:
            rendered = owner.render(path, query=parts.query)
        except Exception as exc:  # a broken endpoint must not kill the server
            self._respond(
                500, JSON_CONTENT_TYPE,
                json.dumps({"error": f"{type(exc).__name__}: {exc}"}) + "\n",
            )
            return
        if rendered is None:
            self._respond(
                404, JSON_CONTENT_TYPE,
                json.dumps({"error": f"unknown endpoint {path!r}",
                            "endpoints": list(ENDPOINTS)}) + "\n",
            )
            return
        self._respond(*rendered)

    def do_HEAD(self) -> None:  # noqa: N802 - probes often use HEAD
        self.do_GET()

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        owner: "ObservabilityServer" = self.server.owner  # type: ignore[attr-defined]
        path = urlsplit(self.path).path.rstrip("/") or "/"
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._respond(
                413 if length > MAX_BODY_BYTES else 400, JSON_CONTENT_TYPE,
                json.dumps({"error": "invalid or oversized request body"}) + "\n",
            )
            return
        body = self.rfile.read(length) if length else b""
        try:
            rendered = owner.render_post(path, body)
        except Exception as exc:
            self._respond(
                500, JSON_CONTENT_TYPE,
                json.dumps({"error": f"{type(exc).__name__}: {exc}"}) + "\n",
            )
            return
        if rendered is None:
            self._respond(
                404, JSON_CONTENT_TYPE,
                json.dumps({"error": f"unknown POST endpoint {path!r}",
                            "endpoints": ["/jobs", "/jobs/<id>/cancel",
                                          "/specs/<id>/promote",
                                          "/specs/<id>/demote",
                                          "/specs/<id>/retire"]}) + "\n",
            )
            return
        self._respond(*rendered)


class ObservabilityServer:
    """Serve a :class:`~repro.service.ValidationService`'s observability
    state over HTTP (see module docstring for the endpoint table)."""

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self._requested = (host, port)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolves port 0 to the real port."""
        if self._httpd is not None:
            return self._httpd.server_address[:2]
        return self._requested

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ObservabilityServer":
        """Bind and serve on a daemon thread; returns self (chainable)."""
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer(self._requested, _Handler)
        httpd.daemon_threads = True
        httpd.owner = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="confvalley-http",
            daemon=True,
        )
        self._thread.start()
        _log.info(
            "operator endpoint listening",
            extra={"host": self.address[0], "port": self.address[1]},
        )
        return self

    def stop(self) -> None:
        """Stop accepting, drain handler threads, close the socket."""
        httpd, thread = self._httpd, self._thread
        self._httpd, self._thread = None, None
        if httpd is None:
            return
        httpd.shutdown()
        httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
        _log.info("operator endpoint stopped", extra={})

    # -- rendering -----------------------------------------------------

    def render(self, path: str, query: str = "") -> Optional[tuple[int, str, str]]:
        """Render one GET endpoint → ``(status, content type, body)``.

        Returns ``None`` for unknown paths.  Pure read: looks at the
        process-wide metrics registry and the service's published state
        (the job API additionally reads the attached job service).
        """
        from . import get_metrics  # late: the live registry at request time

        self._count_request(path)
        if path == "/jobs" or path.startswith("/jobs/"):
            return self._render_jobs_get(path, query)
        if path == "/specs" or path.startswith("/specs/"):
            return self._render_specs_get(path, query)
        if path == "/workers":
            jobs = self.jobs
            if jobs is None:
                return self._jobs_disabled()
            return self._json_body(200, jobs.workers_payload())
        if path == "/fleet":
            jobs = self.jobs
            if jobs is None:
                # always 200: a plain service simply has no fleet to report
                return self._json_body(200, {
                    "federation": False, "workers": [],
                    "traces": {"sources": [], "stored_traces": 0},
                })
            return self._json_body(200, jobs.fleet_payload())
        if path == "/metrics":
            families = self._federated_families()
            if families is not None:
                from .federation import render_families

                return 200, PROMETHEUS_CONTENT_TYPE, render_families(families)
            return 200, PROMETHEUS_CONTENT_TYPE, get_metrics().to_prometheus()
        if path == "/metrics.json":
            families = self._federated_families()
            if families is not None:
                body = json.dumps(families, indent=2, sort_keys=True)
                return 200, JSON_CONTENT_TYPE, body + "\n"
            return 200, JSON_CONTENT_TYPE, get_metrics().to_json() + "\n"
        if path == "/health":
            payload = self.service.health_payload()
            status = 503 if payload["status"] == "FAILED" else 200
            return status, JSON_CONTENT_TYPE, json.dumps(
                payload, sort_keys=True
            ) + "\n"
        if path == "/stats":
            return 200, JSON_CONTENT_TYPE, json.dumps(
                self.service.stats(), sort_keys=True
            ) + "\n"
        if path == "/traces/latest":
            trace = self.service.latest_trace()
            if trace is None:
                trace = {"traceEvents": [], "displayTimeUnit": "ms"}
            return 200, JSON_CONTENT_TYPE, json.dumps(trace, sort_keys=True) + "\n"
        return None

    # -- the asynchronous job API (repro.jobs) -------------------------

    @property
    def jobs(self):
        """The attached :class:`~repro.jobs.service.JobService`, or None."""
        return getattr(self.service, "jobs", None)

    def _federated_families(self) -> Optional[dict]:
        """Fleet-merged metric families, or None for local-only exposition."""
        jobs = self.jobs
        if jobs is None:
            return None
        return jobs.federated_metrics()

    @staticmethod
    def _json_body(status: int, payload: dict) -> tuple[int, str, str]:
        return status, JSON_CONTENT_TYPE, json.dumps(payload, sort_keys=True) + "\n"

    def _jobs_disabled(self) -> tuple[int, str, str]:
        return self._json_body(404, {
            "error": "the job service is not enabled",
            "hint": "start the service with --jobs (see docs/OPERATIONS.md §4d)",
        })

    def _render_jobs_get(self, path: str, query: str) -> tuple[int, str, str]:
        jobs = self.jobs
        if jobs is None:
            return self._jobs_disabled()
        if path == "/jobs":
            from urllib.parse import parse_qs

            params = parse_qs(query)

            def first(name: str) -> Optional[str]:
                values = params.get(name)
                return values[0] if values else None

            try:
                limit = int(first("limit") or 50)
            except ValueError:
                return self._json_body(400, {"error": "'limit' must be an integer"})
            listing = jobs.list_jobs(
                state=first("state"), tenant=first("tenant"), limit=limit
            )
            return self._json_body(200, {"jobs": listing, "stats": jobs.stats()})
        if path.endswith("/trace"):
            job_id = path[len("/jobs/"):-len("/trace")]
            if jobs.get(job_id) is None:
                return self._json_body(404, {"error": f"unknown job {job_id!r}"})
            return self._json_body(200, jobs.trace(job_id))
        job_id = path[len("/jobs/"):]
        job = jobs.get(job_id)
        if job is None:
            return self._json_body(404, {"error": f"unknown job {job_id!r}"})
        return self._json_body(200, job.to_dict())

    # -- the spec lifecycle API (repro.lifecycle) ----------------------

    @property
    def lifecycle(self):
        """The service's :class:`SpecLifecycleManager`, or None."""
        return getattr(self.service, "lifecycle", None)

    def _lifecycle_disabled(self) -> tuple[int, str, str]:
        return self._json_body(404, {
            "error": "the spec lifecycle is not enabled",
            "hint": "start the service with --shadow (see docs/LIFECYCLE.md)",
        })

    def _render_specs_get(self, path: str, query: str) -> tuple[int, str, str]:
        lifecycle = self.lifecycle
        if lifecycle is None:
            return self._lifecycle_disabled()
        if path == "/specs":
            from urllib.parse import parse_qs

            values = parse_qs(query).get("state")
            state = values[0].upper() if values else None
            if state is not None and state not in ("SHADOW", "ENFORCED", "RETIRED"):
                return self._json_body(400, {
                    "error": f"unknown state filter {state.lower()!r}",
                    "hint": "use state=shadow|enforced|retired",
                })
            return self._json_body(200, {
                "specs": lifecycle.records_payload(state=state),
                "stats": lifecycle.stats(),
            })
        spec_id = path[len("/specs/"):]
        with lifecycle._lock:
            record = lifecycle.records.get(spec_id)
            if record is None:
                return self._json_body(404, {"error": f"unknown spec {spec_id!r}"})
            return self._json_body(200, record.to_dict())

    def _render_specs_post(self, path: str) -> tuple[int, str, str]:
        lifecycle = self.lifecycle
        if lifecycle is None:
            return self._lifecycle_disabled()
        rest = path[len("/specs/"):]
        spec_id, __, action = rest.rpartition("/")
        handlers = {
            "promote": lifecycle.promote,
            "demote": lifecycle.demote,
            "retire": lifecycle.retire,
        }
        handler = handlers.get(action)
        if not spec_id or handler is None:
            return self._json_body(404, {
                "error": f"unknown lifecycle operation {path!r}",
                "hint": "POST /specs/<id>/promote|demote|retire",
            })
        try:
            record = handler(spec_id, actor="operator", reason="operator API")
        except KeyError:
            return self._json_body(404, {"error": f"unknown spec {spec_id!r}"})
        except ValueError as error:
            return self._json_body(409, {"error": str(error)})
        return self._json_body(200, record)

    def render_post(self, path: str, body: bytes) -> Optional[tuple[int, str, str]]:
        """Route one POST → ``(status, content type, body)`` (None = 404)."""
        from ..jobs.model import AdmissionError

        self._count_request(path)
        if path.startswith("/specs/"):
            return self._render_specs_post(path)
        jobs = self.jobs
        if path == "/jobs":
            if jobs is None:
                return self._jobs_disabled()
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, ValueError):
                return self._json_body(400, {"error": "request body is not valid JSON"})
            try:
                job, created = jobs.submit_payload(payload)
            except AdmissionError as error:
                return self._json_body(429, error.to_dict())
            except ValueError as error:
                return self._json_body(400, {"error": str(error)})
            return self._json_body(202, {
                "id": job.id,
                "state": job.state,
                "deduplicated": not created,
                "location": f"/jobs/{job.id}",
            })
        if path.startswith("/jobs/") and path.endswith("/cancel"):
            if jobs is None:
                return self._jobs_disabled()
            job_id = path[len("/jobs/"):-len("/cancel")]
            try:
                job = jobs.cancel(job_id)
            except KeyError:
                return self._json_body(404, {"error": f"unknown job {job_id!r}"})
            except ValueError as error:
                return self._json_body(409, {"error": str(error)})
            return self._json_body(200, {
                "id": job.id,
                "state": job.state,
                "cancel_requested": job.cancel_requested,
            })
        return None

    def _count_request(self, path: str) -> None:
        from . import get_metrics

        metrics = get_metrics()
        if metrics.enabled:
            # collapse per-job paths to one series — job ids are unbounded
            # and would otherwise explode the label cardinality
            if path.startswith("/jobs/"):
                if path.endswith("/cancel"):
                    path = "/jobs/:id/cancel"
                elif path.endswith("/trace"):
                    path = "/jobs/:id/trace"
                else:
                    path = "/jobs/:id"
            elif path.startswith("/specs/"):
                action = path.rpartition("/")[2]
                if action in ("promote", "demote", "retire"):
                    path = f"/specs/:id/{action}"
                else:
                    path = "/specs/:id"
            metrics.counter(
                "confvalley_http_requests_total",
                "Operator-endpoint requests served, by path.",
            ).inc(path=path)
