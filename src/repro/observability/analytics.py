"""Per-spec evaluation analytics: hot specs, dead specs, scan drift.

The paper's operators run ConfValley continuously over a changing
repository (§6), so the interesting questions are longitudinal: *which
specifications are slow, which stopped matching anything, what changed
between this scan and the last one*.  This module turns the per-statement
attribution the evaluator records (``ValidationReport.spec_profile``: eval
count, matched-instance count, violation count, cumulative latency via the
injectable clock) into the three operator views:

* **hot-spec table** — top-N statements by cumulative wall clock across
  every scan so far, the live version of the paper's Table-8 skew
  observation ("some specifications are more complex than others");
* **dead-spec detection** — statements whose notations matched zero
  instances this scan; they validate vacuously, which usually means a
  stale or misspelled scope path.  Each entry is cross-checked against
  :func:`repro.core.coverage.analyze_coverage` (pattern-level matching)
  so a transiently-empty domain is distinguishable from a spec no
  instance can ever satisfy;
* **drift report** — failing statements classified between consecutive
  scans as *new* (failing now, passing before), *persisting* (failing in
  both), or *fixed* (passing now, failing before) — the page-the-operator
  summary of what a repository change actually did.

Determinism: every ranking sorts on the measured quantity first and the
``(line, spec text)`` key second, and the per-shard merge in
:mod:`repro.parallel.engine` folds profiles in original statement order —
so under a :class:`~repro.runtime.clock.FakeClock` the rendered hot-spec
table is byte-identical across the serial, thread, and fork executors
(asserted in ``tests/test_operator_endpoint.py``).
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional

__all__ = [
    "SpecAnalytics",
    "empty_profile_row",
    "merge_spec_profiles",
    "profile_rows",
    "format_hot_specs",
    "format_drift",
]


def empty_profile_row() -> dict:
    """One per-spec attribution record, all counters zero."""
    return {"evals": 0, "instances": 0, "violations": 0, "seconds": 0.0}


def merge_spec_profiles(target: dict, source: dict) -> None:
    """Fold one ``spec_profile`` dict into another (commutative sums)."""
    for key, row in source.items():
        into = target.get(key)
        if into is None:
            target[key] = dict(row)
            continue
        into["evals"] += row["evals"]
        into["instances"] += row["instances"]
        into["violations"] += row["violations"]
        into["seconds"] += row["seconds"]


def profile_rows(profile: dict) -> list[dict]:
    """A ``spec_profile`` dict as JSON-safe rows, ordered by (line, text)."""
    return [
        {
            "line": line,
            "spec": text,
            "evals": row["evals"],
            "instances": row["instances"],
            "violations": row["violations"],
            "seconds": round(row["seconds"], 6),
        }
        for (line, text), row in sorted(profile.items())
    ]


class SpecAnalytics:
    """Scan-over-scan aggregation of per-spec attribution.

    Owned by the :class:`~repro.service.ValidationService`; fed one
    :class:`~repro.core.report.ValidationReport` per scan that revalidated.
    All reads return plain JSON-safe structures, and a lock makes the
    record/read pair safe against the operator endpoint reading ``stats()``
    while a scan records — readers never block a scan for longer than a
    dict copy.
    """

    def __init__(self, hot_limit: int = 10):
        self.hot_limit = hot_limit
        self.scans = 0
        self._lock = threading.Lock()
        #: (line, text) → cumulative counters across every recorded scan
        self._totals: dict[tuple, dict] = {}
        #: the most recent scan's own profile (dead-spec + drift input)
        self._last: dict[tuple, dict] = {}
        #: failing spec keys of the previous / current scan, with counts
        self._previous_failing: dict[tuple, int] = {}
        self._current_failing: dict[tuple, int] = {}
        #: spec texts coverage analysis called dead (pattern-level check)
        self._coverage_dead: frozenset = frozenset()

    # -- recording -----------------------------------------------------

    def record_scan(
        self, report, coverage_dead: Optional[Iterable[str]] = None
    ) -> None:
        """Fold one scan's ``report.spec_profile`` into the aggregates."""
        profile = getattr(report, "spec_profile", None) or {}
        failing = {
            key: row["violations"]
            for key, row in profile.items()
            if row["violations"]
        }
        with self._lock:
            self.scans += 1
            merge_spec_profiles(self._totals, profile)
            self._last = {key: dict(row) for key, row in profile.items()}
            self._previous_failing = self._current_failing
            self._current_failing = failing
            if coverage_dead is not None:
                self._coverage_dead = frozenset(coverage_dead)

    # -- reading -------------------------------------------------------

    def hot_specs(self, count: Optional[int] = None) -> list[dict]:
        """Top-N statements by cumulative latency (ties by line, text)."""
        limit = count if count is not None else self.hot_limit
        with self._lock:
            ranked = sorted(
                self._totals.items(),
                key=lambda kv: (-kv[1]["seconds"], kv[0]),
            )
        return [
            {
                "line": line,
                "spec": text,
                "evals": row["evals"],
                "instances": row["instances"],
                "violations": row["violations"],
                "seconds": round(row["seconds"], 6),
            }
            for (line, text), row in ranked[:limit]
        ]

    def dead_specs(self) -> list[dict]:
        """Statements whose notations matched zero instances this scan.

        ``coverage_confirmed`` is True when pattern-level coverage analysis
        agrees no instance can match — i.e. the domain is not just empty
        right now, the notation is structurally wrong for this store.
        """
        with self._lock:
            dead = [
                (key, row)
                for key, row in sorted(self._last.items())
                if row["instances"] == 0 and row["evals"] > 0
            ]
            confirmed = self._coverage_dead
        return [
            {
                "line": line,
                "spec": text,
                "evals": row["evals"],
                "coverage_confirmed": text in confirmed,
            }
            for (line, text), row in dead
        ]

    def drift(self) -> dict:
        """Failure drift between the two most recent scans."""

        def rows(keys: Iterable[tuple], counts: dict) -> list[dict]:
            return [
                {"line": line, "spec": text, "violations": counts.get((line, text), 0)}
                for line, text in sorted(keys)
            ]

        with self._lock:
            current = dict(self._current_failing)
            previous = dict(self._previous_failing)
            scans = self.scans
        new = set(current) - set(previous)
        persisting = set(current) & set(previous)
        fixed = set(previous) - set(current)
        return {
            "scan": scans,
            "comparable": scans >= 2,
            "new": rows(new, current),
            "persisting": rows(persisting, current),
            "fixed": rows(fixed, previous),
        }

    def to_dict(self) -> dict:
        """The JSON-safe ``stats()`` payload block."""
        return {
            "scans": self.scans,
            "hot_specs": self.hot_specs(),
            "dead_specs": self.dead_specs(),
        }


# ---------------------------------------------------------------------------
# Rendering (``confvalley top``, ``confvalley stats``)
# ---------------------------------------------------------------------------


def _clip(text: str, width: int = 56) -> str:
    text = " ".join(text.split())
    return text if len(text) <= width else text[: width - 1] + "…"


def format_hot_specs(rows: list[dict], count: Optional[int] = None) -> str:
    """The hot-spec table as fixed-width text (deterministic)."""
    shown = rows if count is None else rows[:count]
    if not shown:
        return "no per-spec analytics recorded yet"
    lines = [
        f"{'#':>3}  {'seconds':>10}  {'evals':>7}  {'instances':>9}  "
        f"{'violations':>10}  spec"
    ]
    for rank, row in enumerate(shown, start=1):
        lines.append(
            f"{rank:>3}  {row['seconds']:>10.6f}  {row['evals']:>7}  "
            f"{row['instances']:>9}  {row['violations']:>10}  "
            f"L{row['line']}: {_clip(row['spec'])}"
        )
    return "\n".join(lines)


def format_drift(drift: dict) -> str:
    """One drift report as text (``confvalley stats`` text format)."""
    if not drift.get("comparable"):
        return "drift: needs two scans to compare"
    parts = []
    for kind in ("new", "persisting", "fixed"):
        rows = drift.get(kind) or []
        if rows:
            parts.append(f"{kind} ({len(rows)}):")
            parts.extend(
                f"  L{row['line']}: {_clip(row['spec'])} "
                f"[{row['violations']} violation(s)]"
                for row in rows
            )
    if not parts:
        return "drift: no failing specs in the last two scans"
    return "\n".join(["drift vs previous scan:"] + parts)
