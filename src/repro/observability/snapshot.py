"""Exposition snapshots: atomically published observability state.

A continuous ``confvalley service`` is typically the only process with the
scan history, the metrics registry and the quarantine/breaker state in
memory — but the operator asking "why is the scan degraded?" is in another
terminal (or another host).  The bridge is a *snapshot file* the service
atomically rewrites after every scan (``service --metrics-file PATH``):

* ``PATH`` ending in ``.prom`` or ``.txt`` → raw Prometheus text
  exposition, directly scrapable by node_exporter-style collectors;
* any other extension → a JSON document carrying the service's
  :meth:`~repro.service.ValidationService.stats` block, the JSON metrics
  dump, *and* the Prometheus text embedded under ``"prometheus"`` — the
  format ``confvalley stats`` reads.

Writes go through a same-directory temp file + ``os.replace`` so readers
never observe a torn snapshot, even mid-scan on a busy service.
"""

from __future__ import annotations

import json
import os
from typing import Optional

__all__ = ["SNAPSHOT_VERSION", "write_snapshot", "load_snapshot", "render_stats"]

SNAPSHOT_VERSION = 1


def _atomic_write(path: str, text: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    temp_path = os.path.join(directory, f".{os.path.basename(path)}.{os.getpid()}.tmp")
    with open(temp_path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, path)


def write_snapshot(path: str, stats: dict, registry) -> None:
    """Publish one observability snapshot to ``path`` (atomic rewrite)."""
    if path.endswith((".prom", ".txt")):
        _atomic_write(path, registry.to_prometheus())
        return
    payload = {
        "snapshot_version": SNAPSHOT_VERSION,
        "stats": stats,
        "metrics": registry.to_dict(),
        "prometheus": registry.to_prometheus(),
    }
    _atomic_write(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_snapshot(path: str) -> dict:
    """Read a snapshot file back; raw Prometheus files are wrapped."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return json.loads(text)
    return {
        "snapshot_version": SNAPSHOT_VERSION,
        "stats": {},
        "metrics": {},
        "prometheus": text,
    }


def _format_scan_row(record: dict) -> str:
    health = record.get("health") or "-"
    flags = []
    if record.get("transitioned"):
        flags.append("TRANSITION")
    if record.get("cache_hits"):
        flags.append("cache-hit")
    extras = f"  [{', '.join(flags)}]" if flags else ""
    return (
        f"  #{record.get('sequence', '?'):>4}  "
        f"{'PASS' if record.get('passed') else 'FAIL'}  "
        f"health={health:<9} "
        f"violations={record.get('violations', 0):<5} "
        f"specs={record.get('specs_evaluated', 0):<5} "
        f"elapsed={record.get('elapsed_seconds', 0.0):.3f}s"
        f"{extras}"
    )


def render_stats(snapshot: dict, history_limit: Optional[int] = None) -> str:
    """Human-readable summary of a snapshot (``confvalley stats``)."""
    stats = snapshot.get("stats") or {}
    lines = ["confvalley service stats"]
    status = stats.get("status")
    status_text = {True: "PASS", False: "FAIL", None: "never validated"}.get(
        status, str(status)
    )
    lines.append(
        f"status: {status_text}; scans={stats.get('scans', 0)} "
        f"validations={stats.get('validations', 0)}"
    )
    cache = stats.get("cache") or {}
    if cache:
        lines.append(
            "spec cache: "
            + " ".join(f"{key}={value}" for key, value in sorted(cache.items()))
        )
    quarantine = stats.get("quarantined_sources") or []
    if quarantine:
        lines.append(f"quarantined sources ({len(quarantine)}):")
        for record in quarantine:
            probe = record.get("next_probe_scan")
            schedule = "on edit only" if probe is None else f"probe at scan {probe}"
            lines.append(
                f"  {record.get('path', '?')}: {record.get('kind', '?')} "
                f"x{record.get('failures', 0)} ({schedule})"
            )
    breakers = stats.get("breakers") or []
    if breakers:
        lines.append(f"spec circuit breakers ({len(breakers)}):")
        for record in breakers:
            lines.append(
                f"  {record.get('spec', '?')}: {record.get('state', '?')} "
                f"(failures={record.get('consecutive_failures', 0)}, "
                f"trips={record.get('trips', 0)})"
            )
    analytics = stats.get("analytics") or {}
    hot = analytics.get("hot_specs") or []
    if hot:
        from .analytics import format_hot_specs

        lines.append(f"hot specs (top {len(hot)} by cumulative latency):")
        lines.append(format_hot_specs(hot))
    dead = analytics.get("dead_specs") or []
    if dead:
        lines.append(f"dead specs matching no instance this scan ({len(dead)}):")
        for row in dead:
            confirmed = " [coverage-confirmed]" if row.get("coverage_confirmed") else ""
            lines.append(f"  L{row.get('line', '?')}: {row.get('spec', '?')}{confirmed}")
    drift = stats.get("drift") or {}
    if drift.get("comparable"):
        from .analytics import format_drift

        lines.append(format_drift(drift))
    coverage = stats.get("coverage") or {}
    if coverage:
        lines.append(
            f"coverage: {coverage.get('covered_classes', 0)}/"
            f"{coverage.get('total_classes', 0)} classes "
            f"({coverage.get('coverage_ratio', 0.0):.0%}); "
            f"{len(coverage.get('dead_specs') or [])} dead spec(s)"
        )
    history = stats.get("history") or []
    if history_limit is not None:
        history = history[-history_limit:]
    if history:
        lines.append(f"recent scans ({len(history)}):")
        lines.extend(_format_scan_row(record) for record in history)
    families = sorted((snapshot.get("metrics") or {}))
    if families:
        lines.append(f"metric families ({len(families)}):")
        lines.extend(f"  {name}" for name in families)
    return "\n".join(lines)
