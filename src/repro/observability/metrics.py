"""Process-wide metrics: counters, gauges, histograms, exposition.

The registry is the quantitative half of :mod:`repro.observability`: every
instrumentation hook in the pipeline (spec-cache lookups, driver parse
latency, shard dispatch, quarantine admissions, breaker trips, scan
outcomes) feeds a metric family here, and the whole registry renders as

* **Prometheus text exposition format** (:meth:`MetricsRegistry.to_prometheus`),
  the de-facto scrape format for cloud monitoring, and
* **JSON** (:meth:`MetricsRegistry.to_dict`), for the service's snapshot
  file and the ``confvalley stats`` subcommand.

Design constraints, in order:

1. **nil-cost when disabled** — the default registry is
   :data:`NULL_REGISTRY`; every ``counter()``/``gauge()``/``histogram()``
   call on it returns one shared no-op metric, so instrumented code pays a
   single attribute call per hook and allocates nothing;
2. **deterministic** — histogram bucket boundaries are fixed constants
   (:data:`DEFAULT_BUCKETS`), label sets render sorted, and exposition
   output is a pure function of the recorded observations, so tests can
   compare text output byte-for-byte;
3. **thread-safe** — one registry is shared by thread-pool shard workers;
   a single lock guards family creation and all value updates (the hooks
   are coarse-grained, so contention is negligible).

Metrics recorded inside *fork* shard workers die with the worker — by
design.  Everything worth keeping (shard wall clocks, unit counts) travels
back in the :class:`~repro.parallel.engine.ShardResult` and is recorded by
the parent at merge time, so expositions are complete under every executor.
"""

from __future__ import annotations

import json
import re
import threading
from bisect import bisect_left
from typing import Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetric",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "parse_prometheus",
]

#: fixed, deterministic latency buckets (seconds): micro-benchmark floor to
#: worst-case scan ceiling.  Fixed boundaries keep expositions comparable
#: across runs and hosts — never derived from observed data.
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _label_key(labels: dict) -> tuple:
    """Canonical (sorted) label identity for one time series."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: tuple) -> str:
    if not key:
        return ""
    # label-value escaping per the exposition format: backslash first,
    # then quote and newline (a raw newline would split the sample line)
    inner = ",".join(
        '{}="{}"'.format(
            name,
            value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n"),
        )
        for name, value in key
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    """Render ints without a trailing ``.0`` (Prometheus-conventional)."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared bookkeeping for one metric family (all its label series)."""

    kind = ""

    def __init__(self, name: str, help_text: str, lock: threading.Lock):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help_text
        self._lock = lock
        self._series: dict[tuple, float] = {}

    def _check_labels(self, labels: dict) -> tuple:
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        return _label_key(labels)

    # -- reading -------------------------------------------------------

    def value(self, **labels) -> float:
        """Current value of one series (0.0 when never touched)."""
        return self._series.get(_label_key(labels), 0.0)

    def series(self) -> dict[tuple, float]:
        with self._lock:
            return dict(self._series)

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "kind": self.kind,
                "help": self.help,
                "series": [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(self._series.items())
                ],
            }

    def expose(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        with self._lock:
            series = sorted(self._series.items())
        if not series:
            # an exposition should still advertise families that exist but
            # have no observations yet — emit the unlabeled zero series
            series = [((), 0.0)]
        for key, value in series:
            lines.append(f"{self.name}{_render_labels(key)} {_format_value(value)}")
        return lines


class Counter(_Metric):
    """Monotonically increasing count, optionally labeled."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._check_labels(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount


class Gauge(_Metric):
    """A value that can go up and down (queue depths, open breakers)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._check_labels(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._check_labels(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)


class Histogram(_Metric):
    """Cumulative-bucket histogram with fixed, deterministic boundaries."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.Lock,
        buckets: Optional[Sequence[float]] = None,
    ):
        super().__init__(name, help_text, lock)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be sorted and distinct")
        self.buckets = bounds
        #: label key → [per-bucket counts..., +Inf count], plus sum/count
        self._bucket_counts: dict[tuple, list[int]] = {}
        self._sums: dict[tuple, float] = {}
        self._counts: dict[tuple, int] = {}

    def observe(self, value: float, **labels) -> None:
        key = self._check_labels(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            counts = self._bucket_counts.get(key)
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
                self._bucket_counts[key] = counts
            counts[index] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._counts[key] = self._counts.get(key, 0) + 1

    # -- reading -------------------------------------------------------

    def count(self, **labels) -> int:
        return self._counts.get(_label_key(labels), 0)

    def sum(self, **labels) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "kind": self.kind,
                "help": self.help,
                "buckets": list(self.buckets),
                "series": [
                    {
                        "labels": dict(key),
                        "counts": list(counts),
                        "sum": self._sums.get(key, 0.0),
                        "count": self._counts.get(key, 0),
                    }
                    for key, counts in sorted(self._bucket_counts.items())
                ],
            }

    def expose(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} histogram")
        with self._lock:
            series = sorted(self._bucket_counts.items())
            if not series:
                series = [((), [0] * (len(self.buckets) + 1))]
            for key, counts in series:
                cumulative = 0
                for bound, count in zip(self.buckets, counts):
                    cumulative += count
                    bucket_key = key + (("le", _format_value(bound)),)
                    lines.append(
                        f"{self.name}_bucket{_render_labels(bucket_key)} {cumulative}"
                    )
                cumulative += counts[-1]
                inf_key = key + (("le", "+Inf"),)
                lines.append(
                    f"{self.name}_bucket{_render_labels(inf_key)} {cumulative}"
                )
                lines.append(
                    f"{self.name}_sum{_render_labels(key)} "
                    f"{_format_value(self._sums.get(key, 0.0))}"
                )
                lines.append(
                    f"{self.name}_count{_render_labels(key)} "
                    f"{self._counts.get(key, 0)}"
                )
        return lines


class MetricsRegistry:
    """Get-or-create registry of metric families, exposition included."""

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Metric] = {}

    def _family(self, name: str, help_text: str, factory) -> _Metric:
        with self._lock:
            metric = self._families.get(name)
            if metric is None:
                metric = factory(name, help_text, self._lock)
                self._families[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        metric = self._family(name, help_text, Counter)
        if not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} already registered as {metric.kind}")
        return metric

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        metric = self._family(name, help_text, Gauge)
        if not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} already registered as {metric.kind}")
        return metric

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        metric = self._family(
            name,
            help_text,
            lambda n, h, lock: Histogram(n, h, lock, buckets),
        )
        if not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} already registered as {metric.kind}")
        return metric

    # -- exposition ----------------------------------------------------

    def families(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        for name in self.families():
            lines.extend(self._families[name].expose())
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict:
        return {name: self._families[name].to_dict() for name in self.families()}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


class NullMetric:
    """Shared do-nothing metric: every mutator is a no-op, every read zero."""

    kind = "null"
    buckets = DEFAULT_BUCKETS

    def inc(self, amount: float = 1.0, **labels) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels) -> None:
        pass

    def set(self, value: float, **labels) -> None:
        pass

    def observe(self, value: float, **labels) -> None:
        pass

    def value(self, **labels) -> float:
        return 0.0

    def count(self, **labels) -> int:
        return 0

    def sum(self, **labels) -> float:
        return 0.0


_NULL_METRIC = NullMetric()


class NullRegistry:
    """The disabled-mode registry: hands out one shared no-op metric."""

    enabled = False

    def counter(self, name: str, help_text: str = "") -> NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help_text: str = "") -> NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, help_text: str = "", buckets=None) -> NullMetric:
        return _NULL_METRIC

    def families(self) -> list[str]:
        return []

    def to_prometheus(self) -> str:
        return ""

    def to_dict(self) -> dict:
        return {}

    def to_json(self, indent: int = 2) -> str:
        return "{}"


NULL_REGISTRY = NullRegistry()


# ---------------------------------------------------------------------------
# Exposition validation (tests, `make obs-smoke`)
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    # the label block skips over quoted strings so "}" (and anything
    # else) inside a quoted label value doesn't end the block early
    r'(?:\{(?P<labels>(?:[^"}]|"(?:[^"\\]|\\.)*")*)\})?'
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_LABEL_ESCAPE_RE = re.compile(r"\\(.)")
_LABEL_UNESCAPES = {"\\": "\\", '"': '"', "n": "\n"}


def _unescape_label(value: str) -> str:
    """Invert exposition-format label escaping (``\\\\``, ``\\"``, ``\\n``)."""

    def replace(match: "re.Match[str]") -> str:
        escaped = match.group(1)
        if escaped not in _LABEL_UNESCAPES:
            raise ValueError(f"invalid label escape \\{escaped}")
        return _LABEL_UNESCAPES[escaped]

    return _LABEL_ESCAPE_RE.sub(replace, value)


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse (and thereby validate) Prometheus text exposition output.

    Returns ``{family name: {"type": ..., "help": ..., "samples":
    [(sample name, labels dict, value), ...]}}``.  Raises ``ValueError`` on
    any line that is not a well-formed comment or sample — this is the
    checker behind ``make obs-smoke``, strict enough to catch label-quoting
    and value-formatting regressions without reimplementing a scraper.
    """
    families: dict[str, dict] = {}

    def family_for(sample_name: str) -> Optional[dict]:
        for suffix in ("", "_bucket", "_sum", "_count"):
            base = sample_name[: len(sample_name) - len(suffix)] if suffix else sample_name
            if suffix and not sample_name.endswith(suffix):
                continue
            if base in families:
                return families[base]
        return None

    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                raise ValueError(f"line {line_number}: malformed comment: {line!r}")
            kind, name = parts[1], parts[2]
            family = families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )
            if kind == "TYPE":
                family["type"] = parts[3] if len(parts) > 3 else "untyped"
            else:
                family["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {line_number}: malformed sample: {line!r}")
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            # walk pair-by-pair instead of splitting on "," so commas
            # inside quoted label values parse correctly
            position = 0
            while position < len(raw_labels):
                pair_match = _LABEL_PAIR_RE.match(raw_labels, position)
                if not pair_match:
                    raise ValueError(
                        f"line {line_number}: malformed label pair at "
                        f"{raw_labels[position:]!r}"
                    )
                try:
                    labels[pair_match.group(1)] = _unescape_label(
                        pair_match.group(2)
                    )
                except ValueError as exc:
                    raise ValueError(f"line {line_number}: {exc}") from None
                position = pair_match.end()
                if position < len(raw_labels):
                    if raw_labels[position] != ",":
                        raise ValueError(
                            f"line {line_number}: malformed label separator "
                            f"at {raw_labels[position:]!r}"
                        )
                    position += 1
        try:
            value = float(match.group("value"))
        except ValueError:
            if match.group("value") not in ("+Inf", "-Inf", "NaN"):
                raise ValueError(
                    f"line {line_number}: malformed value {match.group('value')!r}"
                ) from None
            value = float(match.group("value").replace("Inf", "inf"))
        family = family_for(match.group("name"))
        if family is None:
            family = families.setdefault(
                match.group("name"), {"type": "untyped", "help": "", "samples": []}
            )
        family["samples"].append((match.group("name"), labels, value))
    return families
