"""Fault-tolerant validation (``repro.resilience``).

Strict mode — the PR-1 behavior, still the default everywhere — treats any
failure as fatal: a malformed source, a crashing spec statement or a wedged
shard aborts the scan with an exception.  That is right for a one-shot
``confvalley validate`` but wrong for the continuous service of paper
§5.1, where one bad input must not blind the operator to the other
forty-nine sources.  This package supplies the supervised mode, in four
layers threaded through drivers → parallel engine → service → reports:

* **source fault isolation** (:mod:`.sources`) — per-source quarantine
  with scan-counted exponential backoff and mtime-gated re-admission;
* **spec circuit breakers** (:mod:`.breaker`) — statements that raise
  internal errors N consecutive scans are tripped to ``SKIPPED(reason)``
  and probed for recovery on a half-open schedule;
* **shard supervision** (:mod:`repro.parallel.supervision`) — per-shard
  timeouts/crash detection with a retry → serial-re-run → mark-failed
  fallback ladder (lives in ``repro.parallel`` to respect layering);
* **degraded-mode reporting** — every report carries a
  :class:`~repro.core.report.HealthBlock` (``OK | DEGRADED | FAILED``)
  excluded from ``fingerprint()``, so health never perturbs determinism
  comparisons.

Enable it by passing a :class:`ResiliencePolicy` to
:class:`~repro.service.ValidationService` (CLI: ``confvalley service
--resilient``).  :mod:`.chaos` provides the deterministic fault-injection
harness the tests and ``benchmarks/bench_resilience.py`` drive.
"""

from .breaker import SpecCircuitBreaker, SpecGuard, statement_key
from .chaos import FaultPlan, FaultyRuntimeProvider
from .policy import ResiliencePolicy
from .sources import SourceFailure, SourceSupervisor

__all__ = [
    "ResiliencePolicy",
    "SourceFailure",
    "SourceSupervisor",
    "SpecCircuitBreaker",
    "SpecGuard",
    "statement_key",
    "FaultPlan",
    "FaultyRuntimeProvider",
]
