"""Spec circuit breakers: quarantine statements that keep crashing.

A specification statement that raises an *internal* error (an evaluator
bug, a pathological interaction with one store's data, a broken custom
predicate) would, in strict mode, take the whole scan down — and in a
continuous service it would take *every* scan down until a human edits the
spec file.  The breaker turns that failure mode into a per-statement
quarantine with automatic recovery, the classic circuit-breaker state
machine driven by the service's scan counter:

* **closed** — the statement runs normally.  Each scan where it raises
  increments a consecutive-failure count; a clean scan resets it.
* **open** — tripped after ``threshold`` consecutive failing scans.  The
  statement is *skipped* (reported as SKIPPED with the triggering error as
  the reason) for ``probe_interval`` scans.
* **half-open** — after the probe interval the statement runs once as a
  probe.  Success closes the breaker (full re-admission, counters cleared);
  another error re-opens it for a fresh probe interval.

The breaker itself lives in the *service* process.  What travels into
worker threads/forks is a :class:`SpecGuard` — a plain picklable snapshot
of the currently open breakers that the evaluator consults per statement
(see ``Evaluator.execute_guarded``).  Errors observed by workers travel
back inside each unit report's health block, and :meth:`SpecCircuitBreaker.observe`
digests them after the merge.  This keeps the state machine single-writer
and fork-safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cpl import ast
from ..cpl.printer import print_statement
from ..observability import get_logger, get_metrics

__all__ = ["statement_key", "SpecGuard", "SpecCircuitBreaker"]

_log = get_logger("resilience.breaker")


def statement_key(statement: ast.Statement) -> str:
    """Stable identity of a top-level statement across scans.

    Line number plus the first rendered line of the statement: stable as
    long as the spec file doesn't change (edits that move the statement
    naturally reset its breaker, which is the desired "operator touched the
    spec" re-admission path).
    """
    line = getattr(statement, "line", 0) or 0
    try:
        text = print_statement(statement).splitlines()[0].strip()
    except Exception:  # printer gaps must never break fault handling
        text = type(statement).__name__
    return f"{line}:{text}"


@dataclass(frozen=True)
class SpecGuard:
    """Picklable per-scan snapshot of open breakers, consumed by evaluators.

    Duck-typed interface used by ``Evaluator.execute_guarded``:
    :meth:`skip_reason` / :meth:`skip_record` / :meth:`error_record`.
    An empty guard (no quarantined statements) still enables guarded
    execution — statements that raise are captured as health-block spec
    errors instead of aborting the run.
    """

    #: statement key → human-readable reason it is quarantined this scan
    quarantined: dict = field(default_factory=dict)

    def skip_reason(self, statement: ast.Statement):
        return self.quarantined.get(statement_key(statement))

    def skip_record(self, statement: ast.Statement, reason: str) -> dict:
        return {
            "spec": statement_key(statement),
            "outcome": "SKIPPED",
            "reason": reason,
        }

    def error_record(self, statement: ast.Statement, exc: Exception) -> dict:
        return {
            "spec": statement_key(statement),
            "error": f"{type(exc).__name__}: {exc}",
        }


@dataclass
class _BreakerState:
    consecutive_failures: int = 0
    state: str = "closed"      # closed | open | half_open
    opened_at_scan: int = 0
    last_error: str = ""
    trips: int = 0


class SpecCircuitBreaker:
    """Scan-clocked breaker registry for one validation service."""

    def __init__(self, threshold: int = 3, probe_interval: int = 2):
        self.threshold = max(1, threshold)
        self.probe_interval = max(1, probe_interval)
        self._states: dict[str, _BreakerState] = {}
        self._scan = 0

    # ------------------------------------------------------------------

    def begin_scan(self) -> SpecGuard:
        """Advance the scan clock; snapshot open breakers into a guard."""
        self._scan += 1
        quarantined: dict[str, str] = {}
        for key, state in self._states.items():
            if state.state != "open":
                continue
            if self._scan - state.opened_at_scan >= self.probe_interval:
                state.state = "half_open"  # runs this scan as a probe
            else:
                due = state.opened_at_scan + self.probe_interval
                quarantined[key] = (
                    f"circuit open after {state.consecutive_failures} "
                    f"consecutive error(s) ({state.last_error}); "
                    f"probe at scan {due}"
                )
        return SpecGuard(quarantined=quarantined)

    def observe(self, report) -> None:
        """Digest one merged report's health block; advance state machines.

        ``report`` is the :class:`~repro.core.report.ValidationReport` the
        guard from :meth:`begin_scan` ran under.
        """
        errored: dict[str, str] = {}
        for record in report.health.spec_errors:
            errored[record["spec"]] = record["error"]
        skipped = {record["spec"] for record in report.health.quarantined_specs}
        for key, error in errored.items():
            state = self._states.setdefault(key, _BreakerState())
            state.consecutive_failures += 1
            state.last_error = error
            tripping = (
                state.state == "half_open"  # failed probe → straight back open
                or state.consecutive_failures >= self.threshold
            )
            if tripping:
                if state.state != "open":
                    state.trips += 1
                    get_metrics().counter(
                        "confvalley_breaker_trips_total",
                        "Spec circuit-breaker trips (closed/half-open to open).",
                    ).inc()
                    _log.warning(
                        "spec breaker tripped",
                        extra={
                            "spec": key,
                            "failures": state.consecutive_failures,
                            "error": error,
                        },
                    )
                state.state = "open"
                state.opened_at_scan = self._scan
        # every tracked statement that neither raised nor was skipped ran
        # cleanly (or left the program): close its breaker and forget it —
        # automatic re-admission
        for key in list(self._states):
            if key not in errored and key not in skipped:
                del self._states[key]
        get_metrics().gauge(
            "confvalley_breakers_open",
            "Spec circuit breakers currently open or half-open.",
        ).set(self.open_count())

    # ------------------------------------------------------------------

    def probe_due(self) -> bool:
        """True when the *next* scan would half-open at least one breaker —
        the service uses this to force a revalidation even when no watched
        file changed, so recovery probes actually happen."""
        return any(
            state.state == "open"
            and (self._scan + 1) - state.opened_at_scan >= self.probe_interval
            for state in self._states.values()
        )

    def open_count(self) -> int:
        return sum(1 for s in self._states.values() if s.state != "closed")

    def snapshot(self) -> list[dict]:
        """Current breaker registry, for reports/operators."""
        return [
            {
                "spec": key,
                "state": state.state,
                "consecutive_failures": state.consecutive_failures,
                "trips": state.trips,
                "last_error": state.last_error,
            }
            for key, state in sorted(self._states.items())
        ]
