"""Source fault isolation: quarantine broken inputs, keep validating.

In strict mode, one truncated INI file among fifty watched sources aborts
the entire scan.  The :class:`SourceSupervisor` turns per-source load
failures into structured :class:`SourceFailure` records and a quarantine
list so the scan validates the other forty-nine:

* a failing source is **quarantined** and retried on an exponential
  backoff schedule counted in *scans* (the service's deterministic clock):
  1, 2, 4, … scans between attempts, capped by the policy;
* after ``max_source_retries`` scheduled retries the source is
  **exhausted** — it is re-probed only when its mtime changes, i.e. when
  someone actually edited the file ("automatic re-admission once the file
  parses again");
* a successful load at any point clears the source's state entirely.

The supervisor is pure bookkeeping — the service performs the actual load
attempt and feeds outcomes in via :meth:`record_failure` /
:meth:`record_success`.  Keyed by source path, so two SourceSpecs watching
the same file share fate (they share the same broken bytes anyway).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..observability import get_logger, get_metrics
from .policy import ResiliencePolicy

__all__ = ["SourceFailure", "SourceSupervisor"]

_log = get_logger("resilience.sources")


@dataclass(frozen=True)
class SourceFailure:
    """One failed attempt to load a watched configuration source."""

    path: str
    format_name: str
    scope: str
    kind: str        # "parse" | "io" | "missing"
    error: str
    scan: int        # supervisor scan number of the attempt
    failures: int    # consecutive failures including this one

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "format": self.format_name,
            "scope": self.scope,
            "kind": self.kind,
            "error": self.error,
            "scan": self.scan,
            "failures": self.failures,
        }


@dataclass
class _SourceState:
    failures: int = 0
    first_failed_scan: int = 0
    next_probe_scan: int = 0
    exhausted: bool = False
    mtime_at_failure: Optional[float] = None
    last: Optional[SourceFailure] = None


class SourceSupervisor:
    """Tracks per-source failure state across a service's scans."""

    def __init__(self, policy: Optional[ResiliencePolicy] = None):
        self.policy = policy if policy is not None else ResiliencePolicy()
        self._states: dict[str, _SourceState] = {}
        self._scan = 0

    # ------------------------------------------------------------------

    def begin_scan(self) -> int:
        self._scan += 1
        return self._scan

    def should_attempt(self, path: str, mtime: Optional[float] = None) -> bool:
        """Should this scan try to load the source at ``path``?

        Healthy sources: always.  Quarantined sources: only when their
        backoff delay has elapsed — or, once retries are exhausted, when
        ``mtime`` differs from the one recorded at failure time.
        """
        state = self._states.get(path)
        if state is None:
            return True
        if state.exhausted:
            return mtime is not None and mtime != state.mtime_at_failure
        if mtime is not None and mtime != state.mtime_at_failure:
            return True  # the file was edited: probe now, skip the backoff
        return self._scan >= state.next_probe_scan

    def record_failure(
        self,
        path: str,
        format_name: str,
        scope: str,
        kind: str,
        error: str,
        mtime: Optional[float] = None,
    ) -> SourceFailure:
        """Register a failed load attempt; schedules the next probe."""
        metrics = get_metrics()
        metrics.counter(
            "confvalley_source_failures_total",
            "Source load failures observed by the supervisor, by kind.",
        ).inc(kind=kind)
        state = self._states.setdefault(path, _SourceState())
        state.failures += 1
        if state.failures == 1:
            state.first_failed_scan = self._scan
            metrics.counter(
                "confvalley_source_quarantine_admits_total",
                "Sources admitted to quarantine (first failure).",
            ).inc()
        state.mtime_at_failure = mtime
        delay = min(
            self.policy.source_backoff_base * 2 ** (state.failures - 1),
            self.policy.source_backoff_cap,
        )
        state.next_probe_scan = self._scan + delay
        # the first failure plus max_source_retries scheduled re-attempts;
        # beyond that, only an mtime change re-admits the source
        if state.failures > self.policy.max_source_retries:
            state.exhausted = True
        failure = SourceFailure(
            path=path,
            format_name=format_name,
            scope=scope,
            kind=kind,
            error=error,
            scan=self._scan,
            failures=state.failures,
        )
        state.last = failure
        metrics.gauge(
            "confvalley_sources_quarantined",
            "Sources currently in quarantine.",
        ).set(len(self._states))
        _log.warning(
            "source quarantined",
            extra={
                "path": path,
                "format": format_name,
                "kind": kind,
                "failures": state.failures,
                "exhausted": state.exhausted,
                "error": error,
            },
        )
        return failure

    def record_success(self, path: str) -> bool:
        """Source loaded cleanly: re-admit it.  True when it was quarantined."""
        evicted = self._states.pop(path, None) is not None
        if evicted:
            metrics = get_metrics()
            metrics.counter(
                "confvalley_source_quarantine_evictions_total",
                "Sources evicted from quarantine by a clean load.",
            ).inc()
            metrics.gauge(
                "confvalley_sources_quarantined",
                "Sources currently in quarantine.",
            ).set(len(self._states))
            _log.info("source re-admitted", extra={"path": path})
        return evicted

    # ------------------------------------------------------------------

    def is_quarantined(self, path: str) -> bool:
        return path in self._states

    def quarantined(self) -> list[dict]:
        """Current quarantine list for health blocks / operators."""
        records = []
        for path, state in sorted(self._states.items()):
            last = state.last
            records.append(
                {
                    "path": path,
                    "format": last.format_name if last else "",
                    "kind": last.kind if last else "",
                    "error": last.error if last else "",
                    "failures": state.failures,
                    "exhausted": state.exhausted,
                    "next_probe_scan": (
                        None if state.exhausted else state.next_probe_scan
                    ),
                }
            )
        return records

    def retry_due(self) -> bool:
        """True when the *next* scan should re-probe a quarantined source —
        lets the service force a scan even when no watched file changed."""
        return any(
            not state.exhausted and (self._scan + 1) >= state.next_probe_scan
            for state in self._states.values()
        )

    @property
    def retries_spent(self) -> int:
        """Failed attempts beyond each source's first (i.e. retry cost)."""
        return sum(max(0, state.failures - 1) for state in self._states.values())
