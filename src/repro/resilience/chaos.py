"""Deterministic fault injection for resilience tests and benchmarks.

:class:`FaultyRuntimeProvider` is a :class:`~repro.runtime.StaticRuntime`
whose :meth:`read_bytes` consults a :class:`FaultPlan` before (and after)
touching the filesystem.  Because all source and spec-file I/O in the
validation pipeline routes through ``RuntimeProvider.read_bytes``, this is
a complete chaos harness: every way a configuration file can go bad at
read time — vanished, unreadable, truncated mid-write, corrupted — can be
injected without touching the files on disk.

Determinism: the plan draws from a seeded :class:`random.Random`, one draw
per read, in read order.  The service reads sources in a fixed order every
scan, so two services driven by plans with the same seed and rates see the
*identical* fault sequence — the chaos tests assert exactly that (same
seed → same per-scan health status sequence).
"""

from __future__ import annotations

import random
from typing import Optional

from ..runtime import StaticRuntime

__all__ = ["FaultPlan", "FaultyRuntimeProvider"]

#: fault kinds in the order their probability mass is stacked per draw
FAULT_KINDS = ("io_error", "not_found", "truncate", "garbage")


class FaultPlan:
    """Seeded schedule of read faults.

    ``*_rate`` values are independent probability masses per read (their
    sum must be ≤ 1; the remainder is a clean read).  ``only_paths``
    restricts injection to specific files — e.g. fault the configuration
    sources but never the spec file.
    """

    def __init__(
        self,
        seed: int = 0,
        io_error_rate: float = 0.0,
        not_found_rate: float = 0.0,
        truncate_rate: float = 0.0,
        garbage_rate: float = 0.0,
        only_paths: Optional[set] = None,
    ):
        rates = (io_error_rate, not_found_rate, truncate_rate, garbage_rate)
        if any(rate < 0 for rate in rates) or sum(rates) > 1.0:
            raise ValueError("fault rates must be ≥ 0 and sum to ≤ 1")
        self.seed = seed
        self.rates = dict(zip(FAULT_KINDS, rates))
        self.only_paths = set(only_paths) if only_paths is not None else None
        self._rng = random.Random(seed)
        self.reads = 0
        #: every injected fault, in order: {"read", "path", "kind"}
        self.injected: list[dict] = []

    def decide(self, path: str) -> Optional[str]:
        """One draw: the fault kind to inject for this read, or None.

        Draws even for paths excluded by ``only_paths`` so the random
        sequence — and therefore determinism — doesn't depend on which
        paths happen to be exercised between faults.
        """
        self.reads += 1
        roll = self._rng.random()
        if self.only_paths is not None and path not in self.only_paths:
            return None
        cumulative = 0.0
        for kind in FAULT_KINDS:
            cumulative += self.rates[kind]
            if roll < cumulative:
                self.injected.append(
                    {"read": self.reads, "path": path, "kind": kind}
                )
                return kind
        return None


class FaultyRuntimeProvider(StaticRuntime):
    """StaticRuntime whose file reads fail according to a :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan, **kwargs):
        super().__init__(**kwargs)
        self.plan = plan

    def read_bytes(self, path: str) -> bytes:
        fault = self.plan.decide(path)
        if fault == "io_error":
            raise OSError(f"injected I/O error reading {path}")
        if fault == "not_found":
            raise FileNotFoundError(f"injected missing file: {path}")
        raw = super().read_bytes(path)
        if fault == "truncate":
            return raw[: max(1, len(raw) // 2)]
        if fault == "garbage":
            # invalid UTF-8 prefix: defeats decoding in every text driver
            return b"\xff\xfe\x00\x9d" + raw
        return raw
