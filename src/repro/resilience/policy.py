"""Resilience configuration: one frozen knob-set threaded through the stack.

A :class:`ResiliencePolicy` is handed to :class:`~repro.service.ValidationService`
(and surfaced as ``confvalley service --resilient`` / ``--max-source-retries``
/ ``--shard-timeout`` / ``--quarantine-threshold``).  Passing one switches
the service from *strict* mode — any source/spec failure raises, PR-1
behavior — into *supervised* mode, where failures are isolated, quarantined
and reported in the health block instead of taking the scan down.

All retry/backoff scheduling is counted in **scans**, not wall-clock time:
the service is poll-driven, so scan counts are the deterministic clock the
tests (and operators reading the health block) can reason about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ResiliencePolicy"]


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs for source quarantine, spec breakers and shard supervision."""

    #: backoff-scheduled retry attempts for a failing source before it is
    #: hard-quarantined (after that, it is only re-probed when its mtime
    #: changes — "the file parses again" is discovered on the next edit)
    max_source_retries: int = 3
    #: scans to wait before the first retry of a failed source; doubles per
    #: consecutive failure (1, 2, 4, …) up to ``source_backoff_cap``
    source_backoff_base: int = 1
    source_backoff_cap: int = 8
    #: consecutive scans a statement must raise before its breaker trips
    quarantine_threshold: int = 3
    #: scans a tripped breaker stays open before a half-open probe re-runs
    #: the statement (success closes the breaker, failure re-opens it)
    probe_interval: int = 2
    #: per-shard wall-clock wait budget in seconds (None = no shard
    #: supervision; see repro.parallel.supervision for the fallback ladder)
    shard_timeout: Optional[float] = None
    #: same-executor retries before a failed shard is re-run serially
    shard_retries: int = 1
