"""Compiled-specification cache.

The continuous service (and any steady-state caller) revalidates the same
specification text over and over while only the *data* changes; parsing and
the Figure-4 compiler rewrites are pure functions of ``(spec text,
compiler options)``, so recompiling every scan is pure waste.  This cache
memoizes the compiled statement tuple keyed by

    ``(sha256(spec text), compiler-options fingerprint)``

Invalidation semantics (documented in ``docs/PERFORMANCE.md``):

* any change to the spec *text* changes the hash → miss, recompile;
* any change to the compiler options (``CompilerOptions.fingerprint()``,
  including turning optimization off) → different key → miss;
* configuration *data* changes never invalidate — compiled statements do
  not depend on the store;
* programs containing ``load``/``include`` commands are **never cached**:
  their compilation has side effects (loading sources, reading other
  files) that must replay on every run.  They count in ``stats.uncacheable``.

Entries are immutable tuples of frozen AST dataclasses, safe to share
between sessions and threads; an LRU bound (``max_entries``) keeps the
cache from growing without limit under spec churn.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional

from ..observability import get_metrics

__all__ = ["SpecCache", "SpecCacheStats"]


def _lookup_counter():
    return get_metrics().counter(
        "confvalley_spec_cache_lookups_total",
        "Compiled-spec cache lookups, by result.",
    )


@dataclass
class SpecCacheStats:
    """Lightweight counters surfaced in reports and service status."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    uncacheable: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "uncacheable": self.uncacheable,
        }


class SpecCache:
    """LRU cache of compiled (parsed + optimized) specification programs."""

    def __init__(self, max_entries: int = 64):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.stats = SpecCacheStats()
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._aux: dict[tuple, dict[str, object]] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _key(text: str, options_fingerprint: Hashable) -> tuple:
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        return (digest, options_fingerprint)

    def lookup(self, text: str, options_fingerprint: Hashable) -> Optional[tuple]:
        """The compiled statement tuple, or ``None`` on a miss."""
        key = self._key(text, options_fingerprint)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                _lookup_counter().inc(result="miss")
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            _lookup_counter().inc(result="hit")
            return entry

    def store(self, text: str, options_fingerprint: Hashable, statements) -> None:
        key = self._key(text, options_fingerprint)
        with self._lock:
            self._entries[key] = tuple(statements)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                evicted, __ = self._entries.popitem(last=False)
                self._aux.pop(evicted, None)
                self.stats.evictions += 1
                get_metrics().counter(
                    "confvalley_spec_cache_evictions_total",
                    "Compiled-spec cache LRU evictions.",
                ).inc()

    def attachment(
        self, text: str, options_fingerprint: Hashable, name: str, build
    ):
        """A derived artifact cached alongside the compiled entry.

        ``build`` is called with the compiled statement tuple and its
        result memoized under ``name`` for as long as the compiled entry
        lives — attachments are evicted and cleared together with their
        entry, so a derived index (e.g. the delta-validation
        :class:`~repro.core.incremental.DependencyIndex`) can never
        outlive the statements it was built from.  When the entry is not
        cached (miss or uncacheable program), returns ``None`` — the
        caller should compile first and retry, or build uncached.
        """
        key = self._key(text, options_fingerprint)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            slots = self._aux.setdefault(key, {})
            if name not in slots:
                slots[name] = build(entry)
            return slots[name]

    def note_uncacheable(self) -> None:
        """Record a compile that could not be cached (load/include)."""
        with self._lock:
            self.stats.uncacheable += 1
            get_metrics().counter(
                "confvalley_spec_cache_uncacheable_total",
                "Compiles skipped by the cache (load/include side effects).",
            ).inc()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._aux.clear()

    def __len__(self) -> int:
        return len(self._entries)
