"""Parallel sharded validation (paper §7's "embarrassingly parallel" note).

CPL specifications are side-effect free, so a compiled program can be
partitioned by compartment/scope into independent shards and evaluated
concurrently — with the guarantee that the merged report is identical to
what serial evaluation produces.  The package also houses the compiled-spec
cache that lets steady-state revalidation skip recompilation entirely.

Public surface:

* :class:`ParallelValidator` — shard, execute, merge deterministically
* :func:`partition_statements` / :class:`Shard` — the compartment/scope
  partitioner
* :class:`SerialExecutor` / :class:`ThreadShardExecutor` /
  :class:`ProcessShardExecutor` / :func:`choose_executor` — pluggable
  executors and the workload-size selection heuristic
* :class:`SpecCache` — compiled-spec memoization keyed by
  (spec text hash, compiler options)
* :func:`run_supervised` / :class:`ShardFailure` — per-shard
  timeout/crash supervision with the retry → serial → mark-failed
  fallback ladder (used via ``ParallelValidator(shard_timeout=…)``)

Most callers use it indirectly through
``ValidationSession(executor="auto")`` or ``ValidationService``;
see ``docs/PERFORMANCE.md``.
"""

from .cache import SpecCache, SpecCacheStats
from .engine import ParallelValidator, ShardResult, WorkerState, evaluate_shard
from .executors import (
    PROCESS_CUTOFF,
    SERIAL_CUTOFF,
    ProcessShardExecutor,
    SerialExecutor,
    ThreadShardExecutor,
    choose_executor,
    resolve_executor,
)
from .shards import Shard, Unit, is_parallel_safe, partition_statements, scope_key
from .supervision import ShardFailure, run_supervised

__all__ = [
    "ParallelValidator",
    "WorkerState",
    "ShardResult",
    "evaluate_shard",
    "ShardFailure",
    "run_supervised",
    "SpecCache",
    "SpecCacheStats",
    "SerialExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "choose_executor",
    "resolve_executor",
    "SERIAL_CUTOFF",
    "PROCESS_CUTOFF",
    "Shard",
    "Unit",
    "partition_statements",
    "scope_key",
    "is_parallel_safe",
]
