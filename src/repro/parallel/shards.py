"""Sharding compiled CPL programs into independent work units (paper §7).

CPL specifications are side-effect free and compartments/scopes partition
the configuration space, so validation is embarrassingly parallel — the
paper demonstrates it crudely by "splitting the specifications into 10
partitions and running 10 validation jobs in parallel" (Table 8).  This
module does the splitting systematically:

* every *top-level statement* of a compiled program is an atomic **unit**
  tagged with its original position, so per-unit reports can later be
  merged back into exactly the order serial evaluation would have produced
  (see :mod:`repro.parallel.engine`);
* units are grouped by **scope key** — compartment name, namespace path, or
  the root segment of the domain notation — so units touching the same
  scope land in the same shard and share that shard's compartment-discovery
  cache;
* groups are packed into at most ``max_shards`` shards with a deterministic
  greedy bin-packing (heaviest group first, lightest shard wins, ties by
  shard number), so the same program always shards the same way.

``let`` commands are *not* units: a macro definition must be visible to
every later statement regardless of which shard evaluates it, so lets are
broadcast to all shards and replayed in original order before any unit
with a higher original index runs (:func:`repro.parallel.engine.evaluate_shard`).

Nested ``let`` commands (inside a namespace/compartment block) would leak
macros across units in serial evaluation; :func:`is_parallel_safe` detects
them so callers can fall back to serial evaluation rather than silently
diverge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..cpl import ast

__all__ = [
    "Unit",
    "Shard",
    "partition_statements",
    "select_units",
    "scope_key",
    "is_parallel_safe",
]


@dataclass(frozen=True)
class Unit:
    """One top-level statement plus its original program position."""

    index: int
    statement: ast.Statement


@dataclass(frozen=True)
class Shard:
    """An independently evaluable slice of a compiled program."""

    label: str
    units: tuple[Unit, ...]  # ascending original index

    @property
    def weight(self) -> int:
        return len(self.units)


# ---------------------------------------------------------------------------
# Scope keys
# ---------------------------------------------------------------------------


def _first_notation(node) -> Optional[str]:
    """The first configuration notation mentioned in an AST subtree."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.DomainRef):
            return current.notation
        if isinstance(current, (list, tuple)):
            stack.extend(reversed(current))
            continue
        if hasattr(current, "__dataclass_fields__"):
            stack.extend(
                reversed(
                    [getattr(current, name) for name in current.__dataclass_fields__]
                )
            )
    return None


def _notation_root(notation: str) -> str:
    head = notation.split(".", 1)[0]
    return head.split("::", 1)[0].lstrip("$")


def scope_key(statement: ast.Statement) -> str:
    """The partition key of one top-level statement.

    Statements sharing a key always land in the same shard, which keeps the
    per-shard compartment-instance cache hot (compartment discovery walks
    the whole store — see ``Evaluator.scope_instances``).
    """
    if isinstance(statement, ast.CompartmentBlock):
        return f"compartment:{statement.name}"
    if isinstance(statement, ast.NamespaceBlock):
        return "namespace:" + ".".join(statement.names)
    if isinstance(statement, ast.SpecStatement):
        domain = statement.domain
        if isinstance(domain, ast.CompartmentDomain):
            return f"compartment:{domain.compartment}"
        notation = _first_notation(domain)
        if notation:
            return f"class:{_notation_root(notation)}"
        return "misc"
    if isinstance(statement, ast.GetCmd):
        notation = _first_notation(statement.domain)
        return f"class:{_notation_root(notation)}" if notation else "misc"
    if isinstance(statement, ast.IfStatement):
        notation = _first_notation(statement.condition)
        return f"class:{_notation_root(notation)}" if notation else "misc"
    return "misc"


# ---------------------------------------------------------------------------
# Parallel-safety gate
# ---------------------------------------------------------------------------


def _contains_let(statements: Sequence[ast.Statement]) -> bool:
    for statement in statements:
        if isinstance(statement, ast.LetCmd):
            return True
        if isinstance(statement, (ast.NamespaceBlock, ast.CompartmentBlock)):
            if _contains_let(statement.body):
                return True
        elif isinstance(statement, ast.IfStatement):
            if _contains_let(statement.then) or _contains_let(statement.otherwise):
                return True
    return False


def is_parallel_safe(statements: Sequence[ast.Statement], policy=None) -> bool:
    """True when sharded evaluation is provably equivalent to serial.

    Three situations force a serial fallback:

    * ``stop_on_first_violation`` — "stop the whole run" is inherently
      ordered across statements;
    * statement priorities — the policy reorders the top-level statement
      list, and per-unit merging restores *original* order;
    * an ``on_violation`` callback — callers may rely on serial callback
      order (and callbacks may not be picklable for process executors);
    * a ``let`` nested inside a block — in serial evaluation the macro
      leaks to every later statement, which sharding cannot reproduce.
    """
    if policy is not None:
        if policy.stop_on_first_violation or policy.priorities or policy.on_violation:
            return False
    for statement in statements:
        if isinstance(statement, ast.LetCmd):
            continue  # top-level lets are broadcast, see partition_statements
        if _contains_let([statement]):
            return False
    return True


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------


def select_units(
    statements: Sequence[ast.Statement],
    indices: Optional[set] = None,
) -> tuple[tuple[Unit, ...], tuple[Unit, ...]]:
    """Split a compiled program into ``(lets, units)`` for delta evaluation.

    ``lets`` are every top-level macro definition in original order —
    exactly as :func:`partition_statements` broadcasts them — and ``units``
    are the non-``let`` statements, restricted to positions in ``indices``
    when given (``None`` selects everything).  Delta validation
    (:class:`repro.service.DeltaScanner`) evaluates the selected units as a
    single shard via :func:`repro.parallel.engine.evaluate_shard` and
    splices the per-unit reports over the retained ones, so macro
    visibility must match what any full evaluation would have seen — which
    is why *all* lets are returned even when only a few units are selected.
    """
    lets: list[Unit] = []
    units: list[Unit] = []
    for index, statement in enumerate(statements):
        if isinstance(statement, ast.LetCmd):
            lets.append(Unit(index, statement))
        elif indices is None or index in indices:
            units.append(Unit(index, statement))
    return tuple(lets), tuple(units)


def partition_statements(
    statements: Sequence[ast.Statement], max_shards: int
) -> tuple[tuple[Unit, ...], list[Shard]]:
    """Split a compiled program into ``(lets, shards)``.

    ``lets`` are the top-level macro definitions in original order (each
    shard replays the ones preceding a unit before evaluating it).  Shards
    group units by :func:`scope_key` and never exceed ``max_shards``.
    """
    lets: list[Unit] = []
    groups: dict[str, list[Unit]] = {}
    for index, statement in enumerate(statements):
        if isinstance(statement, ast.LetCmd):
            lets.append(Unit(index, statement))
            continue
        groups.setdefault(scope_key(statement), []).append(Unit(index, statement))
    if not groups:
        return tuple(lets), []
    shard_count = max(1, min(max_shards, len(groups)))
    # deterministic greedy bin-packing: heaviest group first, lightest bin
    ordered_groups = sorted(groups.items(), key=lambda kv: (-len(kv[1]), kv[0]))
    bins: list[list[Unit]] = [[] for __ in range(shard_count)]
    bin_labels: list[list[str]] = [[] for __ in range(shard_count)]
    for key, units in ordered_groups:
        target = min(range(shard_count), key=lambda i: (len(bins[i]), i))
        bins[target].extend(units)
        bin_labels[target].append(key)
    shards = []
    for number, (units, labels) in enumerate(zip(bins, bin_labels)):
        if not units:
            continue
        units.sort(key=lambda unit: unit.index)
        label = labels[0] if len(labels) == 1 else f"shard-{number}({len(labels)} scopes)"
        shards.append(Shard(label, tuple(units)))
    return tuple(lets), shards
