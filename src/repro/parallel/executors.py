"""Pluggable shard executors: serial, thread pool, process pool.

All three run the same pure function (:func:`repro.parallel.engine.evaluate_shard`)
over a list of :class:`~repro.parallel.shards.Shard` and return per-shard
results *in shard order*, so the choice of executor can never change the
merged report — only the wall clock.

Selection heuristic (:func:`choose_executor`, tunable via the module
constants and documented in ``docs/PERFORMANCE.md``):

* **serial** when there is nothing to parallelize (one shard, one core) or
  the estimated work is below ``SERIAL_CUTOFF`` — pool startup would cost
  more than it saves;
* **process** for large workloads on platforms with ``fork`` — CPython's
  GIL serializes pure-Python evaluation, so real speedup needs separate
  interpreters; ``fork`` inherits the loaded store without pickling it,
  and only the (small) per-unit reports travel back;
* **thread** as the middle tier and the fallback where ``fork`` is
  unavailable — threads start ~100× faster than processes and still
  overlap the regex/IO portions of evaluation that release the GIL.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import ShardResult, WorkerState
    from .shards import Shard

__all__ = [
    "SerialExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "choose_executor",
    "resolve_executor",
    "SERIAL_CUTOFF",
    "PROCESS_CUTOFF",
]

#: below this many estimated instance checks, pool startup dominates
SERIAL_CUTOFF = 20_000
#: above this many estimated instance checks, fork+merge overhead amortizes
PROCESS_CUTOFF = 200_000


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


class SerialExecutor:
    """Evaluate shards one after another in the calling thread."""

    name = "serial"

    def run(
        self, state: "WorkerState", shards: Sequence["Shard"]
    ) -> list["ShardResult"]:
        from .engine import evaluate_shard

        return [evaluate_shard(state, shard) for shard in shards]


class ThreadShardExecutor:
    """Evaluate shards on a thread pool.

    Shard evaluators never mutate the shared store (queries are read-only
    and the store's query counter is the only write — a benign counter),
    so shards can share one store across threads.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers or _default_workers()

    def run(
        self, state: "WorkerState", shards: Sequence["Shard"]
    ) -> list["ShardResult"]:
        from .engine import evaluate_shard

        workers = min(self.max_workers, max(1, len(shards)))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(lambda shard: evaluate_shard(state, shard), shards))


# ---------------------------------------------------------------------------
# Process executor (fork)
# ---------------------------------------------------------------------------

#: worker payload published immediately before fork; children inherit it
#: through copy-on-write memory, so the store is never pickled
_FORK_PAYLOAD: Optional[tuple] = None


def _evaluate_forked(shard_index: int):
    from .engine import evaluate_shard

    state, shards = _FORK_PAYLOAD  # type: ignore[misc]
    return evaluate_shard(state, shards[shard_index])


class ProcessShardExecutor:
    """Evaluate shards on a fork-based process pool.

    Each worker inherits the parent's store through ``fork`` (no pickling
    of configuration data); only the per-unit :class:`ValidationReport`
    objects are pickled on the way back.  Unavailable on platforms without
    the ``fork`` start method — use :func:`choose_executor`, which falls
    back to threads there.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers or _default_workers()

    @staticmethod
    def available() -> bool:
        return "fork" in multiprocessing.get_all_start_methods()

    def run(
        self, state: "WorkerState", shards: Sequence["Shard"]
    ) -> list["ShardResult"]:
        global _FORK_PAYLOAD
        if not self.available():
            raise RuntimeError("process executor requires the 'fork' start method")
        workers = min(self.max_workers, max(1, len(shards)))
        context = multiprocessing.get_context("fork")
        _FORK_PAYLOAD = (state, tuple(shards))
        try:
            with context.Pool(processes=workers) as pool:
                return pool.map(_evaluate_forked, range(len(shards)))
        finally:
            _FORK_PAYLOAD = None


ExecutorLike = Union[SerialExecutor, ThreadShardExecutor, ProcessShardExecutor]


def choose_executor(
    shard_count: int,
    estimated_work: int,
    cpu_count: Optional[int] = None,
    max_workers: Optional[int] = None,
) -> ExecutorLike:
    """Pick an executor from the workload-size heuristic.

    ``estimated_work`` is the number of statements × store instances — a
    proxy for instance checks.  The cutoffs are module constants so
    deployments can tune them.
    """
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    if shard_count < 2 or cpus < 2 or estimated_work < SERIAL_CUTOFF:
        return SerialExecutor()
    if estimated_work >= PROCESS_CUTOFF and ProcessShardExecutor.available():
        return ProcessShardExecutor(max_workers)
    return ThreadShardExecutor(max_workers)


def resolve_executor(
    executor: Union[str, ExecutorLike],
    shard_count: int,
    estimated_work: int,
    max_workers: Optional[int] = None,
) -> ExecutorLike:
    """Turn an executor name (``auto``/``serial``/``thread``/``process``)
    or a ready-made executor object into an executor instance."""
    if not isinstance(executor, str):
        return executor
    if executor == "auto":
        return choose_executor(shard_count, estimated_work, max_workers=max_workers)
    if executor == "serial":
        return SerialExecutor()
    if executor == "thread":
        return ThreadShardExecutor(max_workers)
    if executor == "process":
        if not ProcessShardExecutor.available():
            return ThreadShardExecutor(max_workers)
        return ProcessShardExecutor(max_workers)
    raise ValueError(
        f"unknown executor {executor!r} (expected auto/serial/thread/process)"
    )
