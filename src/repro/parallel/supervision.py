"""Shard supervision: wall-clock timeouts, crash detection, fallback ladder.

PR 1's executors assume workers are well behaved — a wedged thread or a
crashing fork worker takes the whole scan down with it.  This module wraps
shard execution in a supervisor so that can never happen:

* every shard gets a **wall-clock wait budget** (``timeout`` seconds from
  the moment the supervisor starts waiting on it — workers run concurrently,
  so in the steady state later shards have already finished by the time
  their wait begins);
* a shard that times out or crashes goes down a documented **fallback
  ladder**: (1) retry on the same executor, up to ``retries`` times;
  (2) re-run the shard serially in the supervising thread (no timeout —
  this rung assumes transient wedges such as pool contention); (3) mark the
  shard failed in the report's health block and keep going.

Because rung (2) re-evaluates the *same* units with the same deterministic
evaluator, a scan that recovered a hung shard serially produces a report
byte-identical to a fully serial run — asserted in ``tests/test_resilience.py``.

Abandoned workers: a timed-out *thread* cannot be killed and keeps running
detached (its result is discarded); a timed-out *process pool* is terminated
when the supervisor exits its pool context, so wedged fork workers die with
the scan.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from ..observability import get_logger, get_metrics
from .executors import (
    ExecutorLike,
    ProcessShardExecutor,
    SerialExecutor,
    ThreadShardExecutor,
)

_log = get_logger("parallel.supervision")

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import ShardResult, WorkerState
    from .shards import Shard

__all__ = ["ShardFailure", "run_supervised"]


@dataclass
class ShardFailure:
    """One shard's trip down the fallback ladder."""

    label: str
    kind: str        # "timeout" | "crash"
    error: str       # message of the triggering failure
    recovered: str   # "retry" | "serial" | "failed"
    attempts: int    # dispatch attempts before the outcome

    def to_dict(self) -> dict:
        return {
            "shard": self.label,
            "kind": self.kind,
            "error": self.error,
            "recovered": self.recovered,
            "attempts": self.attempts,
        }


def _serial_rerun(
    state: "WorkerState", shard: "Shard"
) -> Optional["ShardResult"]:
    """Ladder rung 2: evaluate the shard inline; None when even that fails."""
    from .engine import evaluate_shard

    try:
        return evaluate_shard(state, shard)
    except Exception:
        return None


def run_supervised(
    executor: ExecutorLike,
    state: "WorkerState",
    shards: Sequence["Shard"],
    timeout: float,
    retries: int = 1,
) -> tuple[list["ShardResult"], list[ShardFailure]]:
    """Evaluate ``shards`` on ``executor`` under per-shard supervision.

    Returns the recovered shard results (in shard order, failed shards
    omitted) and the list of :class:`ShardFailure` records describing every
    timeout/crash and which ladder rung resolved it.
    """
    if not shards:
        return [], []
    if isinstance(executor, SerialExecutor):
        results, failures = _serial_dispatch(state, shards, retries)
    elif isinstance(executor, ProcessShardExecutor):
        results, failures = _process_dispatch(executor, state, shards, timeout, retries)
    else:
        results, failures = _thread_dispatch(executor, state, shards, timeout, retries)
    if failures:
        metrics = get_metrics()
        for failure in failures:
            metrics.counter(
                "confvalley_shard_failures_total",
                "Shard timeouts/crashes, by kind and ladder outcome.",
            ).inc(kind=failure.kind, recovered=failure.recovered)
            retry_count = max(0, failure.attempts - 1)
            if retry_count:
                metrics.counter(
                    "confvalley_shard_retries_total",
                    "Shard dispatch retries spent by the fallback ladder.",
                ).inc(retry_count)
            _log.warning(
                "shard failure",
                extra={
                    "shard": failure.label,
                    "kind": failure.kind,
                    "recovered": failure.recovered,
                    "attempts": failure.attempts,
                    "error": failure.error,
                },
            )
    return results, failures


# ---------------------------------------------------------------------------
# Dispatch strategies
# ---------------------------------------------------------------------------


def _serial_dispatch(
    state: "WorkerState", shards: Sequence["Shard"], retries: int
) -> tuple[list["ShardResult"], list[ShardFailure]]:
    """Serial executor: the calling thread cannot time itself out, so
    supervision reduces to crash isolation + retry."""
    from .engine import evaluate_shard

    results: list["ShardResult"] = []
    failures: list[ShardFailure] = []
    for shard in shards:
        attempts = 0
        error = ""
        result = None
        while attempts <= retries:
            attempts += 1
            try:
                result = evaluate_shard(state, shard)
                break
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
        if result is not None:
            if attempts > 1:
                failures.append(
                    ShardFailure(shard.label, "crash", error, "retry", attempts)
                )
            results.append(result)
        else:
            failures.append(
                ShardFailure(shard.label, "crash", error, "failed", attempts)
            )
    return results, failures


def _thread_dispatch(
    executor: ExecutorLike,
    state: "WorkerState",
    shards: Sequence["Shard"],
    timeout: float,
    retries: int,
) -> tuple[list["ShardResult"], list[ShardFailure]]:
    """Thread executor (and any custom executor object): per-shard futures.

    Every shard is dispatched immediately on its own watchdog thread, so the
    per-shard wait budget measures execution, not queueing.  A custom
    executor is exercised one shard at a time (``executor.run(state,
    [shard])``) so its own failure modes stay observable to the supervisor.
    """
    from .engine import evaluate_shard

    def task(shard: "Shard") -> "ShardResult":
        if isinstance(executor, ThreadShardExecutor):
            return evaluate_shard(state, shard)
        return executor.run(state, [shard])[0]

    results_by_shard: dict[int, "ShardResult"] = {}
    failures: list[ShardFailure] = []
    pool = ThreadPoolExecutor(
        max_workers=len(shards), thread_name_prefix="confvalley-supervised"
    )
    try:
        futures = {index: pool.submit(task, shard) for index, shard in enumerate(shards)}
        for index, shard in enumerate(shards):
            attempts = 0
            future = futures[index]
            outcome: Optional["ShardResult"] = None
            kind = ""
            error = ""
            while attempts <= retries:
                attempts += 1
                try:
                    outcome = future.result(timeout=timeout)
                    break
                except FutureTimeout:
                    kind, error = "timeout", f"no result within {timeout:g}s"
                except Exception as exc:
                    kind, error = "crash", f"{type(exc).__name__}: {exc}"
                if attempts <= retries:
                    future = pool.submit(task, shard)
            if outcome is None:
                outcome = _serial_rerun(state, shard)
                recovered = "serial" if outcome is not None else "failed"
                failures.append(
                    ShardFailure(shard.label, kind, error, recovered, attempts)
                )
            elif attempts > 1:
                failures.append(
                    ShardFailure(shard.label, kind, error, "retry", attempts)
                )
            if outcome is not None:
                results_by_shard[index] = outcome
    finally:
        # do not block on abandoned (hung) workers; let them run detached
        pool.shutdown(wait=False)
    ordered = [results_by_shard[i] for i in sorted(results_by_shard)]
    return ordered, failures


def _process_dispatch(
    executor: ProcessShardExecutor,
    state: "WorkerState",
    shards: Sequence["Shard"],
    timeout: float,
    retries: int,
) -> tuple[list["ShardResult"], list[ShardFailure]]:
    """Fork pool with per-shard async results.

    Mirrors :class:`ProcessShardExecutor` (fork inheritance of the store via
    the module-level payload) but dispatches one async task per shard so
    each can be awaited — and given up on — independently.  Exiting the pool
    context terminates it, so wedged workers die with the scan instead of
    leaking.
    """
    from . import executors as _executors
    from .executors import _evaluate_forked

    if not executor.available():  # pragma: no cover - platform dependent
        return _thread_dispatch(
            ThreadShardExecutor(executor.max_workers), state, shards, timeout, retries
        )
    workers = min(executor.max_workers, max(1, len(shards)))
    context = multiprocessing.get_context("fork")
    results_by_shard: dict[int, "ShardResult"] = {}
    failures: list[ShardFailure] = []
    _executors._FORK_PAYLOAD = (state, tuple(shards))
    try:
        with context.Pool(processes=workers) as pool:
            pending = {
                index: pool.apply_async(_evaluate_forked, (index,))
                for index in range(len(shards))
            }
            for index, shard in enumerate(shards):
                attempts = 0
                handle = pending[index]
                outcome: Optional["ShardResult"] = None
                kind = ""
                error = ""
                while attempts <= retries:
                    attempts += 1
                    try:
                        outcome = handle.get(timeout=timeout)
                        break
                    except multiprocessing.TimeoutError:
                        kind, error = "timeout", f"no result within {timeout:g}s"
                    except Exception as exc:
                        kind, error = "crash", f"{type(exc).__name__}: {exc}"
                    if attempts <= retries:
                        handle = pool.apply_async(_evaluate_forked, (index,))
                if outcome is None:
                    outcome = _serial_rerun(state, shard)
                    recovered = "serial" if outcome is not None else "failed"
                    failures.append(
                        ShardFailure(shard.label, kind, error, recovered, attempts)
                    )
                elif attempts > 1:
                    failures.append(
                        ShardFailure(shard.label, kind, error, "retry", attempts)
                    )
                if outcome is not None:
                    results_by_shard[index] = outcome
    finally:
        _executors._FORK_PAYLOAD = None
    ordered = [results_by_shard[i] for i in sorted(results_by_shard)]
    return ordered, failures
