"""The sharded validation engine: evaluate shards, merge deterministically.

The contract that makes parallel validation trustworthy:

    **whatever the executor, the merged report is identical to the report
    serial evaluation would have produced** (timing counters aside).

It holds because shard evaluation is *per unit*: every top-level statement
gets its own :class:`~repro.core.report.ValidationReport`, and the merge
replays those unit reports in original statement order.  Serial evaluation
is exactly that — statements in order, each appending its violations — so
the merged violation/note sequences are byte-identical regardless of which
shard (or process) evaluated which unit.  A determinism test in
``tests/test_parallel.py`` asserts this on the synthetic Azure corpus, and
``ValidationReport.fingerprint()`` is the canonical comparison form.

Macro (``let``) handling: top-level lets are broadcast to every shard and
replayed in original order before any unit with a higher original index,
reproducing serial visibility.  Programs with *nested* lets (or policies
with cross-statement behavior) are rejected by
:func:`repro.parallel.shards.is_parallel_safe`, and
:class:`ParallelValidator` falls back to plain serial evaluation for them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..core.evaluator import Context, Evaluator
from ..core.policy import ValidationPolicy
from ..core.report import ValidationReport
from ..cpl import ast
from ..observability import get_metrics, get_tracer
from ..observability.analytics import merge_spec_profiles
from ..observability.tracing import NULL_TRACER, SpanContext, Tracer
from ..repository.store import ConfigStore
from ..runtime import RuntimeProvider, StaticRuntime
from ..runtime import clock as _clock
from .executors import ExecutorLike, resolve_executor
from .shards import Shard, Unit, is_parallel_safe, partition_statements

__all__ = ["ParallelValidator", "WorkerState", "ShardResult", "evaluate_shard"]

#: default shard-count cap: a few shards per core keeps the packing flexible
#: without drowning in per-shard overhead
_SHARDS_PER_CORE = 4


@dataclass
class WorkerState:
    """Everything a shard evaluator needs, picklable/fork-inheritable."""

    store: ConfigStore
    runtime: RuntimeProvider
    policy: ValidationPolicy
    macros: dict = field(default_factory=dict)
    lets: tuple[Unit, ...] = ()
    profile: bool = False
    #: per-statement attribution (repro.observability.analytics); the unit
    #: reports carry the recorded spec_profile back across the executor
    #: boundary and the merge folds them in original statement order
    analytics: bool = False
    #: optional statement guard (repro.resilience.SpecGuard) — plain data,
    #: so it pickles/forks; breaker decisions travel in, captured spec
    #: errors travel back inside each unit report's health block
    guard: object = None
    #: optional tracing context (repro.observability.SpanContext, picklable):
    #: when set, the worker roots a local tracer under this span and ships
    #: its finished spans back inside the ShardResult for merge adoption
    trace: Optional[SpanContext] = None


@dataclass
class ShardResult:
    """Per-unit reports of one shard plus its wall time."""

    label: str
    unit_reports: list[tuple[int, ValidationReport]]
    seconds: float
    #: finished worker-side spans (empty unless tracing was enabled)
    spans: list = field(default_factory=list)


def evaluate_shard(state: WorkerState, shard: Shard) -> ShardResult:
    """Evaluate one shard's units in order, one report per unit."""
    started = _clock.now()
    # worker-side tracer: rooted at the engine's span, span ids namespaced
    # by parent-span + shard label so merged trees never collide
    if state.trace is not None:
        tracer = Tracer(
            origin=state.trace,
            prefix=f"{state.trace.span_id}/{shard.label}:",
        )
    else:
        tracer = NULL_TRACER
    evaluator = Evaluator(
        state.store,
        state.runtime,
        state.policy,
        profile=state.profile,
        macros=state.macros,
        guard=state.guard,
        analytics=state.analytics,
    )
    let_position = 0
    unit_reports: list[tuple[int, ValidationReport]] = []
    with tracer.span(f"shard[{shard.label}]", units=len(shard.units)):
        for unit in shard.units:
            while (
                let_position < len(state.lets)
                and state.lets[let_position].index < unit.index
            ):
                let = state.lets[let_position].statement
                evaluator.macros[let.name] = let.predicate
                let_position += 1
            unit_report = ValidationReport()
            with tracer.span(
                "evaluate(stmt)",
                index=unit.index,
                stmt=type(unit.statement).__name__,
                line=getattr(unit.statement, "line", 0) or 0,
            ):
                if state.guard is not None:
                    evaluator.execute_guarded(unit.statement, Context(), unit_report)
                else:
                    evaluator.execute_statement(unit.statement, Context(), unit_report)
            unit_reports.append((unit.index, unit_report))
    return ShardResult(
        shard.label,
        unit_reports,
        _clock.now() - started,
        spans=tracer.finished_spans(),
    )


def _absorb(report: ValidationReport, unit_report: ValidationReport) -> None:
    """Fold one unit report into the merged report (order-preserving)."""
    report.violations.extend(unit_report.violations)
    report.notes.extend(unit_report.notes)
    report.specs_evaluated += unit_report.specs_evaluated
    report.specs_failed += unit_report.specs_failed
    report.specs_skipped += unit_report.specs_skipped
    report.suppressed += unit_report.suppressed
    report.instances_checked += unit_report.instances_checked
    for key, seconds in unit_report.spec_timings.items():
        report.spec_timings[key] = report.spec_timings.get(key, 0.0) + seconds
    merge_spec_profiles(report.spec_profile, unit_report.spec_profile)
    report.health.merge(unit_report.health)


class ParallelValidator:
    """Shard a compiled program and evaluate the shards concurrently.

    ``executor`` is ``"auto"`` (workload-size heuristic), ``"serial"``,
    ``"thread"``, ``"process"``, or a ready-made executor object.  Output
    is deterministic: identical to serial evaluation for every executor.
    """

    def __init__(
        self,
        store: ConfigStore,
        runtime: Optional[RuntimeProvider] = None,
        policy: Optional[ValidationPolicy] = None,
        executor: Union[str, ExecutorLike] = "auto",
        max_workers: Optional[int] = None,
        max_shards: Optional[int] = None,
        profile: bool = False,
        analytics: bool = False,
        shard_timeout: Optional[float] = None,
        shard_retries: int = 1,
        guard=None,
    ):
        self.store = store
        self.runtime = runtime if runtime is not None else StaticRuntime()
        self.policy = policy if policy is not None else ValidationPolicy()
        self.executor = executor
        self.max_workers = max_workers
        self.max_shards = max_shards
        self.profile = profile
        #: per-statement attribution (repro.observability.analytics)
        self.analytics = analytics
        #: per-shard wall-clock wait budget in seconds; setting it turns on
        #: shard supervision (repro.parallel.supervision) with the fallback
        #: ladder retry-same-executor → serial re-run → mark shard failed
        self.shard_timeout = shard_timeout
        self.shard_retries = shard_retries
        #: optional statement guard (repro.resilience.SpecGuard)
        self.guard = guard

    # ------------------------------------------------------------------

    def _serial_fallback(
        self,
        statements: Sequence[ast.Statement],
        report: ValidationReport,
        macros: Optional[dict],
    ) -> ValidationReport:
        evaluator = Evaluator(
            self.store,
            self.runtime,
            self.policy,
            profile=self.profile,
            macros=macros,
            guard=self.guard,
            analytics=self.analytics,
        )
        evaluator.run(list(statements), report)
        report.executor = "serial-fallback"
        report.shards_run += 1
        return report

    def validate_statements(
        self,
        statements: Sequence[ast.Statement],
        report: Optional[ValidationReport] = None,
        macros: Optional[dict] = None,
    ) -> ValidationReport:
        """Validate a *compiled* statement list (no load/include commands;
        the session resolves those, and the compiler has already run)."""
        if report is None:
            report = ValidationReport()
        tracer = get_tracer()
        metrics = get_metrics()
        started = _clock.now()
        with tracer.span("evaluate", mode="parallel") as span:
            if not is_parallel_safe(statements, self.policy):
                span.set(fallback="serial")
                result = self._serial_fallback(statements, report, macros)
                result.elapsed_seconds += _clock.now() - started
                return result
            max_shards = self.max_shards or _SHARDS_PER_CORE * (os.cpu_count() or 1)
            lets, shards = partition_statements(statements, max_shards)
            state = WorkerState(
                store=self.store,
                runtime=self.runtime,
                policy=self.policy,
                macros=dict(macros) if macros else {},
                lets=lets,
                profile=self.profile,
                analytics=self.analytics,
                guard=self.guard,
                trace=tracer.current_context() if tracer.enabled else None,
            )
            estimated_work = len(statements) * max(1, self.store.instance_count)
            executor = resolve_executor(
                self.executor, len(shards), estimated_work, self.max_workers
            )
            span.set(executor=executor.name, shards=len(shards))
            if self.shard_timeout is not None and shards:
                from .supervision import run_supervised

                results, shard_failures = run_supervised(
                    executor, state, shards, self.shard_timeout, self.shard_retries
                )
                for failure in shard_failures:
                    report.health.shard_failures.append(failure.to_dict())
                    report.health.retries += max(0, failure.attempts - 1)
                report.health.finalize()
            else:
                results = executor.run(state, shards) if shards else []
            merged: list[tuple[int, ValidationReport]] = []
            for result in results:
                merged.extend(result.unit_reports)
                # merge adoption: worker spans already point at this engine's
                # span via the shipped SpanContext, so adopting re-parents them
                if result.spans:
                    tracer.adopt(result.spans)
            merged.sort(key=lambda pair: pair[0])
            for __, unit_report in merged:
                _absorb(report, unit_report)
            report.shards_run += len(shards)
            report.executor = executor.name
            report.shard_timings.extend(
                (result.label, result.seconds) for result in results
            )
        elapsed = _clock.now() - started
        report.elapsed_seconds += elapsed
        if metrics.enabled:
            metrics.counter(
                "confvalley_validations_total",
                "Validation runs, by evaluation mode.",
            ).inc(mode="parallel")
            metrics.counter(
                "confvalley_shards_total",
                "Shards dispatched, by executor.",
            ).inc(len(shards), executor=executor.name)
            shard_seconds = metrics.histogram(
                "confvalley_shard_seconds",
                "Per-shard evaluation wall clock.",
            )
            for result in results:
                shard_seconds.observe(result.seconds, executor=executor.name)
            metrics.histogram(
                "confvalley_validation_seconds",
                "End-to-end evaluation wall clock per validation run.",
            ).observe(elapsed)
            if report.violations:
                metrics.counter(
                    "confvalley_violations_total",
                    "Violations found across all validation runs.",
                ).inc(len(report.violations))
        return report
