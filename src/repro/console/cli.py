"""Batch-mode command line interface (paper §5.1, scenario 3).

"The main usage scenario is a batch validation mode where ConfValley takes
an input specification file and (re)validates it continuously as
configuration specifications or data are updated."

Subcommands::

    confvalley validate SPEC.cpl [--source FMT:PATH[:SCOPE] …] [--partitions N]
    confvalley infer    [--source FMT:PATH[:SCOPE] …] [--out SPECS.cpl]
    confvalley console  [--source FMT:PATH[:SCOPE] …]
    confvalley service  SPEC.cpl [--http HOST:PORT] [--jobs] [--workers N] …
    confvalley worker   --journal DIR [--id NAME] [--lease-ttl S]
    confvalley stats    SNAPSHOT_OR_URL [--format text|json|prometheus]
    confvalley top      SNAPSHOT_OR_URL [--count N]
    confvalley submit   SPEC.cpl --url URL [--source …] [--wait]
    confvalley jobs     URL [--state S] [--tenant T]
    confvalley cancel   URL JOB_ID
    confvalley trace    URL_OR_DIR JOB_ID [--out FILE]

``stats`` and ``top`` read either a snapshot file written by
``service --metrics-file`` or a running service's operator endpoint
(``http://HOST:PORT``, see ``service --http``); ``coverage`` also accepts
a live URL in place of the spec file.  ``submit``/``jobs``/``cancel``
talk to the asynchronous job API of a service started with ``--jobs``.

Exit-code contract for CI (``gate``, ``submit --wait``): **0** the change
is admitted, **1** the verdict rejects it, **2** the validation itself
could not run (bad input, unreachable service, crash).
"""

from __future__ import annotations

import argparse
import statistics
import sys
from typing import Optional, Sequence

from ..core.policy import ValidationPolicy
from ..core.session import ValidationSession
from ..inference import InferenceEngine
from ..observability import get_logger
from .repl import Console

__all__ = ["main", "build_parser"]

_log = get_logger("cli")


def build_parser() -> argparse.ArgumentParser:
    from .. import __version__

    parser = argparse.ArgumentParser(
        prog="confvalley",
        description="ConfValley — systematic configuration validation",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser("validate", help="validate sources against a spec file")
    validate.add_argument("spec", help="CPL specification file")
    validate.add_argument(
        "--source",
        action="append",
        default=[],
        metavar="FMT:PATH[:SCOPE]",
        help="configuration source to load (repeatable)",
    )
    validate.add_argument(
        "--partitions", type=int, default=0,
        help="split specs into N partitions and report per-partition times",
    )
    validate.add_argument(
        "--executor", choices=("auto", "serial", "thread", "process"),
        default=None,
        help="evaluate via the sharded parallel engine (default: in-process "
             "serial; reports are identical either way)",
    )
    validate.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="per-shard wall-clock budget when an --executor is set; "
             "timed-out shards are retried, then re-run serially",
    )
    validate.add_argument(
        "--stop-on-first", action="store_true",
        help="stop at the first violation (validation policy)",
    )
    validate.add_argument(
        "--no-optimize", action="store_true", help="disable compiler rewrites"
    )
    validate.add_argument("--limit", type=int, default=None, help="max violations shown")
    validate.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    validate.add_argument(
        "--waivers", default=None,
        help="waiver file: 'key_glob [constraint_glob]' per line",
    )
    validate.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="enable pipeline tracing and write the merged span tree as a "
             "Chrome trace_event JSON file (load in chrome://tracing)",
    )
    validate.add_argument(
        "--log-file", default=None, metavar="PATH",
        help="append structured JSON-lines logs to PATH (one JSON object "
             "per line; see docs/OBSERVABILITY.md for the line schema)",
    )

    infer = sub.add_parser("infer", help="infer CPL specs from good data")
    infer.add_argument(
        "--source", action="append", default=[], metavar="FMT:PATH[:SCOPE]",
        help="configuration source to learn from (repeatable)",
    )
    infer.add_argument("--out", default="-", help="output spec file ('-' = stdout)")

    console = sub.add_parser("console", help="interactive validation console")
    console.add_argument(
        "--source", action="append", default=[], metavar="FMT:PATH[:SCOPE]",
        help="configuration source to preload (repeatable)",
    )

    service = sub.add_parser(
        "service",
        help="continuous validation: revalidate whenever spec or data change",
    )
    service.add_argument("spec", help="CPL specification file to watch")
    service.add_argument(
        "--source", action="append", default=[], metavar="FMT:PATH[:SCOPE]",
        help="configuration source to watch (repeatable)",
    )
    service.add_argument(
        "--interval", type=float, default=2.0, help="poll interval in seconds"
    )
    service.add_argument(
        "--max-scans", type=int, default=0,
        help="stop after N scans (0 = run until interrupted)",
    )
    service.add_argument(
        "--executor", choices=("auto", "serial", "thread", "process"),
        default=None,
        help="evaluate each scan via the sharded parallel engine",
    )
    service.add_argument(
        "--delta", action="store_true",
        help="incremental scans: diff changed sources against their last "
             "snapshot and re-evaluate only the affected statements, "
             "splicing the rest from the previous scan (fingerprint-"
             "identical to a full scan; see docs/INCREMENTAL.md)",
    )
    service.add_argument(
        "--watch", action="store_true",
        help="watch mode: poll/validate via ValidationService.watch() and "
             "print one line per validation (mode, selection counts, report "
             "fingerprint digest); --max-scans counts validations, not polls",
    )
    service.add_argument(
        "--resilient", action="store_true",
        help="supervised mode: quarantine failing sources/specs and keep "
             "scanning instead of aborting (repro.resilience)",
    )
    service.add_argument(
        "--max-source-retries", type=int, default=None,
        help="backoff-scheduled retries before a failing source is only "
             "re-probed on edit (default 3; implies --resilient)",
    )
    service.add_argument(
        "--quarantine-threshold", type=int, default=None,
        help="consecutive error scans before a spec statement's circuit "
             "breaker trips (default 3; implies --resilient)",
    )
    service.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="per-shard wall-clock budget; timed-out shards are retried, "
             "then re-run serially (implies --resilient)",
    )
    service.add_argument(
        "--metrics-file", default=None, metavar="PATH",
        help="enable observability and atomically rewrite this exposition "
             "snapshot after every scan (.prom/.txt = Prometheus text, "
             "anything else = JSON readable by `confvalley stats`)",
    )
    service.add_argument(
        "--http", default=None, metavar="HOST:PORT",
        help="enable observability and serve the live operator endpoint "
             "(GET /metrics, /metrics.json, /health, /stats, /traces/latest); "
             "PORT 0 binds an ephemeral port, announced on stderr",
    )
    service.add_argument(
        "--log-file", default=None, metavar="PATH",
        help="append structured JSON-lines logs to PATH (one JSON object "
             "per line; see docs/OBSERVABILITY.md for the line schema)",
    )
    service.add_argument(
        "--jobs", action="store_true",
        help="enable the asynchronous job service: POST /jobs submission "
             "API on the operator endpoint, durable queue, worker pool "
             "(repro.jobs; implied by any --workers/--jobs-* knob)",
    )
    service.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="job worker threads (default 2; implies --jobs)",
    )
    service.add_argument(
        "--jobs-journal", default=None, metavar="PATH",
        help="durable job journal: accepted jobs survive restarts and "
             "crashes; QUEUED work resumes on the next start (implies --jobs)",
    )
    service.add_argument(
        "--queue-depth", type=int, default=None, metavar="N",
        help="admission control: max QUEUED jobs before submissions get "
             "429 backpressure (default 256; implies --jobs)",
    )
    service.add_argument(
        "--tenant-limit", type=int, default=None, metavar="N",
        help="admission control: max in-flight jobs per tenant label "
             "(default unlimited; implies --jobs)",
    )
    service.add_argument(
        "--job-rate", type=float, default=None, metavar="PER_SECOND",
        help="admission control: token-bucket submission rate limit "
             "(default unlimited; implies --jobs)",
    )
    service.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="default per-job execution timeout (implies --jobs)",
    )
    service.add_argument(
        "--jobs-dir", default=None, metavar="DIR",
        help="multi-process job execution over a shared journal directory: "
             "external `confvalley worker` processes claim jobs under "
             "leases; mutually exclusive with --jobs-journal (implies --jobs)",
    )
    service.add_argument(
        "--worker-procs", type=int, default=None, metavar="N",
        help="spawn and supervise N external worker processes over "
             "--jobs-dir, restarting crashed ones with backoff "
             "(implies --jobs; requires --jobs-dir)",
    )
    service.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="job lease time-to-live: a worker whose lease goes this long "
             "unrenewed is presumed dead and its job re-queued (default "
             "10; implies --jobs)",
    )
    service.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="lease renewal cadence for workers (default: lease TTL / 3)",
    )
    service.add_argument(
        "--max-requeues", type=int, default=None, metavar="N",
        help="lease-expiry re-queues tolerated per job before it is "
             "parked as EXPIRED (default 2; implies --jobs)",
    )
    service.add_argument(
        "--shadow", action="store_true",
        help="inferred-spec lifecycle: infer candidate specs from the "
             "scanned corpus and run them in a shadow lane alongside every "
             "scan — violations recorded, never in the verdict; stable "
             "specs auto-promote to enforced (repro.lifecycle, implied by "
             "any --promote-after/--demote-drift/--reinfer-growth/"
             "--lifecycle-journal knob; see docs/LIFECYCLE.md)",
    )
    service.add_argument(
        "--promote-after", type=int, default=None, metavar="N",
        help="consecutive clean scans before a shadow spec is promoted "
             "into the enforced set (default 3; implies --shadow)",
    )
    service.add_argument(
        "--demote-drift", type=float, default=None, metavar="RATE",
        help="per-scan misfire rate (violations/instances) above which a "
             "scan counts against a spec; enforced specs demote on it "
             "(default 0.05; implies --shadow)",
    )
    service.add_argument(
        "--reinfer-growth", type=float, default=None, metavar="FRACTION",
        help="re-run inference when the corpus grew by this fraction "
             "since the last run, with adaptive early-stopping "
             "(default 0.25; implies --shadow)",
    )
    service.add_argument(
        "--lifecycle-journal", default=None, metavar="PATH",
        help="durable lifecycle journal: promotions/demotions survive "
             "restarts (JSON-lines + atomic compaction; implies --shadow)",
    )

    worker = sub.add_parser(
        "worker",
        help="standalone job worker process over a shared --jobs-dir "
             "journal directory (lease claiming + heartbeats)",
    )
    worker.add_argument(
        "--journal", required=True, metavar="DIR",
        help="the shared job directory of a `service --jobs --jobs-dir DIR`",
    )
    worker.add_argument(
        "--id", default=None, metavar="NAME",
        help="stable worker identity; owns workers/<id>.jsonl (default: "
             "w-<pid>)",
    )
    worker.add_argument(
        "--base-dir", default=".", metavar="DIR",
        help="directory server-side source/spec paths resolve against",
    )
    worker.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="lease time-to-live (must match the coordinator; default 10)",
    )
    worker.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="lease renewal cadence (default: lease TTL / 3)",
    )
    worker.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="journal poll interval while idle (default 0.2)",
    )
    worker.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="exit after completing N jobs (default: run until signalled)",
    )
    worker.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="default per-job execution timeout",
    )
    worker.add_argument(
        "--log-file", default=None, metavar="PATH",
        help="append structured JSON-lines logs to PATH",
    )

    stats = sub.add_parser(
        "stats",
        help="read a service metrics snapshot or a live operator endpoint",
    )
    stats.add_argument(
        "snapshot", metavar="SNAPSHOT_OR_URL",
        help="snapshot file written by the service, or a running service's "
             "base URL (http://HOST:PORT, see `service --http`)",
    )
    stats.add_argument(
        "--format", choices=("text", "json", "prometheus"), default="text",
        help="text = operator summary, json = raw snapshot, "
             "prometheus = exposition text (default: text)",
    )
    stats.add_argument(
        "--history", type=int, default=10, metavar="N",
        help="recent scans shown in text format (default: 10)",
    )

    top = sub.add_parser(
        "top",
        help="hot-spec table: costliest specifications by cumulative latency",
    )
    top.add_argument(
        "snapshot", metavar="SNAPSHOT_OR_URL",
        help="snapshot file written by the service, or a running service's "
             "base URL (http://HOST:PORT, see `service --http`)",
    )
    top.add_argument(
        "--count", type=int, default=10, metavar="N",
        help="rows shown (default: 10; capped by the service's recorded "
             "hot-spec table size)",
    )

    coverage = sub.add_parser(
        "coverage", help="report which configuration classes no spec reaches"
    )
    coverage.add_argument(
        "spec",
        help="CPL specification file, or a running service's base URL "
             "(http://HOST:PORT) to read its live coverage summary",
    )
    coverage.add_argument(
        "--source", action="append", default=[], metavar="FMT:PATH[:SCOPE]",
        help="configuration source to analyze (repeatable)",
    )
    coverage.add_argument("--limit", type=int, default=20)

    submit = sub.add_parser(
        "submit",
        help="submit a validation job to a running service (POST /jobs)",
    )
    submit.add_argument(
        "spec", nargs="?", default=None,
        help="local CPL spec file uploaded with the job "
             "(omit when using --spec-name)",
    )
    submit.add_argument(
        "--url", required=True, metavar="URL",
        help="service base URL (see `service --http --jobs`)",
    )
    submit.add_argument(
        "--source", action="append", default=[], metavar="FMT:PATH[:SCOPE]",
        help="source reference resolved on the service host (repeatable)",
    )
    submit.add_argument(
        "--inline-source", action="append", default=[],
        metavar="FMT:PATH[:SCOPE]",
        help="local source file read here and uploaded inline with the "
             "job (repeatable; for submitting from another host)",
    )
    submit.add_argument(
        "--spec-name", default=None, metavar="NAME",
        help="validate a spec registered on the service (the watched spec "
             "is registered as 'service') instead of uploading one",
    )
    submit.add_argument(
        "--idempotency-key", default="", metavar="KEY",
        help="duplicate-suppression key: resubmitting with the same key "
             "returns the original job id",
    )
    submit.add_argument("--priority", type=int, default=0,
                        help="larger runs first (default 0)")
    submit.add_argument("--tenant", default="default",
                        help="tenant label for per-tenant admission limits")
    submit.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job execution timeout on the service",
    )
    submit.add_argument(
        "--executor", choices=("auto", "serial", "thread", "process"),
        default=None, help="evaluation strategy for this job",
    )
    submit.add_argument(
        "--delta", action="store_true",
        help="delta job: validate only the statements affected by the "
             "change between --baseline sources and --source/--inline-source",
    )
    submit.add_argument(
        "--baseline", action="append", default=[], metavar="FMT:PATH[:SCOPE]",
        help="before-the-change source reference resolved on the service "
             "host (repeatable; requires --delta)",
    )
    submit.add_argument(
        "--workflow", default=None, metavar="FILE",
        help="workflow job: read a local workflow definition (YAML/TOML) "
             "and submit it as a mode=workflow job; SPEC becomes optional "
             "(validate steps may carry their own specs)",
    )
    submit.add_argument(
        "--callback", default="", metavar="URL",
        help="completion webhook: the service POSTs the terminal job "
             "record (verdict included) to this http(s) URL",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="poll until the job finishes; exit 0 admit / 1 reject / 2 error",
    )
    submit.add_argument("--poll", type=float, default=0.2, metavar="SECONDS",
                        help="poll interval with --wait (default 0.2)")
    submit.add_argument(
        "--wait-timeout", type=float, default=600.0, metavar="SECONDS",
        help="give up waiting after this long (default 600)",
    )
    submit.add_argument(
        "--json", action="store_true",
        help="print the job record / verdict as machine-readable JSON",
    )

    jobs = sub.add_parser(
        "jobs", help="list jobs on a running service (GET /jobs)"
    )
    jobs.add_argument("url", metavar="URL", help="service base URL")
    jobs.add_argument(
        "--state", default=None,
        choices=("QUEUED", "RUNNING", "DONE", "FAILED", "CANCELLED",
                 "INTERRUPTED", "EXPIRED"),
        help="only jobs in this state",
    )
    jobs.add_argument("--tenant", default=None, help="only this tenant's jobs")
    jobs.add_argument("--limit", type=int, default=20, metavar="N",
                      help="rows shown (default 20)")
    jobs.add_argument("--json", action="store_true",
                      help="print the raw listing JSON")

    cancel = sub.add_parser(
        "cancel", help="cancel a job on a running service (POST /jobs/<id>/cancel)"
    )
    cancel.add_argument("url", metavar="URL", help="service base URL")
    cancel.add_argument("job_id", metavar="JOB_ID", help="the job to cancel")

    trace = sub.add_parser(
        "trace",
        help="fetch a job's distributed trace as Chrome trace_event JSON "
             "(GET /jobs/<id>/trace, or stitch offline from a --jobs-dir)",
    )
    trace.add_argument(
        "target", metavar="URL_OR_DIR",
        help="running service base URL (http://HOST:PORT), or the shared "
             "job directory of a `service --jobs --jobs-dir DIR` to stitch "
             "the trace offline from its partition files",
    )
    trace.add_argument("job_id", metavar="JOB_ID", help="the job to trace")
    trace.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the Chrome trace_event JSON to FILE (load it in "
             "chrome://tracing or Perfetto; default: stdout)",
    )

    specs = sub.add_parser(
        "specs",
        help="inspect and steer a running service's inferred-spec "
             "lifecycle (GET/POST /specs, see `service --shadow`)",
    )
    specs.add_argument("url", metavar="URL", help="service base URL")
    specs.add_argument(
        "action", choices=("list", "promote", "demote", "retire", "history"),
        help="list all tracked specs, show one spec's transition history, "
             "or manually promote/demote/retire one (overrides are "
             "journalled with an `operator` actor)",
    )
    specs.add_argument(
        "spec_id", nargs="?", default=None, metavar="SPEC_ID",
        help="the spec to act on (required for everything except list)",
    )
    specs.add_argument(
        "--state", default=None, choices=("shadow", "enforced", "retired"),
        help="filter `list` to one lifecycle state",
    )
    specs.add_argument(
        "--json", action="store_true",
        help="print the raw endpoint JSON instead of the table",
    )

    gate = sub.add_parser(
        "gate",
        help="pre-check-in gate: diff old vs new sources, validate the change "
             "(exit 0 admit / 1 reject / 2 error)",
    )
    gate.add_argument("spec", help="CPL specification file")
    gate.add_argument(
        "--old", action="append", default=[], metavar="FMT:PATH[:SCOPE]",
        help="baseline source (repeatable); omit to treat everything as new",
    )
    gate.add_argument(
        "--new", action="append", required=True, metavar="FMT:PATH[:SCOPE]",
        help="candidate source (repeatable)",
    )
    gate.add_argument(
        "--full", action="store_true",
        help="run the whole corpus instead of change-affected specs only",
    )
    gate.add_argument(
        "--json", action="store_true",
        help="print the machine-readable verdict JSON (the same schema job "
             "results carry) instead of the human-readable report",
    )

    workflow = sub.add_parser(
        "workflow",
        help="run or validate a composed validation workflow "
             "(multi-step pipeline with gates; see docs/WORKFLOWS.md)",
    )
    workflow.add_argument(
        "action", choices=("run", "validate"),
        help="'run' executes the workflow; 'validate' only checks the "
             "definition and prints the step graph",
    )
    workflow.add_argument("file", help="workflow definition file (YAML or TOML)")
    workflow.add_argument(
        "--source", action="append", default=[], metavar="FMT:PATH[:SCOPE]",
        help="default source for parse steps that declare none (repeatable)",
    )
    workflow.add_argument(
        "--spec", default=None, metavar="PATH",
        help="default CPL spec file for validate steps that declare none",
    )
    workflow.add_argument(
        "--executor", choices=("auto", "serial", "thread", "process"),
        default=None,
        help="evaluation strategy for validate steps (default: serial; "
             "workflow reports are identical either way)",
    )
    workflow.add_argument(
        "--limit", type=int, default=None, help="max violations shown"
    )
    workflow.add_argument(
        "--json", action="store_true",
        help="print the full workflow report as machine-readable JSON",
    )
    workflow.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="enable tracing and write the run's span tree (workflow + "
             "per-step spans, skips included) as Chrome trace_event JSON",
    )

    fmt = sub.add_parser(
        "fmt", help="reformat a CPL specification file canonically"
    )
    fmt.add_argument("spec", help="CPL file to format")
    fmt.add_argument(
        "--write", action="store_true",
        help="rewrite the file in place (default prints to stdout)",
    )
    fmt.add_argument(
        "--optimize", action="store_true",
        help="apply the compiler rewrites (Figure 4) before printing",
    )
    return parser


def _load_sources(session: ValidationSession, sources: Sequence[str]) -> None:
    for entry in sources:
        parts = entry.split(":", 2)
        if len(parts) == 1:
            raise SystemExit(f"--source needs FMT:PATH, got {entry!r}")
        fmt, path = parts[0], parts[1]
        scope = parts[2] if len(parts) > 2 else ""
        count = session.load_source(fmt, path, scope)
        print(f"loaded {count} instance(s) from {path}", file=sys.stderr)
        _log.info(
            "source loaded",
            extra={"path": path, "format": fmt, "instances": count},
        )


def _configure_log_file(path: str) -> None:
    """Route the structured JSON-lines logs to ``path`` (append mode)."""
    from ..observability import configure_logging

    handle = open(path, "a", encoding="utf-8")
    configure_logging(stream=handle)


def _is_url(target: str) -> bool:
    return target.startswith(("http://", "https://"))


#: everything a live-endpoint call can throw: refused/reset connections and
#: timeouts (OSError covers URLError and socket.timeout), a non-HTTP server
#: on the port (HTTPException, e.g. BadStatusLine), and a reachable server
#: answering with something that is not the expected JSON (ValueError)
def _live_endpoint_errors() -> tuple:
    import http.client

    return (OSError, ValueError, http.client.HTTPException)


def _unreachable_message(target: str, exc: Exception) -> str:
    """One actionable line for any failed live-endpoint interaction."""
    detail = str(exc) or type(exc).__name__
    if isinstance(exc, ValueError):
        return (f"{target} did not return ConfValley JSON ({detail}) — "
                f"is this really a `confvalley service --http` endpoint?")
    return (f"cannot reach {target} ({detail}) — is the service running "
            f"with --http (and --jobs for job commands)?")


def _http_json(url: str, payload: Optional[dict] = None,
               timeout: float = 10.0) -> tuple[int, dict]:
    """GET (or POST ``payload`` as JSON) → ``(status, parsed body)``.

    4xx/5xx responses are returned, not raised — the callers branch on
    status codes (202/429/409…).  Connection-level failures raise the
    :func:`_live_endpoint_errors` family for uniform handling.
    """
    import json as _json
    from urllib.error import HTTPError
    from urllib.request import Request, urlopen

    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = _json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = Request(url, data=data, headers=headers)
    try:
        with urlopen(request, timeout=timeout) as response:
            body = response.read().decode("utf-8")
            return response.status, (_json.loads(body) if body.strip() else {})
    except HTTPError as error:
        body = error.read().decode("utf-8", "replace")
        try:
            return error.code, _json.loads(body)
        except ValueError:
            return error.code, {"error": body.strip() or error.reason}


def _fetch_live_snapshot(url: str, want_prometheus: bool = False) -> dict:
    """Scrape a running service's operator endpoint into snapshot shape.

    Produces the same document shape :func:`repro.observability.load_snapshot`
    returns for a ``--metrics-file`` snapshot, so the rendering path is
    shared between files and live services.
    """
    import json as _json
    from urllib.request import urlopen

    base = url.rstrip("/")

    def get(path: str) -> str:
        with urlopen(base + path, timeout=10) as response:
            return response.read().decode("utf-8")

    snapshot = {"snapshot_version": 1, "stats": {}, "metrics": {}, "prometheus": ""}
    if want_prometheus:
        snapshot["prometheus"] = get("/metrics")
        return snapshot
    snapshot["stats"] = _json.loads(get("/stats"))
    try:
        snapshot["metrics"] = _json.loads(get("/metrics.json"))
    except Exception:
        # stats alone still renders; a metrics hiccup shouldn't kill it
        pass
    return snapshot


def _load_stats_snapshot(target: str, want_prometheus: bool = False) -> Optional[dict]:
    """Snapshot file or live URL → snapshot dict (None + message on failure)."""
    from ..observability import load_snapshot

    if _is_url(target):
        try:
            return _fetch_live_snapshot(target, want_prometheus=want_prometheus)
        except _live_endpoint_errors() as exc:
            print(_unreachable_message(target, exc), file=sys.stderr)
            return None
    try:
        return load_snapshot(target)
    except FileNotFoundError:
        print(f"no snapshot at {target!r} — is the service running "
              f"with --metrics-file?", file=sys.stderr)
        return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "validate":
        if args.log_file:
            _configure_log_file(args.log_file)
        policy = ValidationPolicy(stop_on_first_violation=args.stop_on_first)
        if args.waivers:
            count = policy.load_waivers(args.waivers)
            print(f"loaded {count} waiver(s)", file=sys.stderr)
        tracer = None
        if args.trace_out:
            from .. import observability

            tracer = observability.enable(metrics=False).tracer
        session = ValidationSession(
            policy=policy, optimize=not args.no_optimize, executor=args.executor,
            shard_timeout=args.shard_timeout,
        )
        _load_sources(session, args.source)
        if args.partitions and args.partitions > 1:
            with open(args.spec, "r", encoding="utf-8") as handle:
                results = session.validate_partitioned(handle.read(), args.partitions)
            times = [elapsed for __, elapsed in results]
            violations = sum(len(report.violations) for report, __ in results)
            print(
                f"{len(results)} partitions: min {min(times):.3f}s "
                f"median {statistics.median(times):.3f}s max {max(times):.3f}s; "
                f"{violations} violation(s)"
            )
            return 0 if violations == 0 else 1
        report = session.validate_file(args.spec)
        if tracer is not None:
            import json as _json

            with open(args.trace_out, "w", encoding="utf-8") as handle:
                _json.dump(tracer.to_chrome_trace(), handle, indent=1)
            print(
                f"wrote {len(tracer.finished_spans())} span(s) to "
                f"{args.trace_out}",
                file=sys.stderr,
            )
        _log.info(
            "validation completed",
            extra={
                "spec": args.spec,
                "passed": report.passed,
                "violations": len(report.violations),
                "specs_evaluated": report.specs_evaluated,
                "instances_checked": report.instances_checked,
                "elapsed_seconds": round(report.elapsed_seconds, 6),
            },
        )
        if args.format == "json":
            print(report.to_json())
        else:
            print(report.render(limit=args.limit))
        return 0 if report.passed else 1
    if args.command == "infer":
        session = ValidationSession()
        _load_sources(session, args.source)
        result = InferenceEngine().infer(session.store)
        text = result.to_cpl()
        if args.out == "-":
            print(text, end="")
        else:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(
                f"wrote {len(result.constraints)} constraint(s) to {args.out}",
                file=sys.stderr,
            )
        return 0
    if args.command == "service":
        return _run_service(args)
    if args.command == "worker":
        return _run_worker(args)
    if args.command == "stats":
        return _run_stats(args)
    if args.command == "top":
        return _run_top(args)
    if args.command == "workflow":
        return _run_workflow_cmd(args)
    if args.command == "submit":
        return _run_submit(args)
    if args.command == "jobs":
        return _run_jobs(args)
    if args.command == "cancel":
        return _run_cancel(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "specs":
        return _run_specs(args)
    if args.command == "fmt":
        return _run_fmt(args)
    if args.command == "gate":
        return _run_gate(args)
    if args.command == "coverage":
        return _run_coverage(args)
    # console
    session = ValidationSession()
    _load_sources(session, args.source)
    Console(session).run()
    return 0


def _run_fmt(args) -> int:
    from ..core.compiler import optimize_statements
    from ..cpl import parse
    from ..cpl.printer import print_statement

    with open(args.spec, "r", encoding="utf-8") as handle:
        program = parse(handle.read())
    statements = list(program.statements)
    if args.optimize:
        statements = optimize_statements(statements)
    text = "\n".join(print_statement(s) for s in statements) + "\n"
    if args.write:
        with open(args.spec, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"formatted {args.spec}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _run_coverage(args) -> int:
    import json as _json

    if _is_url(args.spec):
        # live mode: read the last scan's coverage summary off the
        # operator endpoint instead of analyzing local files
        base = args.spec.rstrip("/")
        try:
            status, stats = _http_json(base + "/stats")
        except _live_endpoint_errors() as exc:
            print(_unreachable_message(base, exc), file=sys.stderr)
            return 1
        if status != 200 or not isinstance(stats, dict):
            print(f"{base}/stats returned HTTP {status}", file=sys.stderr)
            return 1
        coverage = stats.get("coverage")
        if not coverage:
            print("no coverage summary on this service yet — it reports "
                  "after the first scan with analytics enabled",
                  file=sys.stderr)
            return 1
        print(_json.dumps(coverage, indent=2, sort_keys=True))
        return 0 if not coverage.get("uncovered_classes") else 1
    from ..core.coverage import analyze_coverage

    session = ValidationSession()
    _load_sources(session, args.source)
    with open(args.spec, "r", encoding="utf-8") as handle:
        report = analyze_coverage(handle.read(), session.store)
    print(report.render(limit=args.limit))
    return 0 if not report.uncovered else 1


def _run_gate(args) -> int:
    """The pre-check-in gate; exit 0 admit / 1 reject / 2 error.

    With ``--json`` the verdict is the same machine-readable schema job
    results carry (:func:`repro.jobs.model.verdict_payload`), so CI
    pipelines parse one format whether they gate synchronously or submit
    asynchronously.
    """
    import json as _json

    from ..jobs.model import (
        EXIT_ADMIT,
        EXIT_ERROR,
        EXIT_REJECT,
        error_verdict,
        verdict_payload,
    )

    try:
        return _run_gate_checked(args, _json, verdict_payload,
                                 EXIT_ADMIT, EXIT_REJECT)
    except SystemExit:
        raise
    except Exception as exc:
        message = f"{type(exc).__name__}: {exc}"
        if args.json:
            print(_json.dumps(error_verdict(message), indent=2, sort_keys=True))
        else:
            print(f"gate error: {message}", file=sys.stderr)
        return EXIT_ERROR


def _run_gate_checked(args, _json, verdict_payload, exit_admit, exit_reject) -> int:
    from ..core.incremental import IncrementalValidator
    from ..repository.versioned import diff_stores

    quiet = args.json  # --json: nothing but the verdict object on stdout
    old_session = ValidationSession()
    if args.old:
        _load_sources(old_session, args.old)
    new_session = ValidationSession()
    _load_sources(new_session, args.new)
    change = diff_stores(old_session.store if args.old else None, new_session.store)
    if not quiet:
        print(f"change: {change.summary()}")
    if change.is_empty and not args.full:
        if quiet:
            from ..core.report import ValidationReport

            verdict = verdict_payload(ValidationReport())
            verdict["change"] = change.summary()
            verdict["statements_run"] = 0
            print(_json.dumps(verdict, indent=2, sort_keys=True))
        else:
            print("nothing changed — ACCEPT")
        return exit_admit
    with open(args.spec, "r", encoding="utf-8") as handle:
        validator = IncrementalValidator(handle.read())
    if args.full:
        report = validator.validate_full(new_session.store)
        selected = validator.statement_count
        if not quiet:
            print(f"full corpus: {validator.statement_count} statement(s)")
    else:
        report = validator.validate_change(new_session.store, change)
        selected = validator.last_selected
        if not quiet:
            print(
                f"incremental: {validator.last_selected} of "
                f"{validator.statement_count} statement(s) run"
            )
    if quiet:
        verdict = verdict_payload(report)
        verdict["change"] = change.summary()
        verdict["statements_run"] = selected
        verdict["statements_total"] = validator.statement_count
        print(_json.dumps(verdict, indent=2, sort_keys=True))
        return exit_admit if report.passed else exit_reject
    print(report.render(limit=20))
    if not report.passed:
        from ..core.repair import suggest_repairs

        repairs = suggest_repairs(report, new_session.store)
        if repairs:
            print("suggested repairs:")
            for repair in repairs:
                print("  " + repair.render())
    print("ACCEPT" if report.passed else "REJECT")
    return exit_admit if report.passed else exit_reject


def _run_stats(args) -> int:
    import json as _json

    from ..observability import render_stats

    snapshot = _load_stats_snapshot(
        args.snapshot, want_prometheus=args.format == "prometheus"
    )
    if snapshot is None:
        return 1
    if args.format == "json":
        print(_json.dumps(snapshot, indent=2, sort_keys=True))
    elif args.format == "prometheus":
        print(snapshot.get("prometheus", ""), end="")
    else:
        print(render_stats(snapshot, history_limit=args.history))
    return 0


def _run_top(args) -> int:
    from ..observability import format_hot_specs

    snapshot = _load_stats_snapshot(args.snapshot)
    if snapshot is None:
        return 1
    stats = snapshot.get("stats") or {}
    analytics = stats.get("analytics") or {}
    if not analytics:
        print("no per-spec analytics in this snapshot — run the service "
              "with analytics enabled (the default)", file=sys.stderr)
        return 1
    print(format_hot_specs(analytics.get("hot_specs") or [], args.count))
    dead = analytics.get("dead_specs") or []
    if dead:
        print(f"dead specs matching no instance this scan ({len(dead)}):")
        for row in dead:
            confirmed = " [coverage-confirmed]" if row.get("coverage_confirmed") else ""
            print(f"  L{row['line']}: {row['spec']}{confirmed}")
    return 0


def _render_job_row(row: dict) -> str:
    verdict = row.get("verdict") or "-"
    return (
        f"  {row.get('id', '?'):<18} {row.get('state', '?'):<11} "
        f"verdict={verdict:<7} tenant={row.get('tenant', '?'):<10} "
        f"prio={row.get('priority', 0):<3} spec={row.get('spec', '?')}"
    )


def _run_workflow_cmd(args) -> int:
    """Run (or just validate) a workflow file; exit 0 pass / 1 fail / 2 error."""
    import json as _json
    import os as _os

    from ..workflows import WorkflowEngine, WorkflowError, load_workflow

    try:
        workflow = load_workflow(args.file)
    except WorkflowError as exc:
        print(f"invalid workflow: {exc}", file=sys.stderr)
        return 2
    if args.action == "validate":
        print(f"workflow {workflow.name!r}: {len(workflow)} step(s) OK")
        for step in workflow:
            after = ", ".join(step.after) or "-"
            timeout = f" timeout={step.timeout:g}s" if step.timeout else ""
            print(
                f"  {step.name:<16} kind={step.kind:<12} "
                f"gate={step.gate.render():<20} after={after}{timeout}"
            )
        return 0
    sources = []
    for entry in args.source:
        parts = entry.split(":", 2)
        if len(parts) < 2:
            print(f"--source needs FMT:PATH, got {entry!r}", file=sys.stderr)
            return 2
        sources.append({
            "format": parts[0],
            "path": _os.path.abspath(parts[1]),
            "scope": parts[2] if len(parts) > 2 else "",
        })
    tracer = None
    if args.trace_out:
        from .. import observability

        tracer = observability.enable(metrics=False).tracer
    engine = WorkflowEngine(
        workflow,
        base_dir=_os.path.dirname(_os.path.abspath(args.file)) or ".",
        executor=args.executor,
        sources=sources,
        spec_path=_os.path.abspath(args.spec) if args.spec else "",
    )
    try:
        outcome = engine.run(tracer=tracer)
    except WorkflowError as exc:
        print(f"workflow failed: {exc}", file=sys.stderr)
        return 2
    if tracer is not None:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            _json.dump(tracer.to_chrome_trace(), handle, indent=1)
        print(
            f"wrote {len(tracer.finished_spans())} span(s) to {args.trace_out}",
            file=sys.stderr,
        )
    if args.json:
        print(_json.dumps(outcome.to_dict(), indent=2, sort_keys=True))
    else:
        print(outcome.render(limit=args.limit))
    return 0 if outcome.passed else 1


def _run_submit(args) -> int:
    """Submit one job; with --wait, poll to the verdict (exit 0/1/2)."""
    import json as _json
    import time as _time

    from ..jobs.model import EXIT_ADMIT, EXIT_ERROR, EXIT_REJECT, JobState

    if args.workflow is not None:
        if args.spec is not None and args.spec_name is not None:
            print("submit takes at most one of SPEC or --spec-name with "
                  "--workflow", file=sys.stderr)
            return EXIT_ERROR
    elif (args.spec is None) == (args.spec_name is None):
        print("submit needs a local SPEC file or --spec-name (not both)",
              file=sys.stderr)
        return EXIT_ERROR
    payload: dict = {
        "sources": list(args.source),
        "priority": args.priority,
        "tenant": args.tenant,
    }
    if args.workflow is not None:
        from ..workflows import WorkflowError, load_workflow

        try:
            payload["mode"] = "workflow"
            payload["workflow"] = load_workflow(args.workflow).to_dict()
        except WorkflowError as exc:
            print(f"invalid workflow: {exc}", file=sys.stderr)
            return EXIT_ERROR
    if args.delta:
        payload["mode"] = "delta"
        payload["baseline_sources"] = list(args.baseline)
    elif args.baseline:
        print("--baseline requires --delta", file=sys.stderr)
        return EXIT_ERROR
    if args.idempotency_key:
        payload["idempotency_key"] = args.idempotency_key
    if args.callback:
        payload["callback_url"] = args.callback
    if args.timeout is not None:
        payload["timeout"] = args.timeout
    if args.executor is not None:
        payload["executor"] = args.executor
    try:
        if args.spec_name is not None:
            payload["spec_name"] = args.spec_name
        elif args.spec is not None:
            with open(args.spec, "r", encoding="utf-8") as handle:
                payload["spec"] = handle.read()
        for entry in args.inline_source:
            parts = entry.split(":", 2)
            if len(parts) < 2:
                print(f"--inline-source needs FMT:PATH, got {entry!r}",
                      file=sys.stderr)
                return EXIT_ERROR
            with open(parts[1], "r", encoding="utf-8") as handle:
                payload["sources"].append({
                    "format": parts[0],
                    "text": handle.read(),
                    "source": parts[1],
                    "scope": parts[2] if len(parts) > 2 else "",
                })
    except OSError as exc:
        print(f"cannot read submission input: {exc}", file=sys.stderr)
        return EXIT_ERROR

    base = args.url.rstrip("/")
    try:
        status, body = _http_json(base + "/jobs", payload=payload)
    except _live_endpoint_errors() as exc:
        print(_unreachable_message(base, exc), file=sys.stderr)
        return EXIT_ERROR
    if status == 429:
        print(f"rejected (backpressure): {body.get('message', body)}",
              file=sys.stderr)
        return EXIT_ERROR
    if status != 202:
        print(f"submission failed (HTTP {status}): "
              f"{body.get('error', body)}", file=sys.stderr)
        return EXIT_ERROR
    job_id = body["id"]
    dedup = " (deduplicated)" if body.get("deduplicated") else ""
    print(f"submitted {job_id}{dedup}", file=sys.stderr)
    if not args.wait:
        if args.json:
            print(_json.dumps(body, indent=2, sort_keys=True))
        else:
            print(job_id)
        return EXIT_ADMIT

    deadline = _time.monotonic() + args.wait_timeout
    while True:
        try:
            status, job = _http_json(f"{base}/jobs/{job_id}")
        except _live_endpoint_errors() as exc:
            print(_unreachable_message(base, exc), file=sys.stderr)
            return EXIT_ERROR
        if status != 200:
            print(f"lost the job mid-wait (HTTP {status}): "
                  f"{job.get('error', job)}", file=sys.stderr)
            return EXIT_ERROR
        if job.get("state") in JobState.TERMINAL:
            break
        if _time.monotonic() > deadline:
            print(f"job {job_id} still {job.get('state')} after "
                  f"{args.wait_timeout:g}s — gave up waiting (the job keeps "
                  f"running; poll with `confvalley jobs {base}`)",
                  file=sys.stderr)
            return EXIT_ERROR
        _time.sleep(args.poll)

    result = job.get("result") or {}
    if args.json:
        print(_json.dumps(job, indent=2, sort_keys=True))
    else:
        verdict = result.get("verdict", "error")
        print(f"{job_id}: {job['state']} verdict={verdict} "
              f"violations={result.get('violations', 0)} "
              f"fingerprint={result.get('fingerprint', '')[:16]}")
        delta = result.get("delta")
        if delta:
            if delta.get("mode") == "delta":
                print(f"  delta: {delta['selected']}/{delta['statements_total']} "
                      f"statement(s) selected ({delta.get('change')})")
            else:
                print(f"  delta: {delta.get('mode')} — {delta.get('reason', '')}")
        if job.get("error"):
            print(f"  error: {job['error']}")
    if job["state"] == JobState.DONE:
        return EXIT_ADMIT if result.get("passed") else EXIT_REJECT
    return EXIT_ERROR


def _run_jobs(args) -> int:
    import json as _json
    from urllib.parse import urlencode

    params = {"limit": args.limit}
    if args.state:
        params["state"] = args.state
    if args.tenant:
        params["tenant"] = args.tenant
    base = args.url.rstrip("/")
    try:
        status, body = _http_json(f"{base}/jobs?{urlencode(params)}")
    except _live_endpoint_errors() as exc:
        print(_unreachable_message(base, exc), file=sys.stderr)
        return 1
    if status != 200:
        print(f"listing failed (HTTP {status}): {body.get('error', body)}",
              file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(body, indent=2, sort_keys=True))
        return 0
    stats = body.get("stats") or {}
    print(f"jobs: {stats.get('jobs', 0)} tracked, "
          f"{stats.get('queued', 0)} queued, "
          f"{stats.get('running', 0)} running, "
          f"{stats.get('workers', 0)} worker(s)")
    rejections = stats.get("rejections") or {}
    if rejections:
        print("rejections: " + " ".join(
            f"{reason}={count}" for reason, count in sorted(rejections.items())
        ))
    rows = body.get("jobs") or []
    for row in rows:
        print(_render_job_row(row))
    if not rows:
        print("  (no jobs match)")
    return 0


def _run_cancel(args) -> int:
    base = args.url.rstrip("/")
    try:
        status, body = _http_json(
            f"{base}/jobs/{args.job_id}/cancel", payload={}
        )
    except _live_endpoint_errors() as exc:
        print(_unreachable_message(base, exc), file=sys.stderr)
        return 1
    if status != 200:
        print(f"cancel failed (HTTP {status}): {body.get('error', body)}",
              file=sys.stderr)
        return 1
    print(f"{body['id']}: {body['state']}")
    return 0


def _run_specs(args) -> int:
    """Inspect/steer a running service's inferred-spec lifecycle."""
    import json as _json

    base = args.url.rstrip("/")
    if args.action != "list" and not args.spec_id:
        raise SystemExit(f"specs {args.action} needs a SPEC_ID")
    try:
        if args.action == "list":
            query = f"?state={args.state}" if args.state else ""
            status, body = _http_json(f"{base}/specs{query}")
        elif args.action == "history":
            status, body = _http_json(f"{base}/specs/{args.spec_id}")
        else:
            status, body = _http_json(
                f"{base}/specs/{args.spec_id}/{args.action}", payload={}
            )
    except _live_endpoint_errors() as exc:
        print(_unreachable_message(base, exc), file=sys.stderr)
        return 1
    if status != 200:
        print(f"specs {args.action} failed (HTTP {status}): "
              f"{body.get('error', body)}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(body, indent=2, sort_keys=True))
        return 0
    if args.action == "list":
        specs = body.get("specs", [])
        if not specs:
            print("no lifecycle-tracked specs"
                  + (f" in state {args.state}" if args.state else ""))
            return 0
        width = max(len(record["id"]) for record in specs)
        print(f"{'SPEC':<{width}}  {'STATE':<8} {'DRIFT':>7} {'SCANS':>5} "
              f"{'STREAK':>6}  CPL")
        for record in specs:
            streak = (record["clean_streak"]
                      or -record["dirty_streak"])
            print(f"{record['id']:<{width}}  {record['state']:<8} "
                  f"{record['drift']:>7.4f} {record['scans_observed']:>5} "
                  f"{streak:>6}  {record['cpl']}")
        counts = body.get("stats", {}).get("specs", {})
        print(f"({counts.get('shadow', 0)} shadow, "
              f"{counts.get('enforced', 0)} enforced, "
              f"{counts.get('retired', 0)} retired)")
        return 0
    if args.action == "history":
        print(f"{body['id']}: {body['state']} (revisions {body['revisions']}, "
              f"drift {body['drift']:.4f} over {body['scans_observed']} scan(s))")
        print(f"  cpl: {body['cpl']}")
        for entry in body.get("history", []):
            print(f"  #{entry['seq']} {entry['from']} → {entry['to']} "
                  f"[{entry['action']}] by {entry['actor']}"
                  + (f": {entry['reason']}" if entry.get("reason") else ""))
        if not body.get("history"):
            print("  (no transitions yet)")
        return 0
    print(f"{body['id']}: {body['state']}")
    return 0


def _run_trace(args) -> int:
    """Fetch (or offline-stitch) one job's distributed trace."""
    import json as _json

    target = args.target.rstrip("/")
    if _is_url(target):
        try:
            status, body = _http_json(f"{target}/jobs/{args.job_id}/trace")
        except _live_endpoint_errors() as exc:
            print(_unreachable_message(target, exc), file=sys.stderr)
            return 1
        if status != 200:
            print(f"trace failed (HTTP {status}): {body.get('error', body)}",
                  file=sys.stderr)
            return 1
        payload = body
    else:
        import os

        from ..jobs.lease import JobDirectory
        from ..observability import read_trace_segments, trace_payload

        if not os.path.isdir(target):
            print(f"no job directory at {target!r} — pass a running "
                  f"service's URL or a `service --jobs-dir` directory",
                  file=sys.stderr)
            return 1
        directory = JobDirectory(target)
        segments = []
        for partition in directory.trace_partitions().values():
            segments.extend(
                segment for segment in read_trace_segments(partition)
                if segment.get("trace_id") == args.job_id
            )
        payload = trace_payload(args.job_id, segments)
    if not payload.get("spans"):
        print(f"no trace recorded for job {args.job_id!r} — was the "
              f"service running with observability enabled (--http or "
              f"--metrics-file)?", file=sys.stderr)
        return 1
    text = _json.dumps(payload, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(payload['spans'])} span(s) from "
              f"{len(payload.get('sources', []))} source(s) to {args.out}",
              file=sys.stderr)
    else:
        print(text)
    return 0


def _run_worker(args) -> int:
    """Run one standalone worker process against a shared job directory."""
    from .. import observability
    from ..jobs.lease import DEFAULT_LEASE_TTL
    from ..jobs.worker import ExternalWorker

    if args.log_file:
        _configure_log_file(args.log_file)
    # the worker is one process of an observable fleet: enable the live
    # registry/tracer so its metrics snapshots and trace segments federate
    # into the coordinator's /metrics and /jobs/<id>/trace
    observability.enable()
    worker = ExternalWorker(
        journal_dir=args.journal,
        worker_id=args.id,
        base_dir=args.base_dir,
        poll=args.poll,
        lease_ttl=args.lease_ttl if args.lease_ttl else DEFAULT_LEASE_TTL,
        heartbeat=args.heartbeat,
        default_timeout=args.job_timeout,
        max_jobs=args.max_jobs,
    )
    worker.install_signal_handlers()
    print(f"worker {worker.worker_id}: journal {worker.directory.root}, "
          f"lease ttl {worker.lease_ttl:g}s, "
          f"heartbeat {worker.heartbeat:g}s",
          file=sys.stderr, flush=True)
    done = worker.run()
    print(f"worker {worker.worker_id}: exiting after {done} job(s)",
          file=sys.stderr, flush=True)
    return 0


def _run_service(args) -> int:
    import time as _time

    from ..service import SourceSpec, ValidationService

    sources = []
    for entry in args.source:
        parts = entry.split(":", 2)
        if len(parts) == 1:
            raise SystemExit(f"--source needs FMT:PATH, got {entry!r}")
        sources.append(
            SourceSpec(parts[0], parts[1], parts[2] if len(parts) > 2 else "")
        )

    def announce(result):
        status = "PASS" if result.passed else "FAIL"
        print(f"transition → {status} (scan #{result.sequence})")

    resilience = None
    if (
        args.resilient
        or args.max_source_retries is not None
        or args.quarantine_threshold is not None
        or args.shard_timeout is not None
    ):
        from ..resilience import ResiliencePolicy

        knobs = {"shard_timeout": args.shard_timeout}
        if args.max_source_retries is not None:
            knobs["max_source_retries"] = args.max_source_retries
        if args.quarantine_threshold is not None:
            knobs["quarantine_threshold"] = args.quarantine_threshold
        resilience = ResiliencePolicy(**knobs)

    if args.log_file:
        _configure_log_file(args.log_file)

    if args.metrics_file or args.http:
        from .. import observability

        observability.enable()

    lifecycle = None
    shadow_enabled = args.shadow or any(
        value is not None
        for value in (args.promote_after, args.demote_drift,
                      args.reinfer_growth, args.lifecycle_journal)
    )
    if shadow_enabled:
        from ..lifecycle import (
            PromotionPolicy,
            ReInferencer,
            SpecLifecycleManager,
        )

        policy_knobs = {}
        if args.promote_after is not None:
            policy_knobs["promote_after"] = args.promote_after
        if args.demote_drift is not None:
            policy_knobs["demote_drift"] = args.demote_drift
        lifecycle = SpecLifecycleManager(
            policy=PromotionPolicy(**policy_knobs),
            journal_path=args.lifecycle_journal,
            reinferencer=ReInferencer(
                growth_threshold=(
                    args.reinfer_growth
                    if args.reinfer_growth is not None else 0.25
                ),
            ),
        )
        counts = lifecycle.state_counts()
        print(f"spec lifecycle: {counts['SHADOW']} shadow, "
              f"{counts['ENFORCED']} enforced, {counts['RETIRED']} retired"
              + (f", journal {args.lifecycle_journal}"
                 if args.lifecycle_journal else ""),
              file=sys.stderr, flush=True)

    service = ValidationService(
        args.spec, sources, on_transition=announce, executor=args.executor,
        resilience=resilience, metrics_file=args.metrics_file,
        delta=args.delta, lifecycle=lifecycle,
    )

    jobs_enabled = args.jobs or any(
        value is not None
        for value in (args.workers, args.jobs_journal, args.queue_depth,
                      args.tenant_limit, args.job_rate, args.job_timeout,
                      args.jobs_dir, args.worker_procs, args.lease_ttl,
                      args.max_requeues)
    )
    if args.worker_procs and not args.jobs_dir:
        raise SystemExit("--worker-procs requires --jobs-dir")
    if jobs_enabled:
        from ..jobs import DEFAULT_LEASE_TTL, JobService

        job_service = JobService(
            journal_path=args.jobs_journal,
            journal_dir=args.jobs_dir,
            workers=args.workers if args.workers is not None else 2,
            worker_procs=args.worker_procs or 0,
            queue_depth=args.queue_depth if args.queue_depth else 256,
            per_tenant_limit=args.tenant_limit or 0,
            rate=args.job_rate or 0.0,
            default_timeout=args.job_timeout,
            lease_ttl=(
                args.lease_ttl if args.lease_ttl else DEFAULT_LEASE_TTL
            ),
            heartbeat=args.heartbeat,
            **(
                {"max_requeues": args.max_requeues}
                if args.max_requeues is not None
                else {}
            ),
        )
        service.attach_jobs(job_service)
        extras = ""
        if args.jobs_journal:
            extras = f", journal {args.jobs_journal}"
        elif args.jobs_dir:
            extras = f", shared dir {args.jobs_dir}"
            if args.worker_procs:
                extras += f", {args.worker_procs} worker process(es)"
        print(f"job service: {job_service.pool.workers} worker(s), "
              f"queue depth {job_service.admission.max_depth}" + extras,
              file=sys.stderr, flush=True)

    if args.http:
        from ..observability import parse_http_address

        host, port = parse_http_address(args.http)
        server = service.start_http(host, port)
        # parseable announcement: tooling (and the http-smoke harness)
        # reads the resolved address of a PORT-0 ephemeral bind from here
        print(f"operator endpoint: {server.url}", file=sys.stderr, flush=True)

    # SIGTERM (systemd stop, docker stop, kill) exits the loop the same
    # way Ctrl-C does, so the finally-block shutdown always runs
    def _raise_interrupt(signum, frame):
        raise KeyboardInterrupt

    previous_sigterm = None
    try:
        import signal

        previous_sigterm = signal.signal(signal.SIGTERM, _raise_interrupt)
    except ValueError:  # pragma: no cover - not on the main thread
        pass

    scans = 0
    last_status = None

    def watch_line(result):
        """One parseable line per validation for --watch consumers
        (the delta-smoke harness greps mode= and fingerprint=)."""
        nonlocal last_status
        from ..jobs.model import report_fingerprint_digest

        status = "PASS" if result.passed else "FAIL"
        if result.delta is not None:
            mode = (f"mode={result.delta['mode']} "
                    f"selected={result.delta['selected']}"
                    f"/{result.delta['statements_total']}")
        else:
            mode = "mode=full"
        digest = report_fingerprint_digest(result.report)
        print(f"[{result.sequence}] {status} "
              f"({len(result.report.violations)} violation(s); {mode}; "
              f"fingerprint={digest}; "
              f"changed: {', '.join(result.changed_paths)})",
              flush=True)
        if result.health is not None and result.health.status != "OK":
            print(f"    {result.health.summary()}", flush=True)
        last_status = result.passed

    try:
        if args.watch:
            service.watch(
                interval=args.interval,
                max_scans=args.max_scans or None,
                on_result=watch_line,
            )
        else:
            while True:
                result = service.scan()
                scans += 1
                if result is not None:
                    status = "PASS" if result.passed else "FAIL"
                    changed = ", ".join(result.changed_paths)
                    print(f"[{result.sequence}] {status} "
                          f"({len(result.report.violations)} violation(s); "
                          f"changed: {changed})")
                    if result.health is not None and result.health.status != "OK":
                        print(f"    {result.health.summary()}")
                    last_status = result.passed
                if args.max_scans and scans >= args.max_scans:
                    break
                _time.sleep(args.interval)
    except KeyboardInterrupt:  # interactive ^C or SIGTERM
        pass
    finally:
        service.stop_http()
        if service.jobs is not None:
            # graceful drain: running jobs finish and journal their
            # terminal states; QUEUED jobs stay journalled for restart
            service.jobs.close(drain=True)
        if service.lifecycle is not None:
            service.lifecycle.close()
        if previous_sigterm is not None:
            import signal

            try:
                signal.signal(signal.SIGTERM, previous_sigterm)
            except ValueError:  # pragma: no cover
                pass
    if last_status is None:
        last_status = service.current_status
    return 0 if last_status else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
