"""Batch-mode command line interface (paper §5.1, scenario 3).

"The main usage scenario is a batch validation mode where ConfValley takes
an input specification file and (re)validates it continuously as
configuration specifications or data are updated."

Subcommands::

    confvalley validate SPEC.cpl [--source FMT:PATH[:SCOPE] …] [--partitions N]
    confvalley infer    [--source FMT:PATH[:SCOPE] …] [--out SPECS.cpl]
    confvalley console  [--source FMT:PATH[:SCOPE] …]
    confvalley service  SPEC.cpl [--http HOST:PORT] [--metrics-file PATH] …
    confvalley stats    SNAPSHOT_OR_URL [--format text|json|prometheus]
    confvalley top      SNAPSHOT_OR_URL [--count N]

``stats`` and ``top`` read either a snapshot file written by
``service --metrics-file`` or a running service's operator endpoint
(``http://HOST:PORT``, see ``service --http``).
"""

from __future__ import annotations

import argparse
import statistics
import sys
from typing import Optional, Sequence

from ..core.policy import ValidationPolicy
from ..core.session import ValidationSession
from ..inference import InferenceEngine
from ..observability import get_logger
from .repl import Console

__all__ = ["main", "build_parser"]

_log = get_logger("cli")


def build_parser() -> argparse.ArgumentParser:
    from .. import __version__

    parser = argparse.ArgumentParser(
        prog="confvalley",
        description="ConfValley — systematic configuration validation",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser("validate", help="validate sources against a spec file")
    validate.add_argument("spec", help="CPL specification file")
    validate.add_argument(
        "--source",
        action="append",
        default=[],
        metavar="FMT:PATH[:SCOPE]",
        help="configuration source to load (repeatable)",
    )
    validate.add_argument(
        "--partitions", type=int, default=0,
        help="split specs into N partitions and report per-partition times",
    )
    validate.add_argument(
        "--executor", choices=("auto", "serial", "thread", "process"),
        default=None,
        help="evaluate via the sharded parallel engine (default: in-process "
             "serial; reports are identical either way)",
    )
    validate.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="per-shard wall-clock budget when an --executor is set; "
             "timed-out shards are retried, then re-run serially",
    )
    validate.add_argument(
        "--stop-on-first", action="store_true",
        help="stop at the first violation (validation policy)",
    )
    validate.add_argument(
        "--no-optimize", action="store_true", help="disable compiler rewrites"
    )
    validate.add_argument("--limit", type=int, default=None, help="max violations shown")
    validate.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    validate.add_argument(
        "--waivers", default=None,
        help="waiver file: 'key_glob [constraint_glob]' per line",
    )
    validate.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="enable pipeline tracing and write the merged span tree as a "
             "Chrome trace_event JSON file (load in chrome://tracing)",
    )
    validate.add_argument(
        "--log-file", default=None, metavar="PATH",
        help="append structured JSON-lines logs to PATH (one JSON object "
             "per line; see docs/OBSERVABILITY.md for the line schema)",
    )

    infer = sub.add_parser("infer", help="infer CPL specs from good data")
    infer.add_argument(
        "--source", action="append", default=[], metavar="FMT:PATH[:SCOPE]",
        help="configuration source to learn from (repeatable)",
    )
    infer.add_argument("--out", default="-", help="output spec file ('-' = stdout)")

    console = sub.add_parser("console", help="interactive validation console")
    console.add_argument(
        "--source", action="append", default=[], metavar="FMT:PATH[:SCOPE]",
        help="configuration source to preload (repeatable)",
    )

    service = sub.add_parser(
        "service",
        help="continuous validation: revalidate whenever spec or data change",
    )
    service.add_argument("spec", help="CPL specification file to watch")
    service.add_argument(
        "--source", action="append", default=[], metavar="FMT:PATH[:SCOPE]",
        help="configuration source to watch (repeatable)",
    )
    service.add_argument(
        "--interval", type=float, default=2.0, help="poll interval in seconds"
    )
    service.add_argument(
        "--max-scans", type=int, default=0,
        help="stop after N scans (0 = run until interrupted)",
    )
    service.add_argument(
        "--executor", choices=("auto", "serial", "thread", "process"),
        default=None,
        help="evaluate each scan via the sharded parallel engine",
    )
    service.add_argument(
        "--resilient", action="store_true",
        help="supervised mode: quarantine failing sources/specs and keep "
             "scanning instead of aborting (repro.resilience)",
    )
    service.add_argument(
        "--max-source-retries", type=int, default=None,
        help="backoff-scheduled retries before a failing source is only "
             "re-probed on edit (default 3; implies --resilient)",
    )
    service.add_argument(
        "--quarantine-threshold", type=int, default=None,
        help="consecutive error scans before a spec statement's circuit "
             "breaker trips (default 3; implies --resilient)",
    )
    service.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="per-shard wall-clock budget; timed-out shards are retried, "
             "then re-run serially (implies --resilient)",
    )
    service.add_argument(
        "--metrics-file", default=None, metavar="PATH",
        help="enable observability and atomically rewrite this exposition "
             "snapshot after every scan (.prom/.txt = Prometheus text, "
             "anything else = JSON readable by `confvalley stats`)",
    )
    service.add_argument(
        "--http", default=None, metavar="HOST:PORT",
        help="enable observability and serve the live operator endpoint "
             "(GET /metrics, /metrics.json, /health, /stats, /traces/latest); "
             "PORT 0 binds an ephemeral port, announced on stderr",
    )
    service.add_argument(
        "--log-file", default=None, metavar="PATH",
        help="append structured JSON-lines logs to PATH (one JSON object "
             "per line; see docs/OBSERVABILITY.md for the line schema)",
    )

    stats = sub.add_parser(
        "stats",
        help="read a service metrics snapshot or a live operator endpoint",
    )
    stats.add_argument(
        "snapshot", metavar="SNAPSHOT_OR_URL",
        help="snapshot file written by the service, or a running service's "
             "base URL (http://HOST:PORT, see `service --http`)",
    )
    stats.add_argument(
        "--format", choices=("text", "json", "prometheus"), default="text",
        help="text = operator summary, json = raw snapshot, "
             "prometheus = exposition text (default: text)",
    )
    stats.add_argument(
        "--history", type=int, default=10, metavar="N",
        help="recent scans shown in text format (default: 10)",
    )

    top = sub.add_parser(
        "top",
        help="hot-spec table: costliest specifications by cumulative latency",
    )
    top.add_argument(
        "snapshot", metavar="SNAPSHOT_OR_URL",
        help="snapshot file written by the service, or a running service's "
             "base URL (http://HOST:PORT, see `service --http`)",
    )
    top.add_argument(
        "--count", type=int, default=10, metavar="N",
        help="rows shown (default: 10; capped by the service's recorded "
             "hot-spec table size)",
    )

    coverage = sub.add_parser(
        "coverage", help="report which configuration classes no spec reaches"
    )
    coverage.add_argument("spec", help="CPL specification file")
    coverage.add_argument(
        "--source", action="append", default=[], metavar="FMT:PATH[:SCOPE]",
        help="configuration source to analyze (repeatable)",
    )
    coverage.add_argument("--limit", type=int, default=20)

    gate = sub.add_parser(
        "gate",
        help="pre-check-in gate: diff old vs new sources, validate the change",
    )
    gate.add_argument("spec", help="CPL specification file")
    gate.add_argument(
        "--old", action="append", default=[], metavar="FMT:PATH[:SCOPE]",
        help="baseline source (repeatable); omit to treat everything as new",
    )
    gate.add_argument(
        "--new", action="append", required=True, metavar="FMT:PATH[:SCOPE]",
        help="candidate source (repeatable)",
    )
    gate.add_argument(
        "--full", action="store_true",
        help="run the whole corpus instead of change-affected specs only",
    )

    fmt = sub.add_parser(
        "fmt", help="reformat a CPL specification file canonically"
    )
    fmt.add_argument("spec", help="CPL file to format")
    fmt.add_argument(
        "--write", action="store_true",
        help="rewrite the file in place (default prints to stdout)",
    )
    fmt.add_argument(
        "--optimize", action="store_true",
        help="apply the compiler rewrites (Figure 4) before printing",
    )
    return parser


def _load_sources(session: ValidationSession, sources: Sequence[str]) -> None:
    for entry in sources:
        parts = entry.split(":", 2)
        if len(parts) == 1:
            raise SystemExit(f"--source needs FMT:PATH, got {entry!r}")
        fmt, path = parts[0], parts[1]
        scope = parts[2] if len(parts) > 2 else ""
        count = session.load_source(fmt, path, scope)
        print(f"loaded {count} instance(s) from {path}", file=sys.stderr)
        _log.info(
            "source loaded",
            extra={"path": path, "format": fmt, "instances": count},
        )


def _configure_log_file(path: str) -> None:
    """Route the structured JSON-lines logs to ``path`` (append mode)."""
    from ..observability import configure_logging

    handle = open(path, "a", encoding="utf-8")
    configure_logging(stream=handle)


def _is_url(target: str) -> bool:
    return target.startswith(("http://", "https://"))


def _fetch_live_snapshot(url: str, want_prometheus: bool = False) -> dict:
    """Scrape a running service's operator endpoint into snapshot shape.

    Produces the same document shape :func:`repro.observability.load_snapshot`
    returns for a ``--metrics-file`` snapshot, so the rendering path is
    shared between files and live services.
    """
    import json as _json
    from urllib.request import urlopen

    base = url.rstrip("/")

    def get(path: str) -> str:
        with urlopen(base + path, timeout=10) as response:
            return response.read().decode("utf-8")

    snapshot = {"snapshot_version": 1, "stats": {}, "metrics": {}, "prometheus": ""}
    if want_prometheus:
        snapshot["prometheus"] = get("/metrics")
        return snapshot
    snapshot["stats"] = _json.loads(get("/stats"))
    try:
        snapshot["metrics"] = _json.loads(get("/metrics.json"))
    except Exception:
        # stats alone still renders; a metrics hiccup shouldn't kill it
        pass
    return snapshot


def _load_stats_snapshot(target: str, want_prometheus: bool = False) -> Optional[dict]:
    """Snapshot file or live URL → snapshot dict (None + message on failure)."""
    from ..observability import load_snapshot

    if _is_url(target):
        try:
            return _fetch_live_snapshot(target, want_prometheus=want_prometheus)
        except (OSError, ValueError) as exc:
            print(f"cannot reach {target!r}: {exc}", file=sys.stderr)
            return None
    try:
        return load_snapshot(target)
    except FileNotFoundError:
        print(f"no snapshot at {target!r} — is the service running "
              f"with --metrics-file?", file=sys.stderr)
        return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "validate":
        if args.log_file:
            _configure_log_file(args.log_file)
        policy = ValidationPolicy(stop_on_first_violation=args.stop_on_first)
        if args.waivers:
            count = policy.load_waivers(args.waivers)
            print(f"loaded {count} waiver(s)", file=sys.stderr)
        tracer = None
        if args.trace_out:
            from .. import observability

            tracer = observability.enable(metrics=False).tracer
        session = ValidationSession(
            policy=policy, optimize=not args.no_optimize, executor=args.executor,
            shard_timeout=args.shard_timeout,
        )
        _load_sources(session, args.source)
        if args.partitions and args.partitions > 1:
            with open(args.spec, "r", encoding="utf-8") as handle:
                results = session.validate_partitioned(handle.read(), args.partitions)
            times = [elapsed for __, elapsed in results]
            violations = sum(len(report.violations) for report, __ in results)
            print(
                f"{len(results)} partitions: min {min(times):.3f}s "
                f"median {statistics.median(times):.3f}s max {max(times):.3f}s; "
                f"{violations} violation(s)"
            )
            return 0 if violations == 0 else 1
        report = session.validate_file(args.spec)
        if tracer is not None:
            import json as _json

            with open(args.trace_out, "w", encoding="utf-8") as handle:
                _json.dump(tracer.to_chrome_trace(), handle, indent=1)
            print(
                f"wrote {len(tracer.finished_spans())} span(s) to "
                f"{args.trace_out}",
                file=sys.stderr,
            )
        _log.info(
            "validation completed",
            extra={
                "spec": args.spec,
                "passed": report.passed,
                "violations": len(report.violations),
                "specs_evaluated": report.specs_evaluated,
                "instances_checked": report.instances_checked,
                "elapsed_seconds": round(report.elapsed_seconds, 6),
            },
        )
        if args.format == "json":
            print(report.to_json())
        else:
            print(report.render(limit=args.limit))
        return 0 if report.passed else 1
    if args.command == "infer":
        session = ValidationSession()
        _load_sources(session, args.source)
        result = InferenceEngine().infer(session.store)
        text = result.to_cpl()
        if args.out == "-":
            print(text, end="")
        else:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(
                f"wrote {len(result.constraints)} constraint(s) to {args.out}",
                file=sys.stderr,
            )
        return 0
    if args.command == "service":
        return _run_service(args)
    if args.command == "stats":
        return _run_stats(args)
    if args.command == "top":
        return _run_top(args)
    if args.command == "fmt":
        return _run_fmt(args)
    if args.command == "gate":
        return _run_gate(args)
    if args.command == "coverage":
        from ..core.coverage import analyze_coverage

        session = ValidationSession()
        _load_sources(session, args.source)
        with open(args.spec, "r", encoding="utf-8") as handle:
            report = analyze_coverage(handle.read(), session.store)
        print(report.render(limit=args.limit))
        return 0 if not report.uncovered else 1
    # console
    session = ValidationSession()
    _load_sources(session, args.source)
    Console(session).run()
    return 0


def _run_fmt(args) -> int:
    from ..core.compiler import optimize_statements
    from ..cpl import parse
    from ..cpl.printer import print_statement

    with open(args.spec, "r", encoding="utf-8") as handle:
        program = parse(handle.read())
    statements = list(program.statements)
    if args.optimize:
        statements = optimize_statements(statements)
    text = "\n".join(print_statement(s) for s in statements) + "\n"
    if args.write:
        with open(args.spec, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"formatted {args.spec}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _run_gate(args) -> int:
    from ..core.incremental import IncrementalValidator
    from ..repository.versioned import diff_stores

    old_session = ValidationSession()
    if args.old:
        _load_sources(old_session, args.old)
    new_session = ValidationSession()
    _load_sources(new_session, args.new)
    change = diff_stores(old_session.store if args.old else None, new_session.store)
    print(f"change: {change.summary()}")
    if change.is_empty and not args.full:
        print("nothing changed — ACCEPT")
        return 0
    with open(args.spec, "r", encoding="utf-8") as handle:
        validator = IncrementalValidator(handle.read())
    if args.full:
        report = validator.validate_full(new_session.store)
        print(f"full corpus: {validator.statement_count} statement(s)")
    else:
        report = validator.validate_change(new_session.store, change)
        print(
            f"incremental: {validator.last_selected} of "
            f"{validator.statement_count} statement(s) run"
        )
    print(report.render(limit=20))
    if not report.passed:
        from ..core.repair import suggest_repairs

        repairs = suggest_repairs(report, new_session.store)
        if repairs:
            print("suggested repairs:")
            for repair in repairs:
                print("  " + repair.render())
    print("ACCEPT" if report.passed else "REJECT")
    return 0 if report.passed else 1


def _run_stats(args) -> int:
    import json as _json

    from ..observability import render_stats

    snapshot = _load_stats_snapshot(
        args.snapshot, want_prometheus=args.format == "prometheus"
    )
    if snapshot is None:
        return 1
    if args.format == "json":
        print(_json.dumps(snapshot, indent=2, sort_keys=True))
    elif args.format == "prometheus":
        print(snapshot.get("prometheus", ""), end="")
    else:
        print(render_stats(snapshot, history_limit=args.history))
    return 0


def _run_top(args) -> int:
    from ..observability import format_hot_specs

    snapshot = _load_stats_snapshot(args.snapshot)
    if snapshot is None:
        return 1
    stats = snapshot.get("stats") or {}
    analytics = stats.get("analytics") or {}
    if not analytics:
        print("no per-spec analytics in this snapshot — run the service "
              "with analytics enabled (the default)", file=sys.stderr)
        return 1
    print(format_hot_specs(analytics.get("hot_specs") or [], args.count))
    dead = analytics.get("dead_specs") or []
    if dead:
        print(f"dead specs matching no instance this scan ({len(dead)}):")
        for row in dead:
            confirmed = " [coverage-confirmed]" if row.get("coverage_confirmed") else ""
            print(f"  L{row['line']}: {row['spec']}{confirmed}")
    return 0


def _run_service(args) -> int:
    import time as _time

    from ..service import SourceSpec, ValidationService

    sources = []
    for entry in args.source:
        parts = entry.split(":", 2)
        if len(parts) == 1:
            raise SystemExit(f"--source needs FMT:PATH, got {entry!r}")
        sources.append(
            SourceSpec(parts[0], parts[1], parts[2] if len(parts) > 2 else "")
        )

    def announce(result):
        status = "PASS" if result.passed else "FAIL"
        print(f"transition → {status} (scan #{result.sequence})")

    resilience = None
    if (
        args.resilient
        or args.max_source_retries is not None
        or args.quarantine_threshold is not None
        or args.shard_timeout is not None
    ):
        from ..resilience import ResiliencePolicy

        knobs = {"shard_timeout": args.shard_timeout}
        if args.max_source_retries is not None:
            knobs["max_source_retries"] = args.max_source_retries
        if args.quarantine_threshold is not None:
            knobs["quarantine_threshold"] = args.quarantine_threshold
        resilience = ResiliencePolicy(**knobs)

    if args.log_file:
        _configure_log_file(args.log_file)

    if args.metrics_file or args.http:
        from .. import observability

        observability.enable()

    service = ValidationService(
        args.spec, sources, on_transition=announce, executor=args.executor,
        resilience=resilience, metrics_file=args.metrics_file,
    )

    if args.http:
        from ..observability import parse_http_address

        host, port = parse_http_address(args.http)
        server = service.start_http(host, port)
        # parseable announcement: tooling (and the http-smoke harness)
        # reads the resolved address of a PORT-0 ephemeral bind from here
        print(f"operator endpoint: {server.url}", file=sys.stderr, flush=True)

    # SIGTERM (systemd stop, docker stop, kill) exits the loop the same
    # way Ctrl-C does, so the finally-block shutdown always runs
    def _raise_interrupt(signum, frame):
        raise KeyboardInterrupt

    previous_sigterm = None
    try:
        import signal

        previous_sigterm = signal.signal(signal.SIGTERM, _raise_interrupt)
    except ValueError:  # pragma: no cover - not on the main thread
        pass

    scans = 0
    last_status = None
    try:
        while True:
            result = service.scan()
            scans += 1
            if result is not None:
                status = "PASS" if result.passed else "FAIL"
                changed = ", ".join(result.changed_paths)
                print(f"[{result.sequence}] {status} "
                      f"({len(result.report.violations)} violation(s); "
                      f"changed: {changed})")
                if result.health is not None and result.health.status != "OK":
                    print(f"    {result.health.summary()}")
                last_status = result.passed
            if args.max_scans and scans >= args.max_scans:
                break
            _time.sleep(args.interval)
    except KeyboardInterrupt:  # interactive ^C or SIGTERM
        pass
    finally:
        service.stop_http()
        if previous_sigterm is not None:
            import signal

            try:
                signal.signal(signal.SIGTERM, previous_sigterm)
            except ValueError:  # pragma: no cover
                pass
    if last_status is None:
        last_status = service.current_status
    return 0 if last_status else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
