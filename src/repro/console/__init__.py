"""Interactive console and batch CLI (paper §5.1 usage scenarios)."""

from .cli import build_parser, main
from .editor import Diagnostic, EditorValidator, check_spec_text
from .repl import Console

__all__ = [
    "Console",
    "main",
    "build_parser",
    "Diagnostic",
    "EditorValidator",
    "check_spec_text",
]
