"""Interactive validation console (paper §5.1, scenario 2).

"We provide an interactive console to allow practitioners to write short
(one-liner) specifications and validate production data on-the-fly."

The console wraps a :class:`~repro.core.session.ValidationSession`; each
input line is either a console directive (``:load``, ``:get``, ``:let``,
``:stats``, ``:help``, ``:quit``) or a CPL statement validated immediately.
It is I/O-agnostic (``input_fn``/``output_fn`` injectable) so tests and the
example scripts can drive it programmatically.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.session import ValidationSession
from ..errors import ConfValleyError

__all__ = ["Console"]

_HELP = """\
ConfValley interactive console
  :load <format> <path> [scope]   load a configuration source
  :get <notation>                 show instances of a domain
  :let <Name> := <predicate>      define a macro
  :conflicts                      cross-source disagreements
  :stats                          store statistics
  :help                           this message
  :quit                           leave
any other input is validated as a CPL statement, e.g.
  $Fabric.RecoveryAttempts -> int & [1, 10]
"""


class Console:
    """A line-oriented interactive validation console."""

    def __init__(
        self,
        session: Optional[ValidationSession] = None,
        output_fn: Callable[[str], None] = print,
    ):
        self.session = session if session is not None else ValidationSession()
        self.output = output_fn
        self.running = False

    # ------------------------------------------------------------------

    def run(self, input_fn: Callable[[str], str] = input) -> None:
        """Read-evaluate-print until ``:quit`` or EOF."""
        self.running = True
        self.output("ConfValley console — :help for commands")
        while self.running:
            try:
                line = input_fn("cpl> ")
            except (EOFError, KeyboardInterrupt):
                break
            self.handle(line)

    def handle(self, line: str) -> None:
        """Process one console line (public for scripted use)."""
        line = line.strip()
        if not line:
            return
        try:
            if line.startswith(":"):
                self._directive(line)
            else:
                report = self.session.validate_line(line)
                self.output(report.render())
        except ConfValleyError as error:
            self.output(f"error: {error}")
        except OSError as error:
            self.output(f"error: {error}")

    # ------------------------------------------------------------------

    def _directive(self, line: str) -> None:
        command, __, rest = line[1:].partition(" ")
        rest = rest.strip()
        if command in ("quit", "q", "exit"):
            self.running = False
        elif command == "help":
            self.output(_HELP)
        elif command == "stats":
            store = self.session.store
            self.output(
                f"{store.instance_count} instance(s) in "
                f"{store.class_count} class(es); "
                f"{store.query_count} discovery queries so far"
            )
        elif command == "conflicts":
            conflicts = self.session.store.cross_source_conflicts()
            if not conflicts:
                self.output("(no cross-source conflicts)")
            for logical, members in conflicts:
                self.output(f"{logical}:")
                for member in members:
                    self.output(f"  {member.value!r} from {member.source}")
        elif command == "load":
            parts = rest.split()
            if len(parts) < 2:
                self.output("usage: :load <format> <path> [scope]")
                return
            scope = parts[2] if len(parts) > 2 else ""
            count = self.session.load_source(parts[0], parts[1], scope)
            self.output(f"loaded {count} instance(s)")
        elif command == "get":
            items = self.session.get(rest)
            if not items:
                self.output("(no instances)")
            for item in items[:50]:
                self.output(f"{item.key_text} = {item.value!r}")
            if len(items) > 50:
                self.output(f"… and {len(items) - 50} more")
        elif command == "let":
            name, separator, body = rest.partition(":=")
            if not separator:
                self.output("usage: :let <Name> := <predicate>")
                return
            self.session.define_macro(name.strip(), body.strip())
            self.output(f"macro @{name.strip()} defined")
        else:
            self.output(f"unknown directive :{command} — :help for commands")
