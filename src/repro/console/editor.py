"""Editor integration: validate configuration data as it is edited.

Paper §5.1, scenario 1: "we extend configuration editors to support CPL
specifications and perform validation as configuration data is edited.  The
instant feedback can help correct simple errors (e.g., incorrect type or
format) before the wrong data is committed."

:class:`EditorValidator` is the editor-agnostic core of that scenario:

* it compiles a CPL corpus once and re-runs it on every buffer update,
* parse failures of the *buffer* surface as diagnostics, not exceptions,
* violations are mapped back to buffer line numbers (best-effort textual
  location of the offending parameter and value),
* unchanged buffers are not re-validated (content-hash cache).

:func:`check_spec_text` covers the complementary direction — live syntax
feedback while editing the *specification* file itself.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from ..core.session import ValidationSession
from ..cpl import ast, parse
from ..drivers import get_driver
from ..errors import ConfValleyError, CPLSyntaxError, DriverError
from ..repository.store import ConfigStore
from ..runtime import RuntimeProvider

__all__ = ["Diagnostic", "EditorValidator", "check_spec_text"]


@dataclass(frozen=True)
class Diagnostic:
    """One editor annotation: a line, a severity, a message."""

    line: int               # 1-based; 0 = whole buffer
    severity: str           # "error" | "warning"
    message: str
    key: str = ""           # offending configuration key, when known

    def render(self) -> str:
        location = f"line {self.line}" if self.line else "buffer"
        return f"{location}: {self.severity}: {self.message}"


class EditorValidator:
    """Re-validates one configuration buffer against a fixed CPL corpus."""

    def __init__(
        self,
        spec_text: str,
        format_name: str,
        scope: str = "",
        runtime: Optional[RuntimeProvider] = None,
        context_store: Optional[ConfigStore] = None,
    ):
        """``context_store`` optionally supplies the *rest* of the fleet's
        configuration, so cross-source specs keep working while one file is
        edited."""
        self._statements = parse(spec_text).statements  # fail fast on bad specs
        self._spec_text = spec_text
        self._format = format_name
        self._scope = scope
        self._runtime = runtime
        self._context = list(context_store.instances()) if context_store else []
        self._last_hash: Optional[str] = None
        self._last_diagnostics: list[Diagnostic] = []
        self.validations_run = 0

    # ------------------------------------------------------------------

    def update(self, buffer_text: str) -> list[Diagnostic]:
        """Validate the current buffer contents; returns diagnostics.

        Repeated calls with identical text return the cached result without
        re-validating (the editor calls this on every keystroke batch).
        """
        digest = hashlib.sha256(buffer_text.encode("utf-8")).hexdigest()
        if digest == self._last_hash:
            return self._last_diagnostics
        diagnostics = self._validate(buffer_text)
        self._last_hash = digest
        self._last_diagnostics = diagnostics
        return diagnostics

    # ------------------------------------------------------------------

    def _validate(self, buffer_text: str) -> list[Diagnostic]:
        self.validations_run += 1
        driver = get_driver(self._format)
        try:
            instances = driver.parse(buffer_text, source="<buffer>", scope=self._scope)
        except DriverError as error:
            return [Diagnostic(_line_of_error(str(error)), "error", str(error))]
        store = ConfigStore()
        store.add_all(self._context)
        store.add_all(instances)
        session = ValidationSession(store=store, runtime=self._runtime)
        try:
            report = session.validate_statements(list(self._statements))
        except ConfValleyError as error:
            return [Diagnostic(0, "error", str(error))]
        out = []
        for violation in report.violations:
            line = _locate(buffer_text, violation.key, violation.value)
            out.append(
                Diagnostic(line, "error", violation.message, key=violation.key)
            )
        return out


def _locate(buffer_text: str, key_text: str, value: str) -> int:
    """Best-effort mapping of a violation back to a buffer line.

    Drivers do not track source positions, so we search for the offending
    parameter name — preferring a line that also contains the offending
    value — which is exact for line-oriented formats (INI, key-value) and a
    close hint for XML.
    """
    leaf = key_text.rsplit(".", 1)[-1].split("::")[0].split("[")[0]
    if not leaf:
        return 0
    candidate = 0
    for number, line in enumerate(buffer_text.splitlines(), start=1):
        if leaf in line:
            if value and value in line:
                return number
            if candidate == 0:
                candidate = number
    return candidate


def _line_of_error(message: str) -> int:
    """Extract ``:N:`` line info that drivers embed in their messages."""
    import re

    match = re.search(r":(\d+):", message)
    return int(match.group(1)) if match else 0


def check_spec_text(spec_text: str) -> list[Diagnostic]:
    """Live feedback while editing a CPL specification file.

    Reports syntax errors (with position) and two semantic lints the
    evaluator would only hit at run time: references to undefined macros
    and unknown predicate primitives.
    """
    try:
        program = parse(spec_text)
    except CPLSyntaxError as error:
        return [Diagnostic(error.line, "error", error.message)]

    from ..predicates import is_registered

    defined_macros: set[str] = set()
    diagnostics: list[Diagnostic] = []

    def walk_predicates(node, line):
        stack = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, (list, tuple)):
                stack.extend(current)
            elif isinstance(current, ast.MacroRef):
                if current.name not in defined_macros:
                    diagnostics.append(
                        Diagnostic(line, "error", f"undefined macro @{current.name}")
                    )
            elif isinstance(current, ast.PrimitiveCall):
                if not is_registered(current.name):
                    diagnostics.append(
                        Diagnostic(
                            line, "error", f"unknown predicate {current.name!r}"
                        )
                    )
            elif hasattr(current, "__dataclass_fields__"):
                for name in current.__dataclass_fields__:
                    value = getattr(current, name)
                    if isinstance(value, (list, tuple)):
                        stack.extend(value)
                    elif isinstance(value, ast.Node):
                        stack.append(value)

    def walk_statements(statements):
        for statement in statements:
            line = getattr(statement, "line", 0)
            if isinstance(statement, ast.LetCmd):
                walk_predicates(statement.predicate, line)
                defined_macros.add(statement.name)
            elif isinstance(statement, ast.SpecStatement):
                walk_predicates(statement.steps, line)
            elif isinstance(statement, (ast.NamespaceBlock, ast.CompartmentBlock)):
                walk_statements(statement.body)
            elif isinstance(statement, ast.IfStatement):
                walk_predicates(statement.condition.spec.steps, line)
                walk_statements(statement.then)
                walk_statements(statement.otherwise)

    walk_statements(program.statements)
    return diagnostics
