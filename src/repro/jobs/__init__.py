"""Asynchronous validation jobs (``repro.jobs``) — the service write-path.

The paper deploys ConfValley as a *shared validation service* inside the
deployment workflow (§3.2, §7): engineers submit configuration changes,
the service validates them at scale, and verdicts come back out of band.
Earlier layers made scanning fast (``repro.parallel``), fault-tolerant
(``repro.resilience``) and observable (``repro.observability``) — this
package adds the missing ingestion side:

* :mod:`.model` — :class:`ValidationJob` records, the
  ``QUEUED→RUNNING→DONE/FAILED/CANCELLED/INTERRUPTED`` state machine, and
  the machine-readable verdict schema shared with ``gate --json``;
* :mod:`.journal` — the durable append-only JSON-lines journal with
  atomic rotation and crash recovery;
* :mod:`.queue` — the bounded priority queue plus admission control
  (depth cap, per-tenant in-flight limits, token-bucket rate limiting)
  that rejects with structured backpressure errors instead of blocking;
* :mod:`.worker` — the worker pool draining the queue through
  :class:`~repro.core.session.ValidationSession` with per-job
  timeout/cancellation and graceful drain;
* :mod:`.service` — :class:`JobService`, the facade wiring it together,
  embedded by ``confvalley service --jobs`` and exposed over HTTP via
  ``POST /jobs`` on the operator endpoint.

Job execution reports are byte-identical (``fingerprint()``) to an
equivalent direct ``confvalley validate`` run — asynchrony changes *when*
a verdict arrives, never *what* it says.
"""

from __future__ import annotations

from .journal import JobJournal
from .model import (
    EXIT_ADMIT,
    EXIT_ERROR,
    EXIT_REJECT,
    AdmissionError,
    JobState,
    ValidationJob,
    error_verdict,
    verdict_payload,
)
from .queue import AdmissionController, JobQueue, TokenBucket
from .service import JobService, parse_source_ref
from .worker import JobExecutor, WorkerPool

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "EXIT_ADMIT",
    "EXIT_ERROR",
    "EXIT_REJECT",
    "JobExecutor",
    "JobJournal",
    "JobQueue",
    "JobService",
    "JobState",
    "TokenBucket",
    "ValidationJob",
    "WorkerPool",
    "error_verdict",
    "parse_source_ref",
    "verdict_payload",
]
