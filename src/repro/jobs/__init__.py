"""Asynchronous validation jobs (``repro.jobs``) — the service write-path.

The paper deploys ConfValley as a *shared validation service* inside the
deployment workflow (§3.2, §7): engineers submit configuration changes,
the service validates them at scale, and verdicts come back out of band.
Earlier layers made scanning fast (``repro.parallel``), fault-tolerant
(``repro.resilience``) and observable (``repro.observability``) — this
package adds the missing ingestion side:

* :mod:`.model` — :class:`ValidationJob` records, the
  ``QUEUED→RUNNING→DONE/FAILED/CANCELLED/INTERRUPTED`` state machine, and
  the machine-readable verdict schema shared with ``gate --json``;
* :mod:`.journal` — the durable append-only JSON-lines journal with
  atomic rotation and crash recovery;
* :mod:`.queue` — the bounded priority queue plus admission control
  (depth cap, per-tenant in-flight limits, token-bucket rate limiting)
  that rejects with structured backpressure errors instead of blocking;
* :mod:`.worker` — the in-process worker pool *and* the standalone
  worker process (``confvalley worker``) draining jobs through
  :class:`~repro.core.session.ValidationSession` with per-job
  timeout/cancellation and graceful drain;
* :mod:`.lease` — lease-based claiming, heartbeat renewal and expiry
  detection for multi-process execution over a shared journal directory;
* :mod:`.webhook` — completion callbacks: the terminal job record POSTed
  to the submitter's ``callback_url`` with retries and a dead-letter ring;
* :mod:`.service` — :class:`JobService`, the facade wiring it together,
  embedded by ``confvalley service --jobs`` and exposed over HTTP via
  ``POST /jobs`` on the operator endpoint.

Job execution reports are byte-identical (``fingerprint()``) to an
equivalent direct ``confvalley validate`` run — asynchrony changes *when*
a verdict arrives, never *what* it says.
"""

from __future__ import annotations

from .journal import (
    JobJournal,
    JournalTail,
    apply_worker_event,
    fold_merged,
    read_events,
)
from .lease import DEFAULT_LEASE_TTL, JobDirectory, Lease, LeaseStore
from .model import (
    EXIT_ADMIT,
    EXIT_ERROR,
    EXIT_REJECT,
    AdmissionError,
    JobState,
    ValidationJob,
    error_verdict,
    verdict_payload,
)
from .queue import AdmissionController, JobQueue, TokenBucket
from .service import JobService, parse_source_ref
from .webhook import WebhookDelivery, WebhookDispatcher
from .worker import ExternalWorker, JobExecutor, WorkerPool, WorkerSupervisor

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "DEFAULT_LEASE_TTL",
    "EXIT_ADMIT",
    "EXIT_ERROR",
    "EXIT_REJECT",
    "ExternalWorker",
    "JobDirectory",
    "JobExecutor",
    "JobJournal",
    "JobQueue",
    "JobService",
    "JobState",
    "JournalTail",
    "Lease",
    "LeaseStore",
    "TokenBucket",
    "ValidationJob",
    "WebhookDelivery",
    "WebhookDispatcher",
    "WorkerPool",
    "WorkerSupervisor",
    "apply_worker_event",
    "error_verdict",
    "fold_merged",
    "parse_source_ref",
    "read_events",
    "verdict_payload",
]
