"""Durable job journal: append-only JSON-lines with atomic rotation.

The job service must not lose accepted work across a crash or restart
(the paper's service sits inside a deployment workflow — a submitted
change that silently vanishes is worse than a rejected one).  Durability
is a classic write-ahead log, kept deliberately boring:

* every state-changing operation appends **one JSON object per line**
  (``submit`` carries the full job record, ``update`` carries the changed
  fields) and flushes before the in-memory transition is considered done;
* on startup :meth:`replay` folds the event stream back into the final
  job records; interpretation of non-terminal states (re-queue vs mark
  interrupted) belongs to the :class:`~repro.jobs.service.JobService`,
  the journal only reconstructs facts;
* a half-written trailing line (the crash case) is ignored — everything
  before it already flushed, so recovery loses at most the transition
  that was mid-write when the process died;
* :meth:`rotate` compacts the event stream into a single ``snapshot``
  line carrying the live jobs, written to a same-directory temp file and
  published with ``os.replace`` — readers and crashes never observe a
  torn journal.  Rotation is triggered automatically every
  ``rotate_after`` appends (terminal jobs evicted by retention drop out
  of the snapshot, which is how the journal's disk footprint is bounded).

``fsync`` on every append is off by default — a flush survives a process
crash (the kernel owns the page), which is the failure mode the service
recovers from; pass ``fsync=True`` where power-loss durability matters
more than submission latency.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Callable, Iterable, Optional

from ..observability import get_logger

__all__ = ["JobJournal"]

_log = get_logger("jobs.journal")


class JobJournal:
    """Append-only JSON-lines journal for :class:`ValidationJob` records."""

    def __init__(
        self,
        path: str,
        rotate_after: int = 4096,
        fsync: bool = False,
        snapshot_source: Optional[Callable[[], Iterable[dict]]] = None,
    ):
        self.path = path
        self.rotate_after = max(1, rotate_after)
        self.fsync = fsync
        #: called at auto-rotation time to obtain the live job dicts the
        #: compacted journal must carry (wired by the JobService)
        self.snapshot_source = snapshot_source
        self._lock = threading.Lock()
        self._handle = None
        self._appended = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)

    # -- writing -------------------------------------------------------

    def _open(self):
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, event: dict) -> None:
        """Durably record one event, auto-rotating when the log grows."""
        line = json.dumps(event, sort_keys=True, separators=(",", ":"))
        with self._lock:
            handle = self._open()
            handle.write(line + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
            self._appended += 1
            due = self._appended >= self.rotate_after
        if due and self.snapshot_source is not None:
            self.rotate(self.snapshot_source())

    def rotate(self, jobs: Iterable[dict]) -> None:
        """Compact the journal to one snapshot line (atomic replace)."""
        snapshot = json.dumps(
            {"event": "snapshot", "jobs": list(jobs)},
            sort_keys=True,
            separators=(",", ":"),
        )
        temp_path = os.path.join(
            os.path.dirname(os.path.abspath(self.path)),
            f".{os.path.basename(self.path)}.{os.getpid()}.tmp",
        )
        with self._lock:
            with open(temp_path, "w", encoding="utf-8") as handle:
                handle.write(snapshot + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            os.replace(temp_path, self.path)
            self._appended = 0
            _log.info("journal rotated", extra={"path": self.path})

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # -- reading -------------------------------------------------------

    def replay(self) -> list[dict]:
        """The event stream from disk (snapshot first when compacted).

        A torn trailing line — the signature of a crash mid-append — is
        dropped; a torn line anywhere else is skipped with a warning so a
        single corrupt event cannot take the whole journal hostage.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return []
        events = []
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                if index == len(lines) - 1:
                    _log.warning(
                        "dropping torn trailing journal line",
                        extra={"path": self.path, "line": index + 1},
                    )
                else:
                    _log.warning(
                        "skipping corrupt journal line",
                        extra={"path": self.path, "line": index + 1},
                    )
        return events

    @staticmethod
    def fold(events: list[dict], job_factory) -> dict:
        """Fold an event stream into ``{job_id: job}`` final records.

        ``job_factory`` is :meth:`ValidationJob.from_dict` (passed in to
        keep the journal model-agnostic).  Unknown event types and updates
        for unknown jobs are ignored — forward compatibility over
        strictness, the journal is an internal file.
        """
        jobs: dict = {}
        for event in events:
            kind = event.get("event")
            if kind == "snapshot":
                jobs = {}
                for record in event.get("jobs", []):
                    job = job_factory(record)
                    jobs[job.id] = job
            elif kind == "submit":
                job = job_factory(event.get("job", {}))
                jobs[job.id] = job
            elif kind == "update":
                job = jobs.get(event.get("id"))
                if job is None:
                    continue
                for key, value in event.get("fields", {}).items():
                    if hasattr(job, key):
                        setattr(job, key, value)
        return jobs
