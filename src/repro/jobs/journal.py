"""Durable job journal: append-only JSON-lines with atomic rotation.

The job service must not lose accepted work across a crash or restart
(the paper's service sits inside a deployment workflow — a submitted
change that silently vanishes is worse than a rejected one).  Durability
is a classic write-ahead log, kept deliberately boring:

* every state-changing operation appends **one JSON object per line**
  (``submit`` carries the full job record, ``update`` carries the changed
  fields) and flushes before the in-memory transition is considered done;
* on startup :meth:`replay` folds the event stream back into the final
  job records; interpretation of non-terminal states (re-queue vs mark
  interrupted) belongs to the :class:`~repro.jobs.service.JobService`,
  the journal only reconstructs facts;
* a half-written trailing line (the crash case) is ignored — everything
  before it already flushed, so recovery loses at most the transition
  that was mid-write when the process died;
* :meth:`rotate` compacts the event stream into a single ``snapshot``
  line carrying the live jobs, written to a same-directory temp file and
  published with ``os.replace`` — readers and crashes never observe a
  torn journal.  The snapshot is materialized **under the writer lock**
  (``snapshot_source`` may be a callable evaluated inside the critical
  section), so an appender on another thread can never slip an event
  between the snapshot and the file swap — the event either precedes the
  snapshot (and is folded into it) or lands in the fresh journal after
  the swap.  Rotation is triggered automatically every ``rotate_after``
  appends (terminal jobs evicted by retention drop out of the snapshot,
  which is how the journal's disk footprint is bounded).

**Multi-process partitioning** (``repro.jobs.lease``): when jobs execute
in external worker processes, each writer owns its *own* append-only
partition file — the coordinator writes ``coordinator.jsonl``, worker
``w1`` writes ``workers/w1.jsonl`` — so writers never contend on one
file and a crashed writer can only tear its own trailing line.
:func:`fold_merged` folds the coordinator stream first (the existing
``snapshot``/``submit``/``update`` grammar), then applies worker-stream
``claim``/``terminal`` events under **epoch fencing**: a claim applies
only to a QUEUED job at exactly ``epoch + 1``, a terminal result only to
the RUNNING job at the same epoch and worker.  Replaying a partition
twice, or replaying a zombie worker's stale result after the job was
re-queued, is therefore a no-op — the property the partitioned-replay
tests pin down.

``fsync`` on every append is off by default — a flush survives a process
crash (the kernel owns the page), which is the failure mode the service
recovers from; pass ``fsync=True`` where power-loss durability matters
more than submission latency.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Callable, Iterable, Optional, Union

from ..observability import get_logger

__all__ = [
    "JobJournal",
    "JournalTail",
    "read_events",
    "apply_coordinator_events",
    "apply_worker_event",
    "fold_merged",
]

_log = get_logger("jobs.journal")


def _parse_lines(lines: list[str], path: str) -> list[dict]:
    """JSON-lines → events; torn trailing line dropped, others skipped."""
    events = []
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except ValueError:
            if index == len(lines) - 1:
                _log.warning(
                    "dropping torn trailing journal line",
                    extra={"path": path, "line": index + 1},
                )
            else:
                _log.warning(
                    "skipping corrupt journal line",
                    extra={"path": path, "line": index + 1},
                )
    return events


def read_events(path: str) -> list[dict]:
    """Read one journal/partition file (missing file = no events)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        return []
    return _parse_lines(lines, path)


class JobJournal:
    """Append-only JSON-lines journal for :class:`ValidationJob` records."""

    def __init__(
        self,
        path: str,
        rotate_after: int = 4096,
        fsync: bool = False,
        snapshot_source: Optional[Callable[[], Iterable[dict]]] = None,
    ):
        self.path = path
        self.rotate_after = max(1, rotate_after)
        self.fsync = fsync
        #: called at auto-rotation time to obtain the live job dicts the
        #: compacted journal must carry (wired by the JobService).  It is
        #: invoked while the writer lock is held, so it must not block on
        #: a lock held by a thread that is itself waiting to append.
        self.snapshot_source = snapshot_source
        self._lock = threading.Lock()
        self._handle = None
        self._appended = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)

    # -- writing -------------------------------------------------------

    def _open(self):
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, event: dict) -> None:
        """Durably record one event, auto-rotating when the log grows."""
        line = json.dumps(event, sort_keys=True, separators=(",", ":"))
        with self._lock:
            handle = self._open()
            handle.write(line + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
            self._appended += 1
            if (
                self._appended >= self.rotate_after
                and self.snapshot_source is not None
            ):
                # snapshot + swap inside this critical section: a
                # concurrent appender blocks on the lock, so no event can
                # land between the snapshot and the os.replace and be
                # silently dropped by the compaction
                self._rotate_locked(self.snapshot_source)

    def rotate(
        self,
        jobs: Union[Iterable[dict], Callable[[], Iterable[dict]]],
    ) -> None:
        """Compact the journal to one snapshot line (atomic replace).

        Pass a *callable* to have the snapshot materialized under the
        writer lock — the only form that is safe while other threads may
        still be appending (an iterable built beforehand can miss events
        appended between its construction and the swap).
        """
        with self._lock:
            self._rotate_locked(jobs)

    def _rotate_locked(
        self,
        jobs: Union[Iterable[dict], Callable[[], Iterable[dict]]],
    ) -> None:
        if callable(jobs):
            jobs = jobs()
        snapshot = json.dumps(
            {"event": "snapshot", "jobs": list(jobs)},
            sort_keys=True,
            separators=(",", ":"),
        )
        temp_path = os.path.join(
            os.path.dirname(os.path.abspath(self.path)),
            f".{os.path.basename(self.path)}.{os.getpid()}.tmp",
        )
        with open(temp_path, "w", encoding="utf-8") as handle:
            handle.write(snapshot + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        os.replace(temp_path, self.path)
        self._appended = 0
        _log.info("journal rotated", extra={"path": self.path})

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # -- reading -------------------------------------------------------

    def replay(self) -> list[dict]:
        """The event stream from disk (snapshot first when compacted).

        A torn trailing line — the signature of a crash mid-append — is
        dropped; a torn line anywhere else is skipped with a warning so a
        single corrupt event cannot take the whole journal hostage.
        """
        return read_events(self.path)

    @staticmethod
    def fold(events: list[dict], job_factory) -> dict:
        """Fold an event stream into ``{job_id: job}`` final records.

        ``job_factory`` is :meth:`ValidationJob.from_dict` (passed in to
        keep the journal model-agnostic).  Unknown event types and updates
        for unknown jobs are ignored — forward compatibility over
        strictness, the journal is an internal file.
        """
        return apply_coordinator_events({}, events, job_factory)


def apply_coordinator_events(jobs: dict, events: list[dict], job_factory) -> dict:
    """Apply coordinator-partition events to an existing fold state.

    The incremental form of :meth:`JobJournal.fold` — worker processes
    tailing the coordinator partition apply each poll's new events to the
    state they already hold instead of re-reading the file.  A
    ``snapshot`` event (the first line after a rotation) replaces the
    whole state, which is exactly what the post-rotation stream means.
    """
    for event in events:
        kind = event.get("event")
        if kind == "snapshot":
            jobs.clear()
            for record in event.get("jobs", []):
                job = job_factory(record)
                jobs[job.id] = job
        elif kind == "submit":
            job = job_factory(event.get("job", {}))
            jobs[job.id] = job
        elif kind == "update":
            job = jobs.get(event.get("id"))
            if job is None:
                continue
            for key, value in event.get("fields", {}).items():
                if hasattr(job, key):
                    setattr(job, key, value)
    return jobs


class JournalTail:
    """Incremental reader of one append-only partition file.

    Remembers the byte offset of the last fully-parsed line and returns
    only events appended since.  A partial trailing line (a writer racing
    the read, or a crash mid-append) is left unconsumed — it is re-read
    on the next poll once (if ever) its newline lands.  A file that
    *shrank* (the coordinator partition after a rotation) resets the tail
    to the start, and the caller gets the snapshot-led stream again.
    """

    def __init__(self, path: str):
        self.path = path
        self.offset = 0

    def poll(self) -> tuple[list[dict], bool]:
        """``(new events, reset)`` — ``reset`` means re-read from zero."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return [], False
        reset = size < self.offset
        if reset:
            self.offset = 0
        if size == self.offset:
            return [], reset
        with open(self.path, "rb") as handle:
            handle.seek(self.offset)
            chunk = handle.read(size - self.offset)
        end = chunk.rfind(b"\n")
        if end < 0:  # no complete line yet
            return [], reset
        complete = chunk[: end + 1]
        self.offset += end + 1
        lines = complete.decode("utf-8", "replace").splitlines()
        events = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                _log.warning(
                    "skipping corrupt journal line",
                    extra={"path": self.path},
                )
        return events, reset


# ---------------------------------------------------------------------------
# Partitioned replay (multi-process mode)
# ---------------------------------------------------------------------------

#: worker-partition event kinds, in the order they apply within one epoch
_WORKER_EVENT_RANK = {"claim": 0, "terminal": 1}


def apply_worker_event(job, event: dict) -> bool:
    """Apply one worker-partition event to a job record; True = applied.

    The epoch fence (see the module docstring) makes application
    idempotent and order-insensitive across partitions:

    * ``claim`` applies only to a QUEUED job at exactly ``epoch + 1`` —
      a duplicate claim, a claim for a job another worker already runs,
      or a stale claim from before a re-queue all fall through;
    * ``terminal`` applies only to the RUNNING job at the *same* epoch
      and worker — a zombie worker finishing after its lease expired and
      the job was re-queued writes an event nobody honors.
    """
    kind = event.get("event")
    epoch = event.get("epoch", 0)
    if kind == "claim":
        if job.state == "QUEUED" and epoch == job.epoch + 1:
            job.state = "RUNNING"
            job.epoch = epoch
            job.worker = event.get("worker", "")
            job.attempts += 1
            if event.get("at") is not None:
                job.started_at = event["at"]
            return True
        return False
    if kind == "terminal":
        if (
            job.state == "RUNNING"
            and epoch == job.epoch
            and event.get("worker", "") == job.worker
        ):
            job.state = event.get("state", "FAILED")
            job.result = event.get("result")
            job.error = event.get("error", "")
            if event.get("at") is not None:
                job.finished_at = event["at"]
            return True
        return False
    return False


def fold_merged(
    coordinator_events: list[dict],
    worker_streams: dict[str, list[dict]],
    job_factory,
) -> dict:
    """Fold the coordinator stream, then the worker partitions, into jobs.

    ``worker_streams`` maps partition name → its event list.  Worker
    events are applied per job in ``(epoch, kind, partition, position)``
    order — a deterministic total order that does not depend on which
    partition happened to be listed first, so every process replaying the
    same directory reconstructs byte-identical job records.
    """
    jobs = JobJournal.fold(coordinator_events, job_factory)
    per_job: dict[str, list[tuple]] = {}
    for name in sorted(worker_streams):
        for position, event in enumerate(worker_streams[name]):
            kind = event.get("event")
            if kind not in _WORKER_EVENT_RANK:
                continue
            job_id = event.get("id")
            if not job_id:
                continue
            per_job.setdefault(job_id, []).append((
                event.get("epoch", 0),
                _WORKER_EVENT_RANK[kind],
                name,
                position,
                event,
            ))
    for job_id, entries in per_job.items():
        job = jobs.get(job_id)
        if job is None:
            continue  # claim for a job the coordinator never journalled
        entries.sort(key=lambda entry: entry[:4])
        for *__, event in entries:
            apply_worker_event(job, event)
    return jobs
