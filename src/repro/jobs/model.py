"""Validation jobs: the unit of work of the asynchronous job service.

The paper deploys ConfValley as a *shared validation service* inside the
deployment workflow (§3.2, §7): engineers submit configuration changes and
get verdicts back.  A :class:`ValidationJob` is one such submission — what
to validate (spec text, a registered spec name, or a server-side spec
path), against which sources (``FMT:PATH[:SCOPE]`` references or inline
payloads), and under which constraints (priority, tenant, timeout) — plus
the full lifecycle record: the QUEUED→RUNNING→terminal state machine,
timestamps, attempt counts and the result verdict.

Jobs are plain JSON-shaped dataclasses so they serialize losslessly into
the durable journal (:mod:`repro.jobs.journal`) and over the HTTP API
(:mod:`repro.observability.server`).

The **verdict payload** produced for a finished job
(:func:`verdict_payload`) is the same machine-readable schema
``confvalley gate --json`` emits, so CI pipelines consume one format for
both synchronous gating and asynchronous submission; the shared exit-code
semantics are :data:`EXIT_ADMIT` / :data:`EXIT_REJECT` / :data:`EXIT_ERROR`.
"""

from __future__ import annotations

import hashlib
import uuid
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfValleyError

__all__ = [
    "JobState",
    "ValidationJob",
    "AdmissionError",
    "verdict_payload",
    "error_verdict",
    "report_fingerprint_digest",
    "EXIT_ADMIT",
    "EXIT_REJECT",
    "EXIT_ERROR",
]

#: CI exit-code contract shared by ``gate --json`` and ``submit --wait``:
#: 0 = the change is admitted, 1 = the verdict rejects it, 2 = the
#: validation itself could not run (bad input, unreachable service, crash).
EXIT_ADMIT = 0
EXIT_REJECT = 1
EXIT_ERROR = 2

#: violations carried verbatim in a job result before truncation — the
#: full count is always present, the details are bounded so a pathological
#: submission cannot balloon the journal and the listing endpoint
MAX_RESULT_VIOLATIONS = 50


class JobState:
    """The job state machine: ``QUEUED → RUNNING → terminal``.

    ``INTERRUPTED`` is the crash-recovery dead end: a job found mid-flight
    in the journal is re-queued exactly once; a second interrupted attempt
    means the job itself is implicated, and it is parked rather than
    retried forever.

    ``EXPIRED`` is the multi-process analogue: a job whose worker's lease
    lapsed is re-queued within the service's retry budget
    (``max_requeues``); once the budget is spent the job is parked as
    EXPIRED instead of bouncing between crashing workers forever.
    """

    QUEUED = "QUEUED"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"
    INTERRUPTED = "INTERRUPTED"
    EXPIRED = "EXPIRED"

    TERMINAL = frozenset({DONE, FAILED, CANCELLED, INTERRUPTED, EXPIRED})
    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED, INTERRUPTED, EXPIRED)


class AdmissionError(ConfValleyError):
    """A submission was rejected by admission control (backpressure).

    Structured so the HTTP layer can render a 429 with an actionable body
    and the metrics layer can count rejections by ``reason`` (one of
    ``queue-full``, ``tenant-limit``, ``rate-limited``).  ``retry_after``
    is a best-effort hint in seconds, ``None`` when retrying immediately
    after completed work is the right move (queue/tenant capacity).
    """

    def __init__(
        self,
        reason: str,
        message: str,
        retry_after: Optional[float] = None,
        **detail,
    ):
        self.reason = reason
        self.retry_after = retry_after
        self.detail = detail
        super().__init__(message)

    def to_dict(self) -> dict:
        payload = {
            "error": "backpressure",
            "reason": self.reason,
            "message": str(self),
        }
        if self.retry_after is not None:
            payload["retry_after"] = round(self.retry_after, 3)
        payload.update(self.detail)
        return payload


def new_job_id() -> str:
    """An opaque, URL-safe job identifier."""
    return "job-" + uuid.uuid4().hex[:12]


@dataclass
class ValidationJob:
    """One submitted validation request and its full lifecycle record."""

    id: str = field(default_factory=new_job_id)
    #: client-chosen duplicate-suppression key ('' = no deduplication)
    idempotency_key: str = ""
    #: exactly one of the three spec references is set per job:
    #: inline CPL text …
    spec_text: str = ""
    #: … or a spec registered on the service by name …
    spec_name: str = ""
    #: … or a server-side spec file path
    spec_path: str = ""
    #: source descriptors: {"format","path","scope"} references resolved on
    #: the service host, or {"format","text","source","scope"} inline payloads
    sources: list = field(default_factory=list)
    #: "full" validates everything; "delta" diffs ``sources`` against
    #: ``baseline_sources`` and evaluates only the statements the change
    #: can affect (repro.core.incremental.DependencyIndex selection);
    #: "workflow" runs the composed pipeline in ``workflow``
    mode: str = "full"
    #: workflow definition for ``mode: workflow`` jobs — the same mapping
    #: schema ``Workflow.from_dict`` accepts (name + steps with gates)
    workflow: Optional[dict] = None
    #: live per-step statuses of a running/finished workflow job, updated
    #: as each step settles — the progress view behind ``GET /jobs/<id>``
    workflow_steps: Optional[list] = None
    #: the before-the-change sources a delta job diffs against (same
    #: descriptor shapes as ``sources``; empty = everything is new)
    baseline_sources: list = field(default_factory=list)
    #: larger runs first; ties drain in submission order
    priority: int = 0
    tenant: str = "default"
    #: wall-clock budget for the run in seconds (None = service default)
    timeout: Optional[float] = None
    #: evaluation strategy forwarded to the session (None = serial)
    executor: Optional[str] = None
    #: per-job shard-supervision knobs: {"shard_timeout", "shard_retries"}
    resilience: Optional[dict] = None
    #: POSTed the terminal job record on completion (see
    #: :mod:`repro.jobs.webhook`; '' = no callback)
    callback_url: str = ""
    state: str = JobState.QUEUED
    #: Unix wall-clock timestamps (None until the transition happens)
    submitted_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: times the job entered RUNNING
    attempts: int = 0
    #: times crash recovery or lease expiry re-queued a mid-flight attempt
    requeues: int = 0
    #: fencing token: the epoch of the most recent granted claim (0 =
    #: never claimed).  A claim is granted at ``epoch + 1``; terminal
    #: events carrying a stale epoch are ignored on replay/absorb, which
    #: is what makes a zombie worker's late result harmless.
    epoch: int = 0
    #: id of the worker that holds (or last held) the claim
    worker: str = ""
    cancel_requested: bool = False
    #: verdict payload once terminal (see :func:`verdict_payload`)
    result: Optional[dict] = None
    #: failure explanation for FAILED / INTERRUPTED / EXPIRED jobs
    error: str = ""
    #: webhook delivery record once enqueued:
    #: {"state": "pending"|"delivered"|"dead-letter", "attempts": n}
    webhook: Optional[dict] = None
    #: distributed-trace origin opened at submit: {"trace_id", "span_id"}.
    #: A claiming worker roots its span segment at this context so the
    #: coordinator can stitch one tree across processes (None = untraced).
    trace: Optional[dict] = None

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    @property
    def wait_seconds(self) -> Optional[float]:
        """Queue wait: submission to first start (None while queued)."""
        if self.submitted_at is None or self.started_at is None:
            return None
        return max(0.0, self.started_at - self.submitted_at)

    @property
    def run_seconds(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return max(0.0, self.finished_at - self.started_at)

    def spec_reference(self) -> str:
        """Human-readable 'what does this job validate' label."""
        if self.mode == "workflow" and self.workflow is not None:
            meta = self.workflow.get("workflow") or {}
            name = meta.get("name") or self.workflow.get("name") or "workflow"
            return f"workflow:{name}"
        if self.spec_name:
            return f"spec:{self.spec_name}"
        if self.spec_path:
            return self.spec_path
        digest = hashlib.sha256(self.spec_text.encode("utf-8")).hexdigest()
        return f"inline:{digest[:12]}"

    def to_dict(self) -> dict:
        """Lossless JSON form (journal lines, ``GET /jobs/<id>``)."""
        return {
            "id": self.id,
            "idempotency_key": self.idempotency_key,
            "spec_text": self.spec_text,
            "spec_name": self.spec_name,
            "spec_path": self.spec_path,
            "sources": list(self.sources),
            "mode": self.mode,
            "baseline_sources": list(self.baseline_sources),
            "workflow": self.workflow,
            "workflow_steps": self.workflow_steps,
            "priority": self.priority,
            "tenant": self.tenant,
            "timeout": self.timeout,
            "executor": self.executor,
            "resilience": self.resilience,
            "callback_url": self.callback_url,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "requeues": self.requeues,
            "epoch": self.epoch,
            "worker": self.worker,
            "cancel_requested": self.cancel_requested,
            "result": self.result,
            "error": self.error,
            "webhook": self.webhook,
            "trace": self.trace,
        }

    def summary(self) -> dict:
        """Listing row: everything except the (possibly large) spec text."""
        return {
            "id": self.id,
            "state": self.state,
            "spec": self.spec_reference(),
            "mode": self.mode,
            "tenant": self.tenant,
            "priority": self.priority,
            "idempotency_key": self.idempotency_key,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "requeues": self.requeues,
            "worker": self.worker,
            "verdict": (self.result or {}).get("verdict"),
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ValidationJob":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in data.items() if k in known})


def report_fingerprint_digest(report) -> str:
    """SHA-256 over :meth:`ValidationReport.fingerprint` — the compact,
    transport-friendly determinism token job results carry.  Two runs have
    equal digests iff their report fingerprints are byte-identical."""
    return hashlib.sha256(report.fingerprint().encode("utf-8")).hexdigest()


def verdict_payload(
    report,
    limit: int = MAX_RESULT_VIOLATIONS,
    delta: Optional[dict] = None,
    shadow: Optional[dict] = None,
    workflow: Optional[dict] = None,
) -> dict:
    """Machine-readable verdict for a finished validation run.

    The one schema shared by job results (``GET /jobs/<id>``) and
    ``confvalley gate --json``:  ``verdict`` is ``admit`` or ``reject``
    (``error`` only via :func:`error_verdict`), and ``fingerprint`` is the
    SHA-256 digest of the report's canonical fingerprint, so an
    asynchronous run can be compared against a direct ``validate`` of the
    same spec + sources.

    ``delta`` — present for ``mode: delta`` jobs — records how the run
    was scoped: statements selected vs skipped and the change summary
    that drove selection.  A delta verdict covers only the affected
    statements, so its fingerprint is *not* comparable to a full run's.

    ``shadow`` — present when the serving validator runs an inferred-spec
    lifecycle — reports how the service's *candidate* specs fared against
    this job's store.  Purely advisory: shadow violations never affect
    ``verdict``, ``passed``, or ``fingerprint`` (the fingerprint is
    computed from the report alone, which the shadow run never touches).

    ``workflow`` — present for ``mode: workflow`` jobs — records the run's
    per-step outcome (statuses, timings, splice flags).  The fingerprint
    still covers only the merged validation report, so a pure-validation
    workflow job compares equal to a direct scan of the same inputs.
    """
    violations = [violation.to_dict() for violation in report.violations[:limit]]
    payload = {
        "verdict": "admit" if report.passed else "reject",
        "passed": report.passed,
        "violations": len(report.violations),
        "violations_shown": len(violations),
        "violation_details": violations,
        "specs_evaluated": report.specs_evaluated,
        "specs_failed": report.specs_failed,
        "specs_skipped": report.specs_skipped,
        "suppressed": report.suppressed,
        "instances_checked": report.instances_checked,
        "elapsed_seconds": round(report.elapsed_seconds, 6),
        "fingerprint": report_fingerprint_digest(report),
        "health": report.health.status,
    }
    if delta is not None:
        payload["delta"] = delta
    if shadow is not None:
        payload["shadow"] = shadow
    if workflow is not None:
        payload["workflow"] = workflow
    return payload


def error_verdict(message: str) -> dict:
    """The ``error`` arm of the verdict schema (run never produced a report)."""
    return {
        "verdict": "error",
        "passed": False,
        "violations": 0,
        "error": message,
    }
