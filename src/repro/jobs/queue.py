"""Bounded priority queue and admission control for the job service.

The paper's service runs "under latency pressure" inside a deployment
workflow; an async write-path that accepts unbounded work converts
overload into unbounded queueing delay and memory growth.  This module
takes the opposite stance: **reject early, reject cheaply, tell the
caller why**.

Two collaborating pieces:

* :class:`JobQueue` — a heap-ordered dispatch structure (higher
  ``priority`` first, FIFO within a priority level).  Cancelled jobs are
  removed *lazily*: cancellation just flips the job state, and
  :meth:`pop` discards entries whose job is no longer ``QUEUED`` — O(1)
  cancel, no heap surgery.  Authoritative depth/state accounting lives in
  the :class:`~repro.jobs.service.JobService`, the single writer of job
  states.
* :class:`AdmissionController` — the policy gate in front of the queue:
  depth cap, per-tenant in-flight ceilings, and a token-bucket rate
  limiter (capacity ``burst``, refill ``rate``/second on the injectable
  :mod:`repro.runtime.clock`, so tests drive it with a
  :class:`~repro.runtime.clock.FakeClock`).  Violations raise a
  structured :class:`~repro.jobs.model.AdmissionError` — the HTTP layer
  renders it as a 429, never blocking the submitter.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Callable, Optional

from ..runtime import clock as _clock
from .model import AdmissionError, JobState, ValidationJob

__all__ = ["JobQueue", "AdmissionController", "TokenBucket"]


class JobQueue:
    """Priority-ordered dispatch queue (higher priority first, then FIFO)."""

    def __init__(self):
        self._heap: list[tuple[int, int, ValidationJob]] = []
        self._counter = itertools.count()
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)

    def __len__(self) -> int:
        """Heap entries, *including* lazily-cancelled ones (internal)."""
        return len(self._heap)

    def push(self, job: ValidationJob) -> None:
        """Enqueue; caller is responsible for admission (see controller)."""
        with self._available:
            heapq.heappush(self._heap, (-job.priority, next(self._counter), job))
            self._available.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[ValidationJob]:
        """Highest-priority entry, or ``None`` after ``timeout``.

        Entries whose job left the QUEUED state (cancelled while waiting)
        are dropped silently.  The caller must re-check the job state
        under its own lock before running it — a cancel can still land
        between this pop and that check.
        """
        with self._available:
            while True:
                while self._heap:
                    __, __, job = heapq.heappop(self._heap)
                    if job.state == JobState.QUEUED:
                        return job
                if timeout is not None:
                    if not self._available.wait(timeout):
                        return None
                    timeout = 0.0  # one wake-up, then give up if still empty
                else:
                    self._available.wait()

    def wake_all(self) -> None:
        """Unblock every waiting :meth:`pop` (worker shutdown path)."""
        with self._available:
            self._available.notify_all()


class TokenBucket:
    """Classic token bucket on the injectable monotonic clock.

    ``rate`` tokens refill per second up to ``burst``; each admitted
    submission spends one.  ``rate <= 0`` disables the limiter entirely.
    """

    def __init__(self, rate: float, burst: Optional[float] = None):
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        self._tokens = self.burst
        self._last = _clock.now()
        self._lock = threading.Lock()

    def try_take(self) -> Optional[float]:
        """Spend one token; returns ``None`` on success or the seconds
        until a token will be available."""
        if self.rate <= 0:
            return None
        with self._lock:
            now = _clock.now()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return None
            return (1.0 - self._tokens) / self.rate


class AdmissionController:
    """The reject-early gate in front of the queue.

    ``depth`` and ``tenant_in_flight`` are callables into the service's
    authoritative state counts (QUEUED, and QUEUED + RUNNING per tenant) —
    the service owns the bookkeeping, the controller owns the policy.
    Checks run cheapest-first and each rejection names its reason, so
    operators can tell *which* limit is saturating from the
    ``confvalley_job_rejections_total{reason=…}`` counter alone.
    """

    QUEUE_FULL = "queue-full"
    TENANT_LIMIT = "tenant-limit"
    RATE_LIMITED = "rate-limited"

    def __init__(
        self,
        max_depth: int = 256,
        per_tenant_limit: int = 0,
        rate: float = 0.0,
        burst: Optional[float] = None,
        depth: Optional[Callable[[], int]] = None,
        tenant_in_flight: Optional[Callable[[str], int]] = None,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        #: max QUEUED + RUNNING jobs per tenant label (0 = unlimited)
        self.per_tenant_limit = per_tenant_limit
        self.bucket = TokenBucket(rate, burst)
        self._depth = depth or (lambda: 0)
        self._tenant_in_flight = tenant_in_flight or (lambda tenant: 0)

    def admit(self, job: ValidationJob) -> None:
        """Raise :class:`AdmissionError` unless the job may enqueue."""
        retry_after = self.bucket.try_take()
        if retry_after is not None:
            raise AdmissionError(
                self.RATE_LIMITED,
                f"submission rate limit exceeded "
                f"({self.bucket.rate:g}/s, burst {self.bucket.burst:g})",
                retry_after=retry_after,
                rate=self.bucket.rate,
            )
        depth = self._depth()
        if depth >= self.max_depth:
            raise AdmissionError(
                self.QUEUE_FULL,
                f"queue depth cap reached ({self.max_depth} queued)",
                depth=depth,
                max_depth=self.max_depth,
            )
        if self.per_tenant_limit > 0:
            in_flight = self._tenant_in_flight(job.tenant)
            if in_flight >= self.per_tenant_limit:
                raise AdmissionError(
                    self.TENANT_LIMIT,
                    f"tenant {job.tenant!r} has {in_flight} job(s) in flight "
                    f"(limit {self.per_tenant_limit})",
                    tenant=job.tenant,
                    in_flight=in_flight,
                    limit=self.per_tenant_limit,
                )
