"""Job execution: worker threads in-process, worker *processes* out.

Two execution shapes share one :class:`JobExecutor`:

* :class:`WorkerPool` — N daemon threads inside the service process,
  looping ``pop → execute → record`` against the in-memory queue (the
  PR 5 shape; still the default);
* :class:`ExternalWorker` — a standalone worker *process*
  (``confvalley worker --journal DIR --id NAME``) that discovers QUEUED
  jobs by replaying the shared journal directory, claims them under a
  lease (:mod:`repro.jobs.lease`), renews the lease on a heartbeat while
  executing, and appends ``claim``/``terminal`` events to its own
  journal partition — so a crash loses nothing but the worker itself,
  and the coordinating service's reaper re-queues its leased job.
  :class:`WorkerSupervisor` spawns and babysits N of them
  (``service --jobs --worker-procs N``), restarting crashed workers with
  exponential backoff.

Execution builds a fresh
:class:`~repro.core.session.ValidationSession` per job (jobs from
different tenants must not share a configuration store) but *shares* the
process's compiled-spec cache — two jobs carrying the same spec text hash
compile once, which is the steady-state shape of a CI fleet hammering one
specification corpus.  The produced report is the very report a direct
``confvalley validate`` of the same spec + sources would yield:
byte-identical ``fingerprint()``, asserted in the tests — including for
jobs that were re-queued after a worker was SIGKILLed mid-run.

Timeout and cancellation run the validation on a *runner* thread the
worker supervises: Python offers no safe way to interrupt arbitrary
evaluation mid-statement, so an expired or cancelled run is **abandoned**
— the daemon runner finishes (or not) in the background and its result is
discarded, while the worker moves on and the job is recorded FAILED
(timeout) or CANCELLED.  Abandonment is the exception path; its cost (one
parked thread until the evaluation returns) is documented in
``docs/OPERATIONS.md`` §4d.

Graceful drain (SIGTERM): :meth:`WorkerPool.drain` stops the pop loop,
lets in-flight jobs finish, and leaves QUEUED jobs untouched — they are
already durable in the journal and resume on the next start.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional

import contextlib

from ..core.session import ValidationSession
from ..observability import (
    NULL_TRACER,
    SpanContext,
    Tracer,
    TraceSegmentWriter,
    export_metrics_snapshot,
    get_logger,
    get_metrics,
)
from ..runtime import clock as _clock
from .journal import (
    JobJournal,
    JournalTail,
    apply_coordinator_events,
    apply_worker_event,
    fold_merged,
)
from .lease import (
    DEFAULT_LEASE_TTL,
    JobDirectory,
    LeaseStore,
    heartbeat_interval,
)
from .model import JobState, ValidationJob, error_verdict, verdict_payload

__all__ = [
    "JobExecutor",
    "WorkerPool",
    "ExternalWorker",
    "WorkerSupervisor",
    "DirectorySpecRegistry",
]

_log = get_logger("jobs.worker")

#: how often an executing worker re-checks cancel/timeout while the
#: runner thread is busy (seconds)
SUPERVISE_TICK = 0.05


class JobExecutor:
    """Runs one job's validation and renders its verdict."""

    def __init__(
        self,
        spec_cache=None,
        runtime=None,
        base_dir: str = ".",
        default_timeout: Optional[float] = None,
        spec_registry: Optional[dict] = None,
    ):
        self.spec_cache = spec_cache
        self.runtime = runtime
        self.base_dir = base_dir
        self.default_timeout = default_timeout
        #: named server-side specs (``spec_name`` submissions resolve here)
        self.spec_registry = spec_registry if spec_registry is not None else {}
        #: zero-argument callable returning the serving validator's current
        #: shadow (candidate) spec set as one CPL program, or "" — wired by
        #: ValidationService.attach_jobs when a lifecycle manager runs.
        #: Verdicts then carry an advisory "shadow" block.
        self.shadow_provider = None

    # -- spec / source resolution --------------------------------------

    def resolve_spec_text(self, job: ValidationJob) -> str:
        if job.spec_text:
            return job.spec_text
        if job.spec_name:
            try:
                return self.spec_registry[job.spec_name]
            except KeyError:
                raise ValueError(
                    f"unknown registered spec {job.spec_name!r} "
                    f"(known: {sorted(self.spec_registry) or 'none'})"
                )
        if job.spec_path:
            import os

            path = job.spec_path
            if not os.path.isabs(path):
                path = os.path.join(self.base_dir, path)
            with open(path, "r", encoding="utf-8") as handle:
                return handle.read()
        raise ValueError("job carries no spec (spec/spec_name/spec_path all empty)")

    def _build_session(self, job: ValidationJob) -> ValidationSession:
        resilience = job.resilience or {}
        return ValidationSession(
            runtime=self.runtime,
            base_dir=self.base_dir,
            executor=job.executor,
            spec_cache=self.spec_cache,
            shard_timeout=resilience.get("shard_timeout"),
            shard_retries=resilience.get("shard_retries", 1),
        )

    def _load_sources(self, session: ValidationSession, sources: list) -> None:
        for source in sources:
            fmt = source.get("format", "")
            if "text" in source:
                session.load_text(
                    fmt,
                    source["text"],
                    source=source.get("source", "<inline>"),
                    scope=source.get("scope", ""),
                )
            else:
                session.load_source(fmt, source["path"], source.get("scope", ""))

    def validate(self, job: ValidationJob, tracer=None):
        """The raw validation run (no supervision) → ValidationReport.

        ``mode: delta`` jobs take the incremental branch; the per-job
        delta record (selection counts, change summary) travels on the
        report as ``delta_info`` and lands in the verdict payload.

        ``tracer`` continues the job's distributed trace in this process
        (parse → evaluate → report segments); tracing only observes — the
        report, and hence its ``fingerprint()``, is identical either way.
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        if job.mode == "workflow":
            return self._validate_workflow(job, tracer)
        with tracer.span("parse", spec=job.spec_reference(), mode=job.mode):
            spec_text = self.resolve_spec_text(job)
            if job.mode != "delta":
                session = self._build_session(job)
                self._load_sources(session, job.sources)
        if job.mode == "delta":
            with tracer.span("evaluate", mode="delta"):
                return self._validate_delta(job, spec_text)
        with tracer.span("evaluate") as span:
            report = session.validate(spec_text)
            span.set(
                specs=report.specs_evaluated,
                violations=len(report.violations),
            )
        with tracer.span("report"):
            self._attach_shadow(report, session.store)
        return report

    def _validate_workflow(self, job: ValidationJob, tracer):
        """Run a ``mode: workflow`` job's composed pipeline.

        The engine executes the job's workflow definition — parse sources
        into named stores, validate, cross-check rule packs, gate
        downstream steps — and the merged report travels back through the
        ordinary verdict path.  Per-step statuses are published onto
        ``job.workflow_steps`` as each step settles, so ``GET /jobs/<id>``
        shows live progress while the job runs; the step record also rides
        on the report as ``workflow_info`` and lands in the verdict.
        """
        from ..workflows import Workflow, WorkflowEngine

        if not isinstance(job.workflow, dict):
            raise ValueError("a workflow job needs a 'workflow' definition")
        workflow = Workflow.from_dict(job.workflow)
        # the job's spec reference (inline text, registered name, or path)
        # is the default for validate steps without a spec of their own;
        # workflow jobs may instead carry specs entirely inside step options
        spec_text = ""
        if job.spec_text or job.spec_name:
            spec_text = self.resolve_spec_text(job)
        engine = WorkflowEngine(
            workflow,
            base_dir=self.base_dir,
            runtime=self.runtime,
            spec_cache=self.spec_cache,
            executor=job.executor,
            sources=job.sources,
            spec_path=job.spec_path,
            spec_text=spec_text,
            shadow_provider=self.shadow_provider,
            splice=False,  # every job is a fresh engine; nothing to splice
        )

        def progress(step_payload):
            # a fresh list assigned atomically: endpoint readers see either
            # the previous snapshot or this one, never a half-built list
            job.workflow_steps = step_payload

        outcome = engine.run(progress=progress, tracer=tracer)
        job.workflow_steps = outcome.step_payload()
        report = outcome.report
        report.workflow_info = {
            "name": outcome.workflow,
            "passed": outcome.passed,
            "steps": outcome.step_payload(),
            "elapsed_seconds": round(outcome.elapsed_seconds, 6),
        }
        return report

    def _attach_shadow(self, report, store) -> None:
        """Evaluate the service's shadow spec set against this job's store.

        Advisory only: the outcome rides on the report as ``shadow_info``
        and surfaces in the verdict's ``shadow`` block — it never touches
        the report itself, so job fingerprints stay identical whether the
        serving validator runs a lifecycle or not.
        """
        if self.shadow_provider is None:
            return
        try:
            text = self.shadow_provider()
        except Exception as exc:
            report.shadow_info = {"error": f"{type(exc).__name__}: {exc}"}
            return
        if not text:
            return
        try:
            # optimize=False matches the service's shadow lane, so the
            # composed program shares one spec-cache entry with it
            lane = ValidationSession(
                store=store, spec_cache=self.spec_cache, optimize=False
            )
            shadow_report = lane.validate(text)
        except Exception as exc:
            report.shadow_info = {"error": f"{type(exc).__name__}: {exc}"}
            return
        report.shadow_info = {
            "specs": shadow_report.specs_evaluated,
            "violations": len(shadow_report.violations),
            "instances_checked": shadow_report.instances_checked,
            "clean": not shadow_report.violations,
        }

    def _validate_delta(self, job: ValidationJob, spec_text: str):
        """Scope the run to the statements the submitted change affects.

        Diffs the job's sources against its ``baseline_sources`` (the
        before-the-change snapshot), asks the spec's dependency index for
        the affected statement indices, and evaluates only those against
        the *new* store.  The verdict therefore answers "does this change
        break anything the change can reach?" — deliberately narrower
        than a full run, and marked as such in the verdict's ``delta``
        block.  Programs the index cannot cover soundly (load/include
        commands, serial-only policy semantics) fall back to a full run
        with ``delta.mode = "full-fallback"``.
        """
        from ..core.incremental import DependencyIndex
        from ..core.report import ValidationReport
        from ..parallel.engine import WorkerState, _absorb, evaluate_shard
        from ..parallel.shards import Shard, is_parallel_safe, select_units
        from ..repository.versioned import diff_stores

        session = self._build_session(job)
        self._load_sources(session, job.sources)
        before_compile = session.store.instance_count
        statements = session.compile(spec_text)
        unsound = (
            session.store.instance_count != before_compile  # load/include
            or not is_parallel_safe(statements, session.policy)
        )
        if unsound:
            fresh = self._build_session(job)
            self._load_sources(fresh, job.sources)
            report = fresh.validate(spec_text)
            report.delta_info = {
                "mode": "full-fallback",
                "reason": "program cannot be delta-validated soundly "
                "(load/include commands or serial-only semantics)",
            }
            self._attach_shadow(report, fresh.store)
            return report

        baseline = self._build_session(job)
        self._load_sources(baseline, job.baseline_sources)
        change = diff_stores(baseline.store, session.store)
        index = None
        if self.spec_cache is not None:
            index = self.spec_cache.attachment(
                spec_text,
                session._options_fingerprint(),
                "dependency_index",
                lambda entry: DependencyIndex(list(entry)),
            )
        if index is None:
            index = DependencyIndex(statements)
        affected = set(index.affected(change))
        lets, all_units = select_units(statements)
        selected = tuple(unit for unit in all_units if unit.index in affected)
        state = WorkerState(
            store=session.store,
            runtime=session.runtime,
            policy=session.policy,
            lets=lets,
        )
        result = evaluate_shard(state, Shard("delta", selected))
        report = ValidationReport()
        for __, unit_report in result.unit_reports:
            _absorb(report, unit_report)
        report.executor = "delta"
        report.shards_run += 1
        report.elapsed_seconds = result.seconds
        report.delta_info = {
            "mode": "delta",
            "statements_total": len(all_units),
            "selected": len(selected),
            "skipped": len(all_units) - len(selected),
            "change": change.summary(),
        }
        self._attach_shadow(report, session.store)
        return report

    # -- supervised execution ------------------------------------------

    def execute(
        self,
        job: ValidationJob,
        cancel: Optional[threading.Event] = None,
        tracer=None,
    ) -> tuple[str, Optional[dict], str]:
        """Run the job under timeout/cancel supervision.

        Returns ``(state, result, error)`` where ``state`` is a terminal
        :class:`JobState` and ``result`` is the verdict payload (None only
        when the run was abandoned before producing one).  ``tracer``
        (optional) records this process's span segment of the job's
        distributed trace; the runner thread's spans parent directly on
        the tracer's origin (the job's root span).
        """
        timeout = job.timeout if job.timeout is not None else self.default_timeout
        box: dict = {}

        def run():
            try:
                box["report"] = self.validate(job, tracer=tracer)
            except Exception as exc:  # rendered into the error verdict
                box["error"] = f"{type(exc).__name__}: {exc}"

        runner = threading.Thread(
            target=run, name=f"confvalley-job-{job.id}", daemon=True
        )
        started = _clock.now()
        runner.start()
        while runner.is_alive():
            runner.join(SUPERVISE_TICK)
            if not runner.is_alive():
                break
            if cancel is not None and cancel.is_set():
                _log.warning(
                    "abandoning cancelled job", extra={"job": job.id}
                )
                return (
                    JobState.CANCELLED,
                    error_verdict("cancelled while running"),
                    "cancelled while running",
                )
            if timeout is not None and _clock.now() - started > timeout:
                message = f"job exceeded its {timeout:g}s timeout"
                _log.warning(
                    "abandoning timed-out job",
                    extra={"job": job.id, "timeout": timeout},
                )
                return JobState.FAILED, error_verdict(message), message
        if "error" in box:
            return JobState.FAILED, error_verdict(box["error"]), box["error"]
        report = box["report"]
        # a cancel that lost the race to completion still honors the work:
        # the verdict exists, so record it rather than throw it away
        delta = getattr(report, "delta_info", None)
        shadow = getattr(report, "shadow_info", None)
        workflow = getattr(report, "workflow_info", None)
        return (
            JobState.DONE,
            verdict_payload(report, delta=delta, shadow=shadow, workflow=workflow),
            "",
        )


class WorkerPool:
    """N daemon threads draining the queue through a shared executor.

    The pool knows nothing about journals or admission — it asks the
    owning service for the next job and hands back terminal transitions,
    so every durability decision stays in one place
    (:class:`~repro.jobs.service.JobService`).
    """

    def __init__(self, service, workers: int = 2):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.service = service
        self.workers = workers
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()

    @property
    def running(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    def start(self) -> "WorkerPool":
        if self._threads or self.workers == 0:
            return self
        self._stop.clear()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._loop,
                name=f"confvalley-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        _log.info("worker pool started", extra={"workers": self.workers})
        return self

    def _loop(self) -> None:
        while not self._stop.is_set():
            job = self.service._next_job(timeout=0.1)
            if job is None:
                continue
            try:
                self.service._run_job(job)
            except Exception:  # a broken job must never kill the worker
                _log.exception("unexpected worker failure", extra={"job": job.id})

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop taking new jobs, wait for in-flight ones; True = clean."""
        self._stop.set()
        self.service.queue.wake_all()
        clean = True
        for thread in self._threads:
            thread.join(timeout)
            clean = clean and not thread.is_alive()
        self._threads = []
        if self._threads == [] and clean:
            _log.info("worker pool drained", extra={"workers": self.workers})
        return clean


# ---------------------------------------------------------------------------
# External worker processes (multi-process mode)
# ---------------------------------------------------------------------------

#: chaos hook: while this file exists, a worker that just claimed a job
#: parks before executing it — a deterministic window for kill tests
HOLD_FILE_ENV = "CONFVALLEY_WORKER_HOLD_FILE"
#: upper bound on one chaos hold, so a leaked hold file cannot wedge a
#: production worker forever
HOLD_LIMIT_SECONDS = 30.0


class DirectorySpecRegistry(dict):
    """Named-spec registry backed by the shared ``specs/`` directory.

    The coordinator publishes registered specs as files
    (:meth:`JobDirectory.publish_spec`); worker processes resolve
    ``spec_name`` submissions through this mapping, falling back to the
    directory on a local miss so a spec registered after the worker
    started is still found.
    """

    def __init__(self, directory: JobDirectory):
        super().__init__()
        self.directory = directory

    def __missing__(self, name: str) -> str:
        text = self.directory.read_spec(name)
        if text is None:
            raise KeyError(name)
        return text


class ExternalWorker:
    """One standalone worker process over a shared journal directory.

    The loop: replay/tail the journal partitions into a local view of the
    job table, pick the best claimable QUEUED job, win its lease
    (``O_EXCL``), append a ``claim`` event to this worker's own partition,
    execute under a heartbeat that keeps the lease fresh, append the
    ``terminal`` event, and only *then* release the lease — so a crash at
    any point either leaves the lease to expire (job re-queued by the
    coordinator's reaper) or leaves a durable terminal event the
    coordinator absorbs.  There is no window in which a finished job can
    be re-queued: the terminal record is on disk before the lease goes.

    A worker that loses its lease mid-run (fenced by a renewal failure)
    abandons the run; its terminal event carries the stale epoch and is
    ignored by every replayer.
    """

    def __init__(
        self,
        journal_dir: str,
        worker_id: Optional[str] = None,
        base_dir: str = ".",
        poll: float = 0.2,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        heartbeat: Optional[float] = None,
        default_timeout: Optional[float] = None,
        max_jobs: Optional[int] = None,
        spec_cache=None,
        time_fn=time.time,
    ):
        from ..parallel.cache import SpecCache

        self.directory = JobDirectory(journal_dir).ensure()
        self.worker_id = worker_id or f"w-{os.getpid()}"
        self.poll = max(0.01, float(poll))
        self.lease_ttl = float(lease_ttl)
        self.heartbeat = (
            float(heartbeat) if heartbeat else heartbeat_interval(lease_ttl)
        )
        self.max_jobs = max_jobs
        self._time = time_fn
        self.leases = LeaseStore(self.directory, ttl=lease_ttl, time_fn=time_fn)
        #: this worker's own append-only partition — never shared
        self.partition = JobJournal(
            self.directory.worker_partition(self.worker_id)
        )
        self.executor = JobExecutor(
            spec_cache=spec_cache if spec_cache is not None else SpecCache(),
            base_dir=base_dir,
            default_timeout=default_timeout,
            spec_registry=DirectorySpecRegistry(self.directory),
        )
        self._stop = threading.Event()
        self._jobs: dict[str, ValidationJob] = {}
        self._coord_tail = JournalTail(self.directory.coordinator_journal)
        self._worker_tails: dict[str, JournalTail] = {}
        self.jobs_done = 0
        self.leases_lost = 0
        self._started_at = self._time()
        self._current_job = ""
        #: this worker's span-segment partition (single-writer, like the
        #: journal partition); segments use wall-clock timestamps so the
        #: coordinator can stitch them against other processes' spans
        self.traces = TraceSegmentWriter(
            self.directory.trace_partition(self.worker_id),
            self.worker_id,
            time_fn,
        )

    # -- lifecycle -----------------------------------------------------

    def stop(self) -> None:
        self._stop.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful stop (finish the in-flight job)."""
        import signal

        def handler(signum, frame):  # noqa: ARG001
            _log.info(
                "worker stopping on signal",
                extra={"worker": self.worker_id, "signal": signum},
            )
            self.stop()

        signal.signal(signal.SIGTERM, handler)
        signal.signal(signal.SIGINT, handler)

    # -- journal-view maintenance --------------------------------------

    def _refold(self) -> None:
        """Rebuild the local job view from every partition, from zero."""
        self._coord_tail = JournalTail(self.directory.coordinator_journal)
        coordinator_events, __ = self._coord_tail.poll()
        self._worker_tails = {}
        streams: dict[str, list[dict]] = {}
        for name, path in self.directory.partitions().items():
            tail = JournalTail(path)
            streams[name], __ = tail.poll()
            self._worker_tails[name] = tail
        self._jobs = fold_merged(
            coordinator_events, streams, ValidationJob.from_dict
        )

    def _absorb(self) -> None:
        """Apply everything appended since the last poll to the view."""
        events, reset = self._coord_tail.poll()
        if reset:
            self._refold()
            return
        apply_coordinator_events(self._jobs, events, ValidationJob.from_dict)
        for name, path in self.directory.partitions().items():
            tail = self._worker_tails.get(name)
            if tail is None:
                tail = self._worker_tails[name] = JournalTail(path)
            worker_events, __ = tail.poll()
            for event in worker_events:
                job = self._jobs.get(event.get("id", ""))
                if job is not None:
                    apply_worker_event(job, event)

    # -- claiming ------------------------------------------------------

    def _candidates(self) -> list[ValidationJob]:
        queued = [
            job
            for job in self._jobs.values()
            if job.state == JobState.QUEUED and not job.cancel_requested
        ]
        queued.sort(
            key=lambda job: (-job.priority, job.submitted_at or 0.0, job.id)
        )
        return queued

    def _claim_next(self):
        """``(job, lease)`` for the first candidate we win, else None."""
        for job in self._candidates():
            lease = self.leases.try_claim(
                job.id, self.worker_id, job.epoch + 1
            )
            if lease is not None:
                return job, lease
        return None

    # -- execution -----------------------------------------------------

    def _chaos_hold(self) -> None:
        hold_file = os.environ.get(HOLD_FILE_ENV, "")
        if not hold_file:
            return
        deadline = self._time() + HOLD_LIMIT_SECONDS
        while os.path.exists(hold_file) and self._time() < deadline:
            if self._stop.is_set():
                return
            time.sleep(0.02)

    def _heartbeat_loop(self, job, lease, stop, cancel) -> None:
        """Renew the lease and watch for cancellation while executing.

        Runs on its own thread while the main thread is blocked in
        :meth:`JobExecutor.execute`; it is therefore the only thread
        touching the tails/view during a run, and it is joined before the
        main loop resumes — no concurrent access either way.
        """
        while not stop.wait(self.heartbeat):
            if not self.leases.renew(lease):
                self.leases_lost += 1
                _log.warning(
                    "lease lost mid-run; abandoning",
                    extra={"worker": self.worker_id, "job": job.id},
                )
                cancel.set()
                return
            self.announce()
            self.export_metrics()
            events, reset = self._coord_tail.poll()
            if reset:
                self._refold()
            else:
                apply_coordinator_events(
                    self._jobs, events, ValidationJob.from_dict
                )
            current = self._jobs.get(job.id)
            if current is not None and current.cancel_requested:
                cancel.set()

    def _job_tracer(self, job: ValidationJob, epoch: int) -> Optional[Tracer]:
        """A wall-clock tracer continuing the job's trace in this worker.

        The span-id prefix is unique per (worker, claim epoch), so two
        attempts at the same job — or two workers — can never collide in
        the stitched tree, and each attempt renders as its own row.
        """
        if not job.trace:
            return None
        return Tracer(
            origin=SpanContext(job.trace["trace_id"], job.trace["span_id"]),
            prefix=f"{job.id}:{self.worker_id}.{epoch}:",
            time_source=self._time,
        )

    def _run_claimed(self, job: ValidationJob, lease) -> None:
        now = self._time()
        tracer = self._job_tracer(job, lease.epoch)
        claim_event = {
            "event": "claim",
            "id": job.id,
            "worker": self.worker_id,
            "epoch": lease.epoch,
            "at": now,
        }
        claim_scope = (
            tracer.span("claim", worker=self.worker_id, epoch=lease.epoch)
            if tracer is not None
            else contextlib.nullcontext()
        )
        with claim_scope:
            self.partition.append(claim_event)
            apply_worker_event(job, claim_event)
            self._current_job = job.id
            self.announce()
        self._chaos_hold()
        stop_heartbeat = threading.Event()
        cancel = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(job, lease, stop_heartbeat, cancel),
            name=f"confvalley-hb-{self.worker_id}",
            daemon=True,
        )
        heartbeat.start()
        try:
            state, result, error = self.executor.execute(
                job, cancel, tracer=tracer
            )
        except Exception as exc:  # a broken job must never kill the worker
            message = f"{type(exc).__name__}: {exc}"
            state, result, error = (
                JobState.FAILED, error_verdict(message), message,
            )
        finally:
            stop_heartbeat.set()
            heartbeat.join()
        terminal_event = {
            "event": "terminal",
            "id": job.id,
            "worker": self.worker_id,
            "epoch": lease.epoch,
            "state": state,
            "result": result,
            "error": error,
            "at": self._time(),
        }
        # terminal before release: if we crash between the two, the
        # coordinator finds both the durable result and a dangling lease,
        # absorbs the result, and the expiry path sees a finished job
        self.partition.append(terminal_event)
        apply_worker_event(job, terminal_event)
        self.leases.release(lease)
        if tracer is not None:
            self.traces.write(job.id, tracer.finished_spans())
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "confvalley_worker_jobs_total",
                "Jobs executed by this worker process, by terminal state.",
            ).inc(state=state)
        self._current_job = ""
        self.jobs_done += 1
        self.announce()
        self.export_metrics()

    # -- presence ------------------------------------------------------

    def announce(self) -> None:
        self.leases.announce(
            self.worker_id,
            kind="process",
            jobs_done=self.jobs_done,
            leases_lost=self.leases_lost,
            current_job=self._current_job,
            started_at=self._started_at,
        )

    def export_metrics(self) -> None:
        """Publish this process's registry snapshot for federation.

        Atomic rewrite into the shared ``metrics/`` directory on the
        heartbeat cadence; a no-op when metrics are disabled, so a worker
        run without observability costs nothing and exports nothing.
        """
        metrics = get_metrics()
        if not metrics.enabled:
            return
        # every export carries at least this series, so an idle worker
        # still surfaces in the federated exposition (and ages out of it)
        metrics.gauge(
            "confvalley_worker_up",
            "1 while this worker process is exporting snapshots.",
        ).set(1.0)
        try:
            export_metrics_snapshot(
                self.directory.metrics_snapshot(self.worker_id),
                metrics,
                stats={
                    "worker": self.worker_id,
                    "jobs_done": self.jobs_done,
                    "leases_lost": self.leases_lost,
                    "current_job": self._current_job,
                    "started_at": self._started_at,
                },
                time_fn=self._time,
            )
        except OSError:  # a full disk must not kill the worker
            _log.warning(
                "metrics snapshot export failed",
                extra={"worker": self.worker_id},
            )

    # -- the main loop -------------------------------------------------

    def run(self) -> int:
        """Poll → claim → execute until stopped; returns jobs completed."""
        _log.info(
            "external worker started",
            extra={
                "worker": self.worker_id,
                "journal_dir": self.directory.root,
                "lease_ttl": self.lease_ttl,
            },
        )
        self._refold()
        self.announce()
        self.export_metrics()
        last_announce = self._time()
        try:
            while not self._stop.is_set():
                if self.max_jobs is not None and self.jobs_done >= self.max_jobs:
                    break
                self._absorb()
                claimed = self._claim_next()
                if claimed is None:
                    if self._time() - last_announce >= self.heartbeat:
                        self.announce()
                        self.export_metrics()
                        last_announce = self._time()
                    self._stop.wait(self.poll)
                    continue
                job, lease = claimed
                self._run_claimed(job, lease)
                last_announce = self._time()
        finally:
            self.partition.close()
            self.leases.retire(self.worker_id)
            _log.info(
                "external worker stopped",
                extra={"worker": self.worker_id, "jobs_done": self.jobs_done},
            )
        return self.jobs_done


class WorkerSupervisor:
    """Spawns and babysits N ``confvalley worker`` subprocesses.

    The service owns one of these when started with ``--worker-procs N``.
    Health checks ride the reaper tick: a worker that exited is reaped
    and restarted after an exponential backoff (so a worker crashing on
    startup cannot fork-bomb the host), and every restart is visible in
    :meth:`status` and the lease metrics.
    """

    def __init__(
        self,
        journal_dir: str,
        count: int,
        base_dir: str = ".",
        lease_ttl: float = DEFAULT_LEASE_TTL,
        heartbeat: Optional[float] = None,
        poll: float = 0.2,
        id_prefix: str = "proc",
        restart_backoff: float = 0.5,
        max_backoff: float = 10.0,
        time_fn=time.time,
    ):
        self.journal_dir = journal_dir
        self.count = max(0, int(count))
        self.base_dir = base_dir
        self.lease_ttl = float(lease_ttl)
        self.heartbeat = heartbeat
        self.poll = float(poll)
        self.id_prefix = id_prefix
        self.restart_backoff = float(restart_backoff)
        self.max_backoff = float(max_backoff)
        self._time = time_fn
        self._procs: dict[str, object] = {}
        self._restarts: dict[str, int] = {}
        self._backoff_until: dict[str, float] = {}
        self._lock = threading.Lock()
        self._stopped = False

    def worker_ids(self) -> list[str]:
        return [f"{self.id_prefix}-{index}" for index in range(self.count)]

    def _spawn(self, worker_id: str):
        import subprocess
        import sys

        import repro

        source_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (source_root, env.get("PYTHONPATH", "")) if part
        )
        command = [
            sys.executable,
            "-c",
            "import sys; from repro.console.cli import main; "
            "sys.exit(main(sys.argv[1:]))",
            "worker",
            "--journal", self.journal_dir,
            "--id", worker_id,
            "--base-dir", self.base_dir,
            "--lease-ttl", str(self.lease_ttl),
            "--poll", str(self.poll),
        ]
        if self.heartbeat:
            command += ["--heartbeat", str(self.heartbeat)]
        process = subprocess.Popen(command, env=env)
        _log.info(
            "spawned worker process",
            extra={"worker": worker_id, "pid": process.pid},
        )
        return process

    def start(self) -> "WorkerSupervisor":
        with self._lock:
            self._stopped = False
            for worker_id in self.worker_ids():
                if worker_id not in self._procs:
                    self._procs[worker_id] = self._spawn(worker_id)
        return self

    def check(self) -> int:
        """Reap exited workers, restart those past backoff; returns
        the number of restarts performed this check."""
        restarted = 0
        with self._lock:
            if self._stopped:
                return 0
            now = self._time()
            for worker_id in self.worker_ids():
                process = self._procs.get(worker_id)
                if process is not None and process.poll() is None:
                    continue  # alive
                if process is not None:
                    attempts = self._restarts.get(worker_id, 0) + 1
                    self._restarts[worker_id] = attempts
                    delay = min(
                        self.max_backoff,
                        self.restart_backoff * (2 ** (attempts - 1)),
                    )
                    self._backoff_until[worker_id] = now + delay
                    self._procs[worker_id] = None
                    _log.warning(
                        "worker process died; restart scheduled",
                        extra={
                            "worker": worker_id,
                            "exit_code": process.returncode,
                            "restart_in": delay,
                        },
                    )
                    continue
                if now >= self._backoff_until.get(worker_id, 0.0):
                    self._procs[worker_id] = self._spawn(worker_id)
                    restarted += 1
        return restarted

    def status(self) -> list[dict]:
        with self._lock:
            rows = []
            for worker_id in self.worker_ids():
                process = self._procs.get(worker_id)
                alive = process is not None and process.poll() is None
                rows.append({
                    "id": worker_id,
                    "pid": process.pid if alive else None,
                    "alive": alive,
                    "restarts": self._restarts.get(worker_id, 0),
                })
            return rows

    def stop(self, timeout: float = 5.0) -> None:
        """SIGTERM every worker, wait, SIGKILL stragglers."""
        with self._lock:
            self._stopped = True
            procs = [p for p in self._procs.values() if p is not None]
            self._procs = {}
        for process in procs:
            if process.poll() is None:
                try:
                    process.terminate()
                except OSError:
                    pass
        deadline = time.monotonic() + timeout
        for process in procs:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                process.wait(remaining)
            except Exception:
                try:
                    process.kill()
                    process.wait(1.0)
                except Exception:
                    pass
