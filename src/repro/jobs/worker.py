"""Job execution: the worker pool draining the queue through sessions.

Each worker thread loops ``pop → execute → record``.  Execution builds a
fresh :class:`~repro.core.session.ValidationSession` per job (jobs from
different tenants must not share a configuration store) but *shares* the
service's compiled-spec cache — two jobs carrying the same spec text hash
compile once, which is the steady-state shape of a CI fleet hammering one
specification corpus.  The produced report is the very report a direct
``confvalley validate`` of the same spec + sources would yield:
byte-identical ``fingerprint()``, asserted in the tests.

Timeout and cancellation run the validation on a *runner* thread the
worker supervises: Python offers no safe way to interrupt arbitrary
evaluation mid-statement, so an expired or cancelled run is **abandoned**
— the daemon runner finishes (or not) in the background and its result is
discarded, while the worker moves on and the job is recorded FAILED
(timeout) or CANCELLED.  Abandonment is the exception path; its cost (one
parked thread until the evaluation returns) is documented in
``docs/OPERATIONS.md`` §4d.

Graceful drain (SIGTERM): :meth:`WorkerPool.drain` stops the pop loop,
lets in-flight jobs finish, and leaves QUEUED jobs untouched — they are
already durable in the journal and resume on the next start.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..core.session import ValidationSession
from ..observability import get_logger
from ..runtime import clock as _clock
from .model import JobState, ValidationJob, error_verdict, verdict_payload

__all__ = ["JobExecutor", "WorkerPool"]

_log = get_logger("jobs.worker")

#: how often an executing worker re-checks cancel/timeout while the
#: runner thread is busy (seconds)
SUPERVISE_TICK = 0.05


class JobExecutor:
    """Runs one job's validation and renders its verdict."""

    def __init__(
        self,
        spec_cache=None,
        runtime=None,
        base_dir: str = ".",
        default_timeout: Optional[float] = None,
        spec_registry: Optional[dict] = None,
    ):
        self.spec_cache = spec_cache
        self.runtime = runtime
        self.base_dir = base_dir
        self.default_timeout = default_timeout
        #: named server-side specs (``spec_name`` submissions resolve here)
        self.spec_registry = spec_registry if spec_registry is not None else {}

    # -- spec / source resolution --------------------------------------

    def resolve_spec_text(self, job: ValidationJob) -> str:
        if job.spec_text:
            return job.spec_text
        if job.spec_name:
            try:
                return self.spec_registry[job.spec_name]
            except KeyError:
                raise ValueError(
                    f"unknown registered spec {job.spec_name!r} "
                    f"(known: {sorted(self.spec_registry) or 'none'})"
                )
        if job.spec_path:
            import os

            path = job.spec_path
            if not os.path.isabs(path):
                path = os.path.join(self.base_dir, path)
            with open(path, "r", encoding="utf-8") as handle:
                return handle.read()
        raise ValueError("job carries no spec (spec/spec_name/spec_path all empty)")

    def _build_session(self, job: ValidationJob) -> ValidationSession:
        resilience = job.resilience or {}
        return ValidationSession(
            runtime=self.runtime,
            base_dir=self.base_dir,
            executor=job.executor,
            spec_cache=self.spec_cache,
            shard_timeout=resilience.get("shard_timeout"),
            shard_retries=resilience.get("shard_retries", 1),
        )

    def _load_sources(self, session: ValidationSession, sources: list) -> None:
        for source in sources:
            fmt = source.get("format", "")
            if "text" in source:
                session.load_text(
                    fmt,
                    source["text"],
                    source=source.get("source", "<inline>"),
                    scope=source.get("scope", ""),
                )
            else:
                session.load_source(fmt, source["path"], source.get("scope", ""))

    def validate(self, job: ValidationJob):
        """The raw validation run (no supervision) → ValidationReport.

        ``mode: delta`` jobs take the incremental branch; the per-job
        delta record (selection counts, change summary) travels on the
        report as ``delta_info`` and lands in the verdict payload.
        """
        spec_text = self.resolve_spec_text(job)
        if job.mode == "delta":
            return self._validate_delta(job, spec_text)
        session = self._build_session(job)
        self._load_sources(session, job.sources)
        return session.validate(spec_text)

    def _validate_delta(self, job: ValidationJob, spec_text: str):
        """Scope the run to the statements the submitted change affects.

        Diffs the job's sources against its ``baseline_sources`` (the
        before-the-change snapshot), asks the spec's dependency index for
        the affected statement indices, and evaluates only those against
        the *new* store.  The verdict therefore answers "does this change
        break anything the change can reach?" — deliberately narrower
        than a full run, and marked as such in the verdict's ``delta``
        block.  Programs the index cannot cover soundly (load/include
        commands, serial-only policy semantics) fall back to a full run
        with ``delta.mode = "full-fallback"``.
        """
        from ..core.incremental import DependencyIndex
        from ..core.report import ValidationReport
        from ..parallel.engine import WorkerState, _absorb, evaluate_shard
        from ..parallel.shards import Shard, is_parallel_safe, select_units
        from ..repository.versioned import diff_stores

        session = self._build_session(job)
        self._load_sources(session, job.sources)
        before_compile = session.store.instance_count
        statements = session.compile(spec_text)
        unsound = (
            session.store.instance_count != before_compile  # load/include
            or not is_parallel_safe(statements, session.policy)
        )
        if unsound:
            fresh = self._build_session(job)
            self._load_sources(fresh, job.sources)
            report = fresh.validate(spec_text)
            report.delta_info = {
                "mode": "full-fallback",
                "reason": "program cannot be delta-validated soundly "
                "(load/include commands or serial-only semantics)",
            }
            return report

        baseline = self._build_session(job)
        self._load_sources(baseline, job.baseline_sources)
        change = diff_stores(baseline.store, session.store)
        index = None
        if self.spec_cache is not None:
            index = self.spec_cache.attachment(
                spec_text,
                session._options_fingerprint(),
                "dependency_index",
                lambda entry: DependencyIndex(list(entry)),
            )
        if index is None:
            index = DependencyIndex(statements)
        affected = set(index.affected(change))
        lets, all_units = select_units(statements)
        selected = tuple(unit for unit in all_units if unit.index in affected)
        state = WorkerState(
            store=session.store,
            runtime=session.runtime,
            policy=session.policy,
            lets=lets,
        )
        result = evaluate_shard(state, Shard("delta", selected))
        report = ValidationReport()
        for __, unit_report in result.unit_reports:
            _absorb(report, unit_report)
        report.executor = "delta"
        report.shards_run += 1
        report.elapsed_seconds = result.seconds
        report.delta_info = {
            "mode": "delta",
            "statements_total": len(all_units),
            "selected": len(selected),
            "skipped": len(all_units) - len(selected),
            "change": change.summary(),
        }
        return report

    # -- supervised execution ------------------------------------------

    def execute(
        self, job: ValidationJob, cancel: Optional[threading.Event] = None
    ) -> tuple[str, Optional[dict], str]:
        """Run the job under timeout/cancel supervision.

        Returns ``(state, result, error)`` where ``state`` is a terminal
        :class:`JobState` and ``result`` is the verdict payload (None only
        when the run was abandoned before producing one).
        """
        timeout = job.timeout if job.timeout is not None else self.default_timeout
        box: dict = {}

        def run():
            try:
                box["report"] = self.validate(job)
            except Exception as exc:  # rendered into the error verdict
                box["error"] = f"{type(exc).__name__}: {exc}"

        runner = threading.Thread(
            target=run, name=f"confvalley-job-{job.id}", daemon=True
        )
        started = _clock.now()
        runner.start()
        while runner.is_alive():
            runner.join(SUPERVISE_TICK)
            if not runner.is_alive():
                break
            if cancel is not None and cancel.is_set():
                _log.warning(
                    "abandoning cancelled job", extra={"job": job.id}
                )
                return (
                    JobState.CANCELLED,
                    error_verdict("cancelled while running"),
                    "cancelled while running",
                )
            if timeout is not None and _clock.now() - started > timeout:
                message = f"job exceeded its {timeout:g}s timeout"
                _log.warning(
                    "abandoning timed-out job",
                    extra={"job": job.id, "timeout": timeout},
                )
                return JobState.FAILED, error_verdict(message), message
        if "error" in box:
            return JobState.FAILED, error_verdict(box["error"]), box["error"]
        report = box["report"]
        # a cancel that lost the race to completion still honors the work:
        # the verdict exists, so record it rather than throw it away
        delta = getattr(report, "delta_info", None)
        return JobState.DONE, verdict_payload(report, delta=delta), ""


class WorkerPool:
    """N daemon threads draining the queue through a shared executor.

    The pool knows nothing about journals or admission — it asks the
    owning service for the next job and hands back terminal transitions,
    so every durability decision stays in one place
    (:class:`~repro.jobs.service.JobService`).
    """

    def __init__(self, service, workers: int = 2):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.service = service
        self.workers = workers
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()

    @property
    def running(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    def start(self) -> "WorkerPool":
        if self._threads or self.workers == 0:
            return self
        self._stop.clear()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._loop,
                name=f"confvalley-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        _log.info("worker pool started", extra={"workers": self.workers})
        return self

    def _loop(self) -> None:
        while not self._stop.is_set():
            job = self.service._next_job(timeout=0.1)
            if job is None:
                continue
            try:
                self.service._run_job(job)
            except Exception:  # a broken job must never kill the worker
                _log.exception("unexpected worker failure", extra={"job": job.id})

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop taking new jobs, wait for in-flight ones; True = clean."""
        self._stop.set()
        self.service.queue.wake_all()
        clean = True
        for thread in self._threads:
            thread.join(timeout)
            clean = clean and not thread.is_alive()
        self._threads = []
        if self._threads == [] and clean:
            _log.info("worker pool drained", extra={"workers": self.workers})
        return clean
