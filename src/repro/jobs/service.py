"""The asynchronous validation job service (``repro.jobs``).

:class:`JobService` composes the four pieces the ISSUE names into one
facade: the durable journal (:mod:`.journal`), admission-controlled
priority queue (:mod:`.queue`), supervised worker pool (:mod:`.worker`)
and the submission/lifecycle API consumed by the HTTP layer
(:mod:`repro.observability.server`) and the CLI (``confvalley submit`` /
``jobs`` / ``cancel``).

Lifecycle contract:

* **submit** validates the request, deduplicates on the idempotency key,
  runs admission control (raising a structured
  :class:`~repro.jobs.model.AdmissionError` on backpressure — never
  blocking), journals the job, and enqueues it;
* **workers** drain the queue through
  :class:`~repro.jobs.worker.JobExecutor`: per-job timeout/cancel
  supervision, shared compiled-spec cache, verdicts byte-identical to a
  direct ``validate`` run (``fingerprint()`` parity);
* **crash recovery** replays the journal on construction: terminal jobs
  are retained (up to the retention policy), QUEUED jobs resume, and
  RUNNING jobs — in flight when the previous process died — are
  re-queued exactly once, then marked ``INTERRUPTED`` if they die again;
* **drain** (SIGTERM path) finishes running jobs and leaves the rest
  QUEUED in the journal for the next start;
* **retention** evicts terminal jobs beyond ``retention_count`` or older
  than ``retention_age`` seconds, and the journal compacts itself every
  ``rotate_after`` events, so neither memory nor disk grows without bound.

**Multi-process mode** (``journal_dir=`` instead of ``journal_path=``):
the service becomes the *coordinator* of a shared journal directory
(:class:`~repro.jobs.lease.JobDirectory`).  It writes its own
``coordinator.jsonl`` partition; external ``confvalley worker``
processes claim QUEUED jobs under leases (:mod:`.lease`) and append
``claim``/``terminal`` events to their own partitions.  A **reaper**
thread absorbs those events into the in-memory job table, renews the
leases of jobs running on the in-process pool, and expires stale leases
— re-queueing the orphaned job within a bounded ``max_requeues`` budget
and parking it as ``EXPIRED`` beyond it.  The epoch fence
(:func:`~repro.jobs.journal.apply_worker_event`) makes every replay and
absorb idempotent: a SIGKILLed worker's job is re-queued exactly once,
and a zombie's late result is ignored.  ``--worker-procs N`` puts a
:class:`~repro.jobs.worker.WorkerSupervisor` under the same roof.

Jobs carrying a ``callback_url`` get their terminal record POSTed back
through :class:`~repro.jobs.webhook.WebhookDispatcher`; the delivery
state is journalled on the job so a restart re-enqueues only pending
deliveries.

The service is thread-safe with a single coarse lock around state
transitions; the scan loop of a co-hosted
:class:`~repro.service.ValidationService` never blocks on it for longer
than a dict update.  The lock is an ``RLock`` because a journal append
performed under it may trigger auto-rotation, whose snapshot callback
re-enters the lock on the same thread — and because every append happens
under the service lock, the rotate-while-appending lock order is always
service-lock → journal-lock, never the reverse.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional

from ..observability import (
    FleetView,
    SpanContext,
    Tracer,
    enabled as observability_enabled,
    get_logger,
    get_metrics,
)
from ..parallel.cache import SpecCache
from ..runtime import clock as _clock
from .journal import JobJournal, JournalTail, apply_worker_event, fold_merged
from .lease import (
    DEFAULT_LEASE_TTL,
    JobDirectory,
    LeaseStore,
    heartbeat_interval,
)
from .model import AdmissionError, JobState, ValidationJob
from .queue import AdmissionController, JobQueue
from .webhook import WebhookDispatcher
from .worker import JobExecutor, WorkerPool, WorkerSupervisor

__all__ = ["JobService"]

_log = get_logger("jobs.service")

#: mid-flight attempts crash recovery will re-queue before parking a job
#: (single-file mode, where a RUNNING job in the journal means *this*
#: process died under it)
MAX_REQUEUES = 1

#: lease-expiry re-queues tolerated per job in multi-process mode before
#: the job is parked as EXPIRED (two crashed workers = strike out)
DEFAULT_MAX_REQUEUES = 2


def parse_source_ref(entry: str) -> dict:
    """``FMT:PATH[:SCOPE]`` → a job source descriptor dict."""
    parts = entry.split(":", 2)
    if len(parts) < 2 or not parts[0] or not parts[1]:
        raise ValueError(f"source reference needs FMT:PATH, got {entry!r}")
    descriptor = {"format": parts[0], "path": parts[1]}
    if len(parts) > 2 and parts[2]:
        descriptor["scope"] = parts[2]
    return descriptor


class JobService:
    """Durable, admission-controlled asynchronous validation jobs."""

    def __init__(
        self,
        journal_path: Optional[str] = None,
        journal_dir: Optional[str] = None,
        workers: int = 2,
        worker_procs: int = 0,
        queue_depth: int = 256,
        per_tenant_limit: int = 0,
        rate: float = 0.0,
        burst: Optional[float] = None,
        retention_count: int = 512,
        retention_age: Optional[float] = 3600.0,
        rotate_after: int = 4096,
        fsync: bool = False,
        spec_cache: Optional[SpecCache] = None,
        runtime=None,
        base_dir: str = ".",
        default_timeout: Optional[float] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        heartbeat: Optional[float] = None,
        max_requeues: int = DEFAULT_MAX_REQUEUES,
        reaper_interval: Optional[float] = None,
        worker_poll: float = 0.2,
        webhook_post=None,
        webhook_max_attempts: int = 5,
        webhook_base_delay: float = 0.5,
        webhook_max_delay: float = 30.0,
        time_fn=time.time,
        start: bool = True,
    ):
        if journal_path is not None and journal_dir is not None:
            raise ValueError(
                "journal_path (single-file) and journal_dir (multi-process "
                "directory) are mutually exclusive"
            )
        self._time = time_fn
        # RLock: journal appends run under this lock and may auto-rotate,
        # whose snapshot callback re-enters it on the same thread
        self._lock = threading.RLock()
        self._done = threading.Condition(self._lock)
        self._jobs: dict[str, ValidationJob] = {}
        self._by_key: dict[str, str] = {}
        self._cancel_events: dict[str, threading.Event] = {}
        self._state_counts = {state: 0 for state in JobState.ALL}
        self._tenant_in_flight: dict[str, int] = {}
        self.rejections: dict[str, int] = {}
        self.retention_count = retention_count
        self.retention_age = retention_age
        self.base_dir = base_dir
        self.spec_cache = spec_cache if spec_cache is not None else SpecCache()
        self.queue = JobQueue()
        self.admission = AdmissionController(
            max_depth=queue_depth,
            per_tenant_limit=per_tenant_limit,
            rate=rate,
            burst=burst,
            depth=lambda: self._state_counts[JobState.QUEUED],
            tenant_in_flight=lambda tenant: self._tenant_in_flight.get(tenant, 0),
        )
        self.executor = JobExecutor(
            spec_cache=self.spec_cache,
            runtime=runtime,
            base_dir=base_dir,
            default_timeout=default_timeout,
        )
        # -- multi-process plumbing (None/empty in single-file mode) ----
        self.directory: Optional[JobDirectory] = None
        self.leases: Optional[LeaseStore] = None
        self.supervisor: Optional[WorkerSupervisor] = None
        self.lease_ttl = float(lease_ttl)
        self.max_requeues = max(0, int(max_requeues))
        self.reaper_interval = (
            float(reaper_interval)
            if reaper_interval is not None
            else heartbeat_interval(lease_ttl)
        )
        self.worker_id = f"inproc-{os.getpid()}"
        self._held_leases: dict[str, object] = {}
        self._worker_tails: dict[str, JournalTail] = {}
        self._worker_counts: dict[str, dict[str, int]] = {}
        self.lease_expiries = 0
        self.requeues_total = 0
        self.expired_total = 0
        self._reaper_stop = threading.Event()
        self._reaper: Optional[threading.Thread] = None
        # webhook dispatcher exists in every mode (callbacks are useful
        # even on a single-process service); constructed before recovery
        # so pending deliveries found in the journal re-enqueue directly
        self.webhooks = WebhookDispatcher(
            post_fn=webhook_post,
            max_attempts=webhook_max_attempts,
            base_delay=webhook_base_delay,
            max_delay=webhook_max_delay,
            time_fn=time_fn,
            on_result=self._webhook_result,
            start=start,
        )
        #: webhook-delivery start times for traced jobs (trace span input)
        self._webhook_trace_start: dict[str, float] = {}
        self.fleet: Optional[FleetView] = None
        self.journal: Optional[JobJournal] = None
        if journal_dir is not None:
            self.directory = JobDirectory(journal_dir).ensure()
            self.leases = LeaseStore(
                self.directory, ttl=lease_ttl, time_fn=time_fn
            )
            # snapshot staleness fencing follows the worker-presence rule:
            # anything older than a lease TTL is presumed dead
            self.fleet = FleetView(
                directory=self.directory,
                stale_after=max(self.lease_ttl, 2.0),
                time_fn=time_fn,
            )
            self.journal = JobJournal(
                self.directory.coordinator_journal,
                rotate_after=rotate_after,
                fsync=fsync,
                snapshot_source=self._snapshot_jobs,
            )
            self._recover_shared()
            if worker_procs > 0:
                self.supervisor = WorkerSupervisor(
                    journal_dir=self.directory.root,
                    count=worker_procs,
                    base_dir=base_dir,
                    lease_ttl=lease_ttl,
                    heartbeat=heartbeat,
                    poll=worker_poll,
                )
        elif journal_path is not None:
            self.journal = JobJournal(
                journal_path,
                rotate_after=rotate_after,
                fsync=fsync,
                snapshot_source=self._snapshot_jobs,
            )
            self._recover()
        if self.fleet is None:
            # single-process modes still stitch in-memory traces so
            # GET /jobs/<id>/trace works without a shared directory
            self.fleet = FleetView(time_fn=time_fn)
        self.pool = WorkerPool(self, workers=workers)
        if start:
            self.pool.start()
            if self.supervisor is not None:
                self.supervisor.start()
            if self.directory is not None:
                self.start_reaper()

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------

    def _snapshot_jobs(self) -> list[dict]:
        with self._lock:
            return [job.to_dict() for job in self._jobs.values()]

    def _journal_submit(self, job: ValidationJob) -> None:
        if self.journal is not None:
            self.journal.append({"event": "submit", "job": job.to_dict()})

    def _journal_update(self, job: ValidationJob, **fields) -> None:
        if self.journal is not None:
            self.journal.append(
                {"event": "update", "id": job.id, "fields": fields}
            )

    def _recover(self) -> None:
        """Fold the journal back into live state (see module docstring)."""
        events = self.journal.replay()
        if not events:
            return
        jobs = JobJournal.fold(events, ValidationJob.from_dict)
        resumed = requeued = interrupted = 0
        for job in jobs.values():
            self._jobs[job.id] = job
            if job.idempotency_key:
                self._by_key[job.idempotency_key] = job.id
            if job.state == JobState.RUNNING:
                if job.requeues < MAX_REQUEUES:
                    job.requeues += 1
                    job.state = JobState.QUEUED
                    job.started_at = None
                    self._journal_update(
                        job,
                        state=job.state,
                        requeues=job.requeues,
                        started_at=None,
                    )
                    requeued += 1
                else:
                    job.state = JobState.INTERRUPTED
                    job.error = (
                        "interrupted twice by service crashes; not retried"
                    )
                    job.finished_at = self._time()
                    self._journal_update(
                        job,
                        state=job.state,
                        error=job.error,
                        finished_at=job.finished_at,
                    )
                    interrupted += 1
            self._state_counts[job.state] += 1
            if job.state == JobState.QUEUED:
                self._bump_tenant(job.tenant, +1)
                self.queue.push(job)
                resumed += 1
        if resumed or interrupted:
            _log.info(
                "journal recovery complete",
                extra={
                    "jobs": len(jobs),
                    "resumed": resumed,
                    "requeued": requeued,
                    "interrupted": interrupted,
                },
            )
        self._recover_webhooks()
        # recovery rewrote states; compact so the next crash replays the
        # folded view instead of the whole pre-crash event stream (the
        # callable form snapshots under the journal's writer lock)
        self.journal.rotate(self._snapshot_jobs)

    def _recover_shared(self) -> None:
        """Fold coordinator + worker partitions back into live state.

        Tails are created here and left positioned at end-of-file, so the
        reaper's subsequent absorbs see only genuinely new events.  The
        lease directory decides what a RUNNING job means: a fresh lease
        at the job's epoch means its worker is presumed alive and the job
        stays RUNNING; anything else means the attempt died with the
        previous deployment and the job re-enters the queue within the
        ``max_requeues`` budget (terminal EXPIRED beyond it).
        """
        coordinator_events, __ = JournalTail(self.journal.path).poll()
        streams: dict[str, list[dict]] = {}
        for name, path in self.directory.partitions().items():
            tail = JournalTail(path)
            streams[name], __ = tail.poll()
            self._worker_tails[name] = tail
        jobs = fold_merged(
            coordinator_events, streams, ValidationJob.from_dict
        )
        if not jobs:
            return
        now = self._time()
        resumed = requeued = expired = kept_running = 0
        for job in jobs.values():
            self._jobs[job.id] = job
            if job.idempotency_key:
                self._by_key[job.idempotency_key] = job.id
            if job.state == JobState.RUNNING:
                lease = self.leases.read(job.id)
                alive = (
                    lease is not None
                    and lease.epoch == job.epoch
                    and lease.deadline >= now
                )
                if alive:
                    kept_running += 1  # its worker process outlived us
                else:
                    self.leases.break_lease(job.id)
                    job.requeues += 1
                    if job.requeues > self.max_requeues:
                        job.state = JobState.EXPIRED
                        job.error = (
                            f"worker lease expired {job.requeues} times; "
                            "retry budget exhausted"
                        )
                        job.finished_at = now
                        self._journal_update(
                            job,
                            state=job.state,
                            requeues=job.requeues,
                            error=job.error,
                            finished_at=job.finished_at,
                        )
                        expired += 1
                    else:
                        job.state = JobState.QUEUED
                        job.started_at = None
                        self._journal_update(
                            job,
                            state=job.state,
                            requeues=job.requeues,
                            started_at=None,
                        )
                        requeued += 1
            self._state_counts[job.state] += 1
            if job.state in (JobState.QUEUED, JobState.RUNNING):
                self._bump_tenant(job.tenant, +1)
            if job.state == JobState.QUEUED:
                self.queue.push(job)
                resumed += 1
        _log.info(
            "shared-journal recovery complete",
            extra={
                "jobs": len(jobs),
                "resumed": resumed,
                "requeued": requeued,
                "expired": expired,
                "kept_running": kept_running,
            },
        )
        self._recover_webhooks()
        self.journal.rotate(self._snapshot_jobs)

    def _recover_webhooks(self) -> None:
        """Re-enqueue callback deliveries that were pending at the crash."""
        with self._lock:
            for job in self._jobs.values():
                if not (job.terminal and job.callback_url):
                    continue
                if job.webhook is not None and job.webhook.get("state") != "pending":
                    continue  # already delivered or dead-lettered
                self._enqueue_webhook_locked(job)

    # ------------------------------------------------------------------
    # State accounting (always called under self._lock)
    # ------------------------------------------------------------------

    def _bump_tenant(self, tenant: str, delta: int) -> None:
        count = self._tenant_in_flight.get(tenant, 0) + delta
        if count <= 0:
            self._tenant_in_flight.pop(tenant, None)
        else:
            self._tenant_in_flight[tenant] = count

    def _transition(self, job: ValidationJob, state: str) -> None:
        self._state_counts[job.state] -= 1
        self._state_counts[state] += 1
        job.state = state

    # ------------------------------------------------------------------
    # Spec registry
    # ------------------------------------------------------------------

    def register_spec(self, name: str, text: str) -> None:
        """Publish a named server-side spec for ``spec_name`` submissions.

        In multi-process mode the spec is also written to the shared
        ``specs/`` directory, where external worker processes resolve it.
        """
        self.executor.spec_registry[name] = text
        if self.directory is not None:
            self.directory.publish_spec(name, text)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        spec: str = "",
        spec_name: str = "",
        spec_path: str = "",
        sources: Optional[list] = None,
        priority: int = 0,
        tenant: str = "default",
        idempotency_key: str = "",
        timeout: Optional[float] = None,
        executor: Optional[str] = None,
        resilience: Optional[dict] = None,
        mode: str = "full",
        baseline_sources: Optional[list] = None,
        callback_url: str = "",
        workflow: Optional[dict] = None,
    ) -> tuple[ValidationJob, bool]:
        """Accept one validation request.

        Returns ``(job, created)`` — ``created`` is False when the
        idempotency key matched an existing job, which is returned
        unchanged.  Raises :class:`ValueError` on a malformed request and
        :class:`AdmissionError` on backpressure.

        ``mode="delta"`` scopes the run to the statements affected by the
        difference between ``sources`` and ``baseline_sources`` (the
        before-the-change snapshot); see
        :meth:`repro.jobs.worker.JobExecutor._validate_delta`.

        ``mode="workflow"`` runs the composed pipeline in ``workflow``
        (the :meth:`repro.workflows.Workflow.from_dict` mapping schema);
        per-step statuses stream onto the job record while it runs.  The
        job's spec reference becomes the default for ``validate`` steps
        and may be omitted when every step carries its own spec.
        """
        if mode not in ("full", "delta", "workflow"):
            raise ValueError("mode must be 'full', 'delta' or 'workflow'")
        provided = [bool(spec), bool(spec_name), bool(spec_path)]
        if mode == "workflow":
            if not isinstance(workflow, dict):
                raise ValueError("mode='workflow' requires a workflow mapping")
            # eager validation: a malformed definition is a 400 at submit,
            # not a FAILED job minutes later
            from ..workflows import Workflow, WorkflowError

            try:
                Workflow.from_dict(workflow)
            except WorkflowError as exc:
                raise ValueError(f"invalid workflow: {exc}") from exc
            if sum(provided) > 1:
                raise ValueError(
                    "at most one of spec (inline text), spec_name or "
                    "spec_path may be provided for a workflow job"
                )
        else:
            if workflow is not None:
                raise ValueError("a workflow definition requires mode='workflow'")
            if sum(provided) != 1:
                raise ValueError(
                    "exactly one of spec (inline text), spec_name or spec_path "
                    "must be provided"
                )
        if mode != "delta" and baseline_sources:
            raise ValueError("baseline_sources requires mode='delta'")
        if callback_url and not callback_url.startswith(("http://", "https://")):
            raise ValueError("callback_url must be an http(s) URL")
        normalized = self._normalize_sources(sources)
        baseline = self._normalize_sources(baseline_sources)
        job = ValidationJob(
            idempotency_key=idempotency_key,
            spec_text=spec,
            spec_name=spec_name,
            spec_path=spec_path,
            sources=normalized,
            mode=mode,
            baseline_sources=baseline,
            workflow=dict(workflow) if workflow is not None else None,
            priority=int(priority),
            tenant=str(tenant) or "default",
            timeout=timeout,
            executor=executor,
            resilience=dict(resilience) if resilience else None,
            callback_url=callback_url,
        )
        with self._lock:
            if idempotency_key and idempotency_key in self._by_key:
                existing = self._jobs.get(self._by_key[idempotency_key])
                if existing is not None:
                    self._count_submit(existing.tenant, deduplicated=True)
                    return existing, False
            try:
                self.admission.admit(job)
            except AdmissionError as error:
                self.rejections[error.reason] = (
                    self.rejections.get(error.reason, 0) + 1
                )
                self._count_rejection(error.reason)
                raise
            job.submitted_at = self._time()
            self._trace_submit_locked(job)
            self._jobs[job.id] = job
            if idempotency_key:
                self._by_key[idempotency_key] = job.id
            self._state_counts[JobState.QUEUED] += 1
            self._bump_tenant(job.tenant, +1)
            self._journal_submit(job)
            self._count_submit(job.tenant, deduplicated=False)
        self.queue.push(job)
        _log.info(
            "job submitted",
            extra={
                "job": job.id,
                "tenant": job.tenant,
                "priority": job.priority,
                "spec": job.spec_reference(),
            },
        )
        return job, True

    # ------------------------------------------------------------------
    # Distributed job traces (see repro.observability.federation)
    # ------------------------------------------------------------------

    def _trace_submit_locked(self, job: ValidationJob) -> None:
        """Open the job's root span and record the ``submit`` segment.

        Only when observability is enabled — the trace context rides the
        job record to whichever worker claims it, and span timestamps are
        wall-clock (``self._time``) because they are compared across
        processes.  Nil cost (``job.trace`` stays None) when disabled.
        """
        if not observability_enabled():
            return
        now = self._time()
        root_id = f"{job.id}:root"
        job.trace = {"trace_id": job.id, "span_id": root_id}
        self.fleet.record_segment(
            job.id,
            [
                {
                    "span_id": root_id,
                    "parent_id": "",
                    "name": "job",
                    "start": job.submitted_at,
                    "end": None,
                    "attrs": {
                        "job": job.id,
                        "tenant": job.tenant,
                        "spec": job.spec_reference(),
                    },
                },
                {
                    "span_id": f"{job.id}:submit",
                    "parent_id": root_id,
                    "name": "submit",
                    "start": job.submitted_at,
                    "end": now,
                    "attrs": {"source": FleetView.SOURCE},
                },
            ],
        )

    def _trace_close_root(self, job: ValidationJob, **attrs) -> None:
        """Re-emit the root span closed; stitching merges by span id."""
        if not job.trace or self.fleet is None:
            return
        end = self._time()
        self.fleet.record_segment(
            job.trace["trace_id"],
            [
                {
                    "span_id": job.trace["span_id"],
                    "parent_id": "",
                    "name": "job",
                    "start": job.submitted_at if job.submitted_at else end,
                    "end": end,
                    "attrs": dict(attrs, state=job.state),
                }
            ],
        )

    def _trace_terminal_locked(self, job: ValidationJob) -> None:
        """Close the root at terminal unless a webhook delivery will."""
        if not job.trace or job.callback_url:
            return
        self._trace_close_root(job, closed_by="terminal")

    def _job_tracer(self, job: ValidationJob):
        """A wall-clock tracer continuing the job's trace in this process."""
        if not job.trace:
            return None
        attempt = job.epoch or job.attempts
        return Tracer(
            origin=SpanContext(job.trace["trace_id"], job.trace["span_id"]),
            prefix=f"{job.id}:{self.worker_id}.{attempt}:",
            time_source=self._time,
        )

    @staticmethod
    def _normalize_sources(sources: Optional[list]) -> list:
        """String refs → descriptor dicts; validate descriptor shapes."""
        normalized = []
        for source in sources or []:
            if isinstance(source, str):
                normalized.append(parse_source_ref(source))
            elif isinstance(source, dict):
                if not source.get("format"):
                    raise ValueError(f"source needs a 'format': {source!r}")
                if "text" not in source and not source.get("path"):
                    raise ValueError(
                        f"source needs 'path' or inline 'text': {source!r}"
                    )
                normalized.append(dict(source))
            else:
                raise ValueError(f"unsupported source entry: {source!r}")
        return normalized

    def submit_payload(self, payload: dict) -> tuple[ValidationJob, bool]:
        """HTTP-shaped submission: validate a JSON body, then submit."""
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        allowed = {
            "spec", "spec_name", "spec_path", "sources", "priority",
            "tenant", "idempotency_key", "timeout", "executor", "resilience",
            "mode", "baseline_sources", "callback_url", "workflow",
        }
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise ValueError(f"unknown field(s): {', '.join(unknown)}")
        for name in (
            "spec", "spec_name", "spec_path", "tenant", "idempotency_key",
            "callback_url",
        ):
            if name in payload and not isinstance(payload[name], str):
                raise ValueError(f"{name!r} must be a string")
        if "executor" in payload and payload["executor"] is not None:
            if payload["executor"] not in ("auto", "serial", "thread", "process"):
                raise ValueError(
                    "executor must be one of auto/serial/thread/process"
                )
        if "priority" in payload and not isinstance(payload["priority"], int):
            raise ValueError("'priority' must be an integer")
        if "timeout" in payload and payload["timeout"] is not None:
            if not isinstance(payload["timeout"], (int, float)):
                raise ValueError("'timeout' must be a number of seconds")
        if "sources" in payload and not isinstance(payload["sources"], list):
            raise ValueError("'sources' must be a list")
        if "mode" in payload and payload["mode"] not in (
            "full", "delta", "workflow",
        ):
            raise ValueError("'mode' must be 'full', 'delta' or 'workflow'")
        if "workflow" in payload and payload["workflow"] is not None:
            if not isinstance(payload["workflow"], dict):
                raise ValueError("'workflow' must be an object")
        if "baseline_sources" in payload and not isinstance(
            payload["baseline_sources"], list
        ):
            raise ValueError("'baseline_sources' must be a list")
        if "resilience" in payload and payload["resilience"] is not None:
            if not isinstance(payload["resilience"], dict):
                raise ValueError("'resilience' must be an object")
        return self.submit(**payload)

    def _count_submit(self, tenant: str, deduplicated: bool) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "confvalley_jobs_submitted_total",
                "Job submissions accepted, by tenant and dedup outcome.",
            ).inc(tenant=tenant, deduplicated=str(deduplicated).lower())
            self._update_depth_gauges()

    def _count_rejection(self, reason: str) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "confvalley_job_rejections_total",
                "Submissions rejected by admission control, by reason.",
            ).inc(reason=reason)

    def _update_depth_gauges(self) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge(
                "confvalley_job_queue_depth",
                "Jobs currently waiting in the queue.",
            ).set(self._state_counts[JobState.QUEUED])
            metrics.gauge(
                "confvalley_jobs_running",
                "Jobs currently executing on the worker pool.",
            ).set(self._state_counts[JobState.RUNNING])

    # ------------------------------------------------------------------
    # Worker protocol (called from WorkerPool threads)
    # ------------------------------------------------------------------

    def _next_job(self, timeout: float = 0.1) -> Optional[ValidationJob]:
        """Pop and transition the next runnable job to RUNNING.

        In multi-process mode the in-process pool competes with external
        workers under the same rules: it must win the job's lease before
        transitioning.  Losing the claim just drops the queue entry — the
        absorb path marks the job RUNNING once the winner's claim event
        lands, and a later re-queue pushes a fresh entry.
        """
        job = self.queue.pop(timeout=timeout)
        if job is None:
            return None
        with self._lock:
            if job.state != JobState.QUEUED:
                return None  # cancelled between pop and this check
            lease = None
            if self.leases is not None:
                lease = self.leases.try_claim(
                    job.id, self.worker_id, job.epoch + 1
                )
                if lease is None:
                    return None  # an external worker holds the claim
                job.epoch = lease.epoch
                job.worker = self.worker_id
                self._held_leases[job.id] = lease
                self._count_lease("claim", worker=self.worker_id)
            self._transition(job, JobState.RUNNING)
            job.started_at = self._time()
            job.attempts += 1
            self._cancel_events[job.id] = threading.Event()
            self._journal_update(
                job,
                state=job.state,
                started_at=job.started_at,
                attempts=job.attempts,
                epoch=job.epoch,
                worker=job.worker,
            )
        metrics = get_metrics()
        if metrics.enabled:
            wait = job.wait_seconds
            if wait is not None:
                metrics.histogram(
                    "confvalley_job_wait_seconds",
                    "Queue wait per job: submission to execution start.",
                ).observe(wait)
            self._update_depth_gauges()
        return job

    def _run_job(self, job: ValidationJob) -> None:
        """Execute one RUNNING job and record its terminal transition."""
        cancel = self._cancel_events.get(job.id)
        tracer = self._job_tracer(job)
        if tracer is not None:
            with tracer.span("claim", worker=self.worker_id, epoch=job.epoch):
                pass  # in-process claim won in _next_job; mark the handoff
        state, result, error = self.executor.execute(job, cancel, tracer=tracer)
        if tracer is not None:
            self.fleet.record_segment(job.id, tracer.finished_spans())
        self._record_terminal(job, state, result, error)

    def _record_terminal(
        self,
        job: ValidationJob,
        state: str,
        result: Optional[dict],
        error: str,
    ) -> None:
        with self._lock:
            self._transition(job, state)
            job.result = result
            job.error = error
            job.finished_at = self._time()
            self._bump_tenant(job.tenant, -1)
            self._cancel_events.pop(job.id, None)
            self._journal_update(
                job,
                state=state,
                result=result,
                error=error,
                finished_at=job.finished_at,
            )
            # terminal-before-release, same as external workers: the
            # durable record exists before the lease can be re-claimed
            lease = self._held_leases.pop(job.id, None)
            if lease is not None and self.leases is not None:
                self.leases.release(lease)
            self._enqueue_webhook_locked(job)
            self._trace_terminal_locked(job)
            self._evict_locked()
            self._done.notify_all()
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "confvalley_jobs_finished_total",
                "Jobs reaching a terminal state, by state.",
            ).inc(state=state)
            run = job.run_seconds
            if run is not None:
                metrics.histogram(
                    "confvalley_job_run_seconds",
                    "Execution wall clock per job.",
                ).observe(run)
            self._update_depth_gauges()
        _log.info(
            "job finished",
            extra={
                "job": job.id,
                "state": state,
                "verdict": (result or {}).get("verdict"),
                "run_seconds": job.run_seconds,
            },
        )

    # ------------------------------------------------------------------
    # Completion webhooks
    # ------------------------------------------------------------------

    def _enqueue_webhook_locked(self, job: ValidationJob) -> None:
        """Queue the terminal record for delivery to ``callback_url``."""
        if not job.callback_url:
            return
        job.webhook = {"state": "pending", "attempts": 0}
        if job.trace:
            self._webhook_trace_start[job.id] = self._time()
        self._journal_update(job, webhook=job.webhook)
        self.webhooks.submit(job.id, job.callback_url, job.to_dict())

    def _webhook_result(
        self, job_id: str, outcome: str, attempts: int, error: str
    ) -> None:
        """Dispatcher callback: journal the final delivery state.

        For traced jobs this is also where the distributed trace ends —
        the delivery gets its own span and the root is re-emitted closed.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            started = self._webhook_trace_start.pop(job_id, None)
            if job is None:
                return  # evicted by retention meanwhile; nothing to pin
            job.webhook = {"state": outcome, "attempts": attempts}
            if error:
                job.webhook["error"] = error
            self._journal_update(job, webhook=job.webhook)
            if job.trace and self.fleet is not None:
                now = self._time()
                attrs = {"outcome": outcome, "attempts": attempts}
                if error:
                    attrs["error"] = error
                self.fleet.record_segment(
                    job.trace["trace_id"],
                    [
                        {
                            "span_id": f"{job.id}:webhook",
                            "parent_id": job.trace["span_id"],
                            "name": "webhook",
                            "start": started if started is not None else now,
                            "end": now,
                            "attrs": attrs,
                        }
                    ],
                )
                self._trace_close_root(job, closed_by="webhook")

    # ------------------------------------------------------------------
    # Reaper: absorb worker events, renew own leases, expire stale ones
    # ------------------------------------------------------------------

    def start_reaper(self) -> None:
        if self._reaper is not None or self.directory is None:
            return
        self._reaper_stop.clear()
        self._reaper = threading.Thread(
            target=self._reaper_loop, name="confvalley-reaper", daemon=True
        )
        self._reaper.start()

    def _reaper_loop(self) -> None:
        while not self._reaper_stop.wait(self.reaper_interval):
            try:
                self.reaper_tick()
            except Exception:  # the reaper must outlive any one bad tick
                _log.exception("reaper tick failed")

    def reaper_tick(self) -> dict:
        """One coordination pass; public so tests can drive it directly.

        Order matters: absorb first (a worker's terminal event beats its
        lease's expiry), renew the in-process pool's leases, then judge
        the rest.  A RUNNING job whose lease *vanished* gets one more
        absorb before being re-queued — release strictly follows the
        terminal append in the worker protocol, so if the lease is gone
        the result is already on disk and the second poll reads it.
        """
        summary = {"absorbed": 0, "requeued": 0, "expired": 0, "restarted": 0}
        held: list = []
        with self._lock:
            summary["absorbed"] = self._absorb_worker_events_locked()
            held = sorted(self._held_leases)
            if self.leases is not None:
                for lease in list(self._held_leases.values()):
                    self.leases.renew(lease)
                now = self._time()
                candidates = [
                    job
                    for job in self._jobs.values()
                    if job.state == JobState.RUNNING
                    and job.id not in self._held_leases
                    and self._lease_stale(job, now)
                ]
                if candidates:
                    summary["absorbed"] += self._absorb_worker_events_locked()
                for job in candidates:
                    if job.state != JobState.RUNNING:
                        continue  # its terminal event landed in the re-poll
                    if self._expire_locked(job):
                        summary["expired"] += 1
                    else:
                        summary["requeued"] += 1
                self._sweep_orphan_leases_locked()
        if self.supervisor is not None:
            summary["restarted"] = self.supervisor.check()
        if self.pool.workers > 0 and self.leases is not None:
            self.leases.announce(
                self.worker_id,
                kind="in-process",
                threads=self.pool.workers,
                current_jobs=held,
            )
        self._gauge_leases()
        return summary

    def _lease_stale(self, job: ValidationJob, now: float) -> bool:
        lease = self.leases.read(job.id)
        return lease is None or lease.deadline < now

    def _expire_locked(self, job: ValidationJob) -> bool:
        """Re-queue (False) or park as EXPIRED (True) an orphaned job."""
        self.leases.break_lease(job.id)
        job.requeues += 1
        self.lease_expiries += 1
        self._count_lease("expire", worker=job.worker or "unknown")
        if job.requeues > self.max_requeues:
            self.expired_total += 1
            error = (
                f"worker lease expired {job.requeues} times; "
                "retry budget exhausted"
            )
            _log.warning(
                "lease retry budget exhausted; parking job",
                extra={"job": job.id, "requeues": job.requeues},
            )
            self._transition(job, JobState.EXPIRED)
            job.result = None
            job.error = error
            job.finished_at = self._time()
            self._bump_tenant(job.tenant, -1)
            self._journal_update(
                job,
                state=job.state,
                requeues=job.requeues,
                error=error,
                finished_at=job.finished_at,
            )
            self._enqueue_webhook_locked(job)
            self._trace_terminal_locked(job)
            self._count_finished(JobState.EXPIRED)
            self._done.notify_all()
            return True
        self.requeues_total += 1
        self._count_requeue("lease-expired")
        _log.warning(
            "lease expired; re-queueing job",
            extra={
                "job": job.id,
                "worker": job.worker,
                "requeues": job.requeues,
            },
        )
        self._transition(job, JobState.QUEUED)
        job.started_at = None
        self._journal_update(
            job,
            state=job.state,
            requeues=job.requeues,
            started_at=None,
        )
        self.queue.push(job)
        return False

    def _sweep_orphan_leases_locked(self) -> None:
        """Break expired leases that never became a RUNNING job.

        A worker that died between winning the lease file and appending
        its claim event leaves a lease pointing at a QUEUED (or unknown)
        job.  No attempt ever started, so this costs no re-queue budget —
        but the lease must go, or the job is unclaimable forever; a
        QUEUED job also re-enters the in-memory heap, since the pool's
        entry for it was consumed by the failed claim attempt.
        """
        for lease in self.leases.expired():
            if lease.job_id in self._held_leases:
                continue
            job = self._jobs.get(lease.job_id)
            if job is not None and job.state == JobState.RUNNING:
                continue  # the expiry path above owns this case
            self.leases.break_lease(lease.job_id)
            if job is not None and job.state == JobState.QUEUED:
                self.queue.push(job)

    def _absorb_worker_events_locked(self) -> int:
        """Fold newly-appended worker-partition events into live state."""
        if self.directory is None:
            return 0
        applied = 0
        for name, path in self.directory.partitions().items():
            tail = self._worker_tails.get(name)
            if tail is None:
                tail = self._worker_tails[name] = JournalTail(path)
            events, __ = tail.poll()
            for event in events:
                job = self._jobs.get(event.get("id", ""))
                if job is None:
                    continue
                before = job.state
                if not apply_worker_event(job, event):
                    continue
                applied += 1
                if job.state != before:
                    self._state_counts[before] -= 1
                    self._state_counts[job.state] += 1
                counts = self._worker_counts.setdefault(
                    job.worker, {"claims": 0, "done": 0}
                )
                if event.get("event") == "claim":
                    counts["claims"] += 1
                    self._count_lease("claim", worker=job.worker)
                    self._journal_update(
                        job,
                        state=job.state,
                        epoch=job.epoch,
                        worker=job.worker,
                        attempts=job.attempts,
                        started_at=job.started_at,
                    )
                else:  # terminal
                    counts["done"] += 1
                    self._bump_tenant(job.tenant, -1)
                    self._cancel_events.pop(job.id, None)
                    self._journal_update(
                        job,
                        state=job.state,
                        result=job.result,
                        error=job.error,
                        finished_at=job.finished_at,
                    )
                    self._enqueue_webhook_locked(job)
                    self._trace_terminal_locked(job)
                    self._count_finished(job.state)
                    _log.info(
                        "absorbed worker result",
                        extra={
                            "job": job.id,
                            "worker": job.worker,
                            "state": job.state,
                        },
                    )
        if applied:
            self._evict_locked()
            self._done.notify_all()
            self._update_depth_gauges()
        return applied

    # ------------------------------------------------------------------
    # Worker fleet introspection (GET /workers)
    # ------------------------------------------------------------------

    def workers_payload(self) -> dict:
        """The fleet view: presence, live leases, per-worker counters."""
        if self.directory is None or self.leases is None:
            return {
                "mode": "single-process",
                "pool_threads": self.pool.workers,
                "workers": [],
                "leases": [],
            }
        now = self._time()
        with self._lock:
            counts = {
                worker: dict(count)
                for worker, count in self._worker_counts.items()
            }
            held = sorted(self._held_leases)
        workers = self.leases.workers()
        metric_ages = {
            row["worker"]: row["metrics_age_s"]
            for row in self.fleet.metric_rows()
        }
        trace_last = {
            row["source"]: row["last_segment_at"]
            for row in self.fleet.trace_stats()
        }
        for row in workers:
            worker_id = row.get("id", "")
            row["counts"] = counts.get(worker_id, {})
            # observability staleness alongside lease state (fleet triage)
            row["metrics_age_s"] = metric_ages.get(worker_id)
            row["last_trace_segment_at"] = trace_last.get(worker_id)
        leases = []
        for lease in self.leases.live_leases():
            record = lease.to_dict()
            record["expires_in"] = round(lease.deadline - now, 3)
            leases.append(record)
        payload = {
            "mode": "multi-process",
            "journal_dir": self.directory.root,
            "lease_ttl": self.lease_ttl,
            "max_requeues": self.max_requeues,
            "pool_threads": self.pool.workers,
            "inproc_held": held,
            "workers": workers,
            "leases": leases,
            "lease_expiries": self.lease_expiries,
            "requeues": self.requeues_total,
            "expired_jobs": self.expired_total,
        }
        if self.supervisor is not None:
            payload["supervisor"] = self.supervisor.status()
        return payload

    # ------------------------------------------------------------------
    # Fleet observability (GET /fleet, federated /metrics, job traces)
    # ------------------------------------------------------------------

    def trace(self, job_id: str) -> dict:
        """The stitched cross-process trace for one job (by trace id)."""
        return self.fleet.trace(job_id)

    def federated_metrics(self) -> Optional[dict]:
        """Merged metric families for the fleet, or None single-process.

        The coordinator's own registry plus every fresh worker snapshot
        (``worker``-labeled) plus the ``confvalley_fleet_*`` rollup and
        presence families — the document behind ``/metrics`` and
        ``/metrics.json`` in multi-process mode.
        """
        if self.directory is None:
            return None
        return self.fleet.merged_families(get_metrics().to_dict())

    def fleet_payload(self) -> dict:
        """The ``GET /fleet`` document: presence ⋈ freshness ⋈ throughput."""
        payload = self.fleet.fleet_payload()
        with self._lock:
            counts = {
                worker: dict(count)
                for worker, count in self._worker_counts.items()
            }
        for row in payload["workers"]:
            row["counts"] = counts.get(row["worker"], {})
        payload["presence"] = (
            self.leases.workers() if self.leases is not None else []
        )
        return payload

    # ------------------------------------------------------------------
    # Lease / requeue metrics
    # ------------------------------------------------------------------

    def _count_lease(self, event: str, worker: str) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "confvalley_lease_events_total",
                "Lease lifecycle events, by event kind and worker.",
            ).inc(event=event, worker=worker)

    def _count_requeue(self, reason: str) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "confvalley_job_requeues_total",
                "Mid-flight jobs returned to the queue, by reason.",
            ).inc(reason=reason)

    def _count_finished(self, state: str) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "confvalley_jobs_finished_total",
                "Jobs reaching a terminal state, by state.",
            ).inc(state=state)

    def _gauge_leases(self) -> None:
        metrics = get_metrics()
        if metrics.enabled and self.leases is not None:
            metrics.gauge(
                "confvalley_leases_active",
                "Live lease files in the shared job directory.",
            ).set(len(self.leases.live_leases()))

    # ------------------------------------------------------------------
    # Lifecycle API
    # ------------------------------------------------------------------

    def get(self, job_id: str) -> Optional[ValidationJob]:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> ValidationJob:
        """Cancel a job: immediate for QUEUED, best-effort for RUNNING.

        Raises :class:`KeyError` for unknown ids and :class:`ValueError`
        when the job is already terminal.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            if job.terminal:
                raise ValueError(f"job {job_id} is already {job.state}")
            job.cancel_requested = True
            if job.state == JobState.QUEUED:
                self._transition(job, JobState.CANCELLED)
                job.finished_at = self._time()
                job.error = "cancelled before execution"
                self._bump_tenant(job.tenant, -1)
                self._journal_update(
                    job,
                    state=job.state,
                    cancel_requested=True,
                    error=job.error,
                    finished_at=job.finished_at,
                )
                self._trace_terminal_locked(job)
                self._done.notify_all()
            else:  # RUNNING: the supervising worker observes the event
                event = self._cancel_events.get(job.id)
                if event is not None:
                    event.set()
                self._journal_update(job, cancel_requested=True)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "confvalley_job_cancellations_total",
                "Cancellation requests accepted, by state at request time.",
            ).inc(state=job.state)
            self._update_depth_gauges()
        return job

    def wait(self, job_id: str, timeout: Optional[float] = None) -> ValidationJob:
        """Block until the job reaches a terminal state (test/CLI helper)."""
        deadline = None if timeout is None else _clock.now() + timeout
        with self._done:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    raise KeyError(job_id)
                if job.terminal:
                    return job
                remaining = None
                if deadline is not None:
                    remaining = deadline - _clock.now()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"job {job_id} still {job.state} after {timeout}s"
                        )
                self._done.wait(remaining if remaining is not None else 0.5)

    def list_jobs(
        self,
        state: Optional[str] = None,
        tenant: Optional[str] = None,
        limit: int = 50,
    ) -> list[dict]:
        """Job summaries, newest submissions first, optionally filtered."""
        with self._lock:
            jobs = list(self._jobs.values())
        if state:
            jobs = [job for job in jobs if job.state == state]
        if tenant:
            jobs = [job for job in jobs if job.tenant == tenant]
        jobs.sort(key=lambda job: (job.submitted_at or 0.0, job.id), reverse=True)
        return [job.summary() for job in jobs[: max(0, limit)]]

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------

    def _evict_locked(self) -> None:
        """Drop the oldest terminal jobs beyond the retention policy."""
        terminal = [job for job in self._jobs.values() if job.terminal]
        evict = []
        if self.retention_age is not None:
            horizon = self._time() - self.retention_age
            evict.extend(
                job for job in terminal
                if (job.finished_at or 0.0) < horizon
            )
        overflow = len(terminal) - len(evict) - self.retention_count
        if overflow > 0:
            remaining = sorted(
                (job for job in terminal if job not in evict),
                key=lambda job: (job.finished_at or 0.0, job.id),
            )
            evict.extend(remaining[:overflow])
        for job in evict:
            self._state_counts[job.state] -= 1
            del self._jobs[job.id]
            if job.idempotency_key:
                self._by_key.pop(job.idempotency_key, None)

    # ------------------------------------------------------------------
    # Status / shutdown
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """JSON-safe status block (merged into the service ``stats()``)."""
        with self._lock:
            states = {
                state: count
                for state, count in self._state_counts.items()
                if count
            }
            payload = {
                "jobs": len(self._jobs),
                "queued": self._state_counts[JobState.QUEUED],
                "running": self._state_counts[JobState.RUNNING],
                "states": states,
                "workers": self.pool.workers,
                "rejections": dict(self.rejections),
                "tenants_in_flight": dict(self._tenant_in_flight),
                "queue_depth_cap": self.admission.max_depth,
                "per_tenant_limit": self.admission.per_tenant_limit,
                "rate_limit": self.admission.bucket.rate,
                "retention_count": self.retention_count,
                "retention_age": self.retention_age,
                "journal": self.journal.path if self.journal else None,
                "mode": "multi-process" if self.directory else "single-process",
                "webhooks": self.webhooks.stats(),
            }
            if self.directory is not None:
                payload["journal_dir"] = self.directory.root
                payload["lease_ttl"] = self.lease_ttl
                payload["max_requeues"] = self.max_requeues
                payload["leases"] = {
                    "held_in_process": len(self._held_leases),
                    "expiries": self.lease_expiries,
                    "requeues": self.requeues_total,
                    "expired_jobs": self.expired_total,
                }
            if self.supervisor is not None:
                payload["worker_procs"] = self.supervisor.status()
        payload["fleet"] = self.fleet.fleet_payload()
        return payload

    def close(self, drain: bool = True, timeout: Optional[float] = 30.0) -> bool:
        """Shut down: optionally drain in-flight jobs, persist, close.

        QUEUED jobs stay QUEUED in the journal — the whole point of the
        durable queue is that the next start resumes them.  Returns True
        when every worker exited within ``timeout``.

        Shutdown order matters: every thread that can append to the
        journal (reaper, webhook dispatcher, pool workers) is stopped
        before the final compaction, so the closing rotate never races an
        appender.  External worker processes get SIGTERM and finish their
        in-flight job; anything they complete after our final absorb is
        still durable in their partitions and absorbed on the next start.
        """
        self._reaper_stop.set()
        reaper, self._reaper = self._reaper, None
        if reaper is not None:
            reaper.join(timeout=5.0)
        if self.supervisor is not None:
            self.supervisor.stop()
        clean = self.pool.drain(timeout=timeout if drain else 0.0)
        if self.directory is not None:
            with self._lock:
                self._absorb_worker_events_locked()
            if self.pool.workers > 0 and self.leases is not None:
                self.leases.retire(self.worker_id)
        self.webhooks.close()
        if self.journal is not None:
            self.journal.rotate(self._snapshot_jobs)
            self.journal.close()
        _log.info("job service closed", extra={"clean": clean})
        return clean
