"""The asynchronous validation job service (``repro.jobs``).

:class:`JobService` composes the four pieces the ISSUE names into one
facade: the durable journal (:mod:`.journal`), admission-controlled
priority queue (:mod:`.queue`), supervised worker pool (:mod:`.worker`)
and the submission/lifecycle API consumed by the HTTP layer
(:mod:`repro.observability.server`) and the CLI (``confvalley submit`` /
``jobs`` / ``cancel``).

Lifecycle contract:

* **submit** validates the request, deduplicates on the idempotency key,
  runs admission control (raising a structured
  :class:`~repro.jobs.model.AdmissionError` on backpressure — never
  blocking), journals the job, and enqueues it;
* **workers** drain the queue through
  :class:`~repro.jobs.worker.JobExecutor`: per-job timeout/cancel
  supervision, shared compiled-spec cache, verdicts byte-identical to a
  direct ``validate`` run (``fingerprint()`` parity);
* **crash recovery** replays the journal on construction: terminal jobs
  are retained (up to the retention policy), QUEUED jobs resume, and
  RUNNING jobs — in flight when the previous process died — are
  re-queued exactly once, then marked ``INTERRUPTED`` if they die again;
* **drain** (SIGTERM path) finishes running jobs and leaves the rest
  QUEUED in the journal for the next start;
* **retention** evicts terminal jobs beyond ``retention_count`` or older
  than ``retention_age`` seconds, and the journal compacts itself every
  ``rotate_after`` events, so neither memory nor disk grows without bound.

The service is thread-safe with a single coarse lock around state
transitions; the scan loop of a co-hosted
:class:`~repro.service.ValidationService` never blocks on it for longer
than a dict update.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from ..observability import get_logger, get_metrics
from ..parallel.cache import SpecCache
from ..runtime import clock as _clock
from .journal import JobJournal
from .model import AdmissionError, JobState, ValidationJob
from .queue import AdmissionController, JobQueue
from .worker import JobExecutor, WorkerPool

__all__ = ["JobService"]

_log = get_logger("jobs.service")

#: mid-flight attempts crash recovery will re-queue before parking a job
MAX_REQUEUES = 1


def parse_source_ref(entry: str) -> dict:
    """``FMT:PATH[:SCOPE]`` → a job source descriptor dict."""
    parts = entry.split(":", 2)
    if len(parts) < 2 or not parts[0] or not parts[1]:
        raise ValueError(f"source reference needs FMT:PATH, got {entry!r}")
    descriptor = {"format": parts[0], "path": parts[1]}
    if len(parts) > 2 and parts[2]:
        descriptor["scope"] = parts[2]
    return descriptor


class JobService:
    """Durable, admission-controlled asynchronous validation jobs."""

    def __init__(
        self,
        journal_path: Optional[str] = None,
        workers: int = 2,
        queue_depth: int = 256,
        per_tenant_limit: int = 0,
        rate: float = 0.0,
        burst: Optional[float] = None,
        retention_count: int = 512,
        retention_age: Optional[float] = 3600.0,
        rotate_after: int = 4096,
        fsync: bool = False,
        spec_cache: Optional[SpecCache] = None,
        runtime=None,
        base_dir: str = ".",
        default_timeout: Optional[float] = None,
        time_fn=time.time,
        start: bool = True,
    ):
        self._time = time_fn
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._jobs: dict[str, ValidationJob] = {}
        self._by_key: dict[str, str] = {}
        self._cancel_events: dict[str, threading.Event] = {}
        self._state_counts = {state: 0 for state in JobState.ALL}
        self._tenant_in_flight: dict[str, int] = {}
        self.rejections: dict[str, int] = {}
        self.retention_count = retention_count
        self.retention_age = retention_age
        self.spec_cache = spec_cache if spec_cache is not None else SpecCache()
        self.queue = JobQueue()
        self.admission = AdmissionController(
            max_depth=queue_depth,
            per_tenant_limit=per_tenant_limit,
            rate=rate,
            burst=burst,
            depth=lambda: self._state_counts[JobState.QUEUED],
            tenant_in_flight=lambda tenant: self._tenant_in_flight.get(tenant, 0),
        )
        self.executor = JobExecutor(
            spec_cache=self.spec_cache,
            runtime=runtime,
            base_dir=base_dir,
            default_timeout=default_timeout,
        )
        self.journal: Optional[JobJournal] = None
        if journal_path is not None:
            self.journal = JobJournal(
                journal_path,
                rotate_after=rotate_after,
                fsync=fsync,
                snapshot_source=self._snapshot_jobs,
            )
            self._recover()
        self.pool = WorkerPool(self, workers=workers)
        if start:
            self.pool.start()

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------

    def _snapshot_jobs(self) -> list[dict]:
        with self._lock:
            return [job.to_dict() for job in self._jobs.values()]

    def _journal_submit(self, job: ValidationJob) -> None:
        if self.journal is not None:
            self.journal.append({"event": "submit", "job": job.to_dict()})

    def _journal_update(self, job: ValidationJob, **fields) -> None:
        if self.journal is not None:
            self.journal.append(
                {"event": "update", "id": job.id, "fields": fields}
            )

    def _recover(self) -> None:
        """Fold the journal back into live state (see module docstring)."""
        events = self.journal.replay()
        if not events:
            return
        jobs = JobJournal.fold(events, ValidationJob.from_dict)
        resumed = requeued = interrupted = 0
        for job in jobs.values():
            self._jobs[job.id] = job
            if job.idempotency_key:
                self._by_key[job.idempotency_key] = job.id
            if job.state == JobState.RUNNING:
                if job.requeues < MAX_REQUEUES:
                    job.requeues += 1
                    job.state = JobState.QUEUED
                    job.started_at = None
                    self._journal_update(
                        job,
                        state=job.state,
                        requeues=job.requeues,
                        started_at=None,
                    )
                    requeued += 1
                else:
                    job.state = JobState.INTERRUPTED
                    job.error = (
                        "interrupted twice by service crashes; not retried"
                    )
                    job.finished_at = self._time()
                    self._journal_update(
                        job,
                        state=job.state,
                        error=job.error,
                        finished_at=job.finished_at,
                    )
                    interrupted += 1
            self._state_counts[job.state] += 1
            if job.state == JobState.QUEUED:
                self._bump_tenant(job.tenant, +1)
                self.queue.push(job)
                resumed += 1
        if resumed or interrupted:
            _log.info(
                "journal recovery complete",
                extra={
                    "jobs": len(jobs),
                    "resumed": resumed,
                    "requeued": requeued,
                    "interrupted": interrupted,
                },
            )
        # recovery rewrote states; compact so the next crash replays the
        # folded view instead of the whole pre-crash event stream
        self.journal.rotate(job.to_dict() for job in jobs.values())

    # ------------------------------------------------------------------
    # State accounting (always called under self._lock)
    # ------------------------------------------------------------------

    def _bump_tenant(self, tenant: str, delta: int) -> None:
        count = self._tenant_in_flight.get(tenant, 0) + delta
        if count <= 0:
            self._tenant_in_flight.pop(tenant, None)
        else:
            self._tenant_in_flight[tenant] = count

    def _transition(self, job: ValidationJob, state: str) -> None:
        self._state_counts[job.state] -= 1
        self._state_counts[state] += 1
        job.state = state

    # ------------------------------------------------------------------
    # Spec registry
    # ------------------------------------------------------------------

    def register_spec(self, name: str, text: str) -> None:
        """Publish a named server-side spec for ``spec_name`` submissions."""
        self.executor.spec_registry[name] = text

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        spec: str = "",
        spec_name: str = "",
        spec_path: str = "",
        sources: Optional[list] = None,
        priority: int = 0,
        tenant: str = "default",
        idempotency_key: str = "",
        timeout: Optional[float] = None,
        executor: Optional[str] = None,
        resilience: Optional[dict] = None,
        mode: str = "full",
        baseline_sources: Optional[list] = None,
    ) -> tuple[ValidationJob, bool]:
        """Accept one validation request.

        Returns ``(job, created)`` — ``created`` is False when the
        idempotency key matched an existing job, which is returned
        unchanged.  Raises :class:`ValueError` on a malformed request and
        :class:`AdmissionError` on backpressure.

        ``mode="delta"`` scopes the run to the statements affected by the
        difference between ``sources`` and ``baseline_sources`` (the
        before-the-change snapshot); see
        :meth:`repro.jobs.worker.JobExecutor._validate_delta`.
        """
        provided = [bool(spec), bool(spec_name), bool(spec_path)]
        if sum(provided) != 1:
            raise ValueError(
                "exactly one of spec (inline text), spec_name or spec_path "
                "must be provided"
            )
        if mode not in ("full", "delta"):
            raise ValueError("mode must be 'full' or 'delta'")
        if mode != "delta" and baseline_sources:
            raise ValueError("baseline_sources requires mode='delta'")
        normalized = self._normalize_sources(sources)
        baseline = self._normalize_sources(baseline_sources)
        job = ValidationJob(
            idempotency_key=idempotency_key,
            spec_text=spec,
            spec_name=spec_name,
            spec_path=spec_path,
            sources=normalized,
            mode=mode,
            baseline_sources=baseline,
            priority=int(priority),
            tenant=str(tenant) or "default",
            timeout=timeout,
            executor=executor,
            resilience=dict(resilience) if resilience else None,
        )
        with self._lock:
            if idempotency_key and idempotency_key in self._by_key:
                existing = self._jobs.get(self._by_key[idempotency_key])
                if existing is not None:
                    self._count_submit(existing.tenant, deduplicated=True)
                    return existing, False
            try:
                self.admission.admit(job)
            except AdmissionError as error:
                self.rejections[error.reason] = (
                    self.rejections.get(error.reason, 0) + 1
                )
                self._count_rejection(error.reason)
                raise
            job.submitted_at = self._time()
            self._jobs[job.id] = job
            if idempotency_key:
                self._by_key[idempotency_key] = job.id
            self._state_counts[JobState.QUEUED] += 1
            self._bump_tenant(job.tenant, +1)
            self._journal_submit(job)
            self._count_submit(job.tenant, deduplicated=False)
        self.queue.push(job)
        _log.info(
            "job submitted",
            extra={
                "job": job.id,
                "tenant": job.tenant,
                "priority": job.priority,
                "spec": job.spec_reference(),
            },
        )
        return job, True

    @staticmethod
    def _normalize_sources(sources: Optional[list]) -> list:
        """String refs → descriptor dicts; validate descriptor shapes."""
        normalized = []
        for source in sources or []:
            if isinstance(source, str):
                normalized.append(parse_source_ref(source))
            elif isinstance(source, dict):
                if not source.get("format"):
                    raise ValueError(f"source needs a 'format': {source!r}")
                if "text" not in source and not source.get("path"):
                    raise ValueError(
                        f"source needs 'path' or inline 'text': {source!r}"
                    )
                normalized.append(dict(source))
            else:
                raise ValueError(f"unsupported source entry: {source!r}")
        return normalized

    def submit_payload(self, payload: dict) -> tuple[ValidationJob, bool]:
        """HTTP-shaped submission: validate a JSON body, then submit."""
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        allowed = {
            "spec", "spec_name", "spec_path", "sources", "priority",
            "tenant", "idempotency_key", "timeout", "executor", "resilience",
            "mode", "baseline_sources",
        }
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise ValueError(f"unknown field(s): {', '.join(unknown)}")
        for name in ("spec", "spec_name", "spec_path", "tenant", "idempotency_key"):
            if name in payload and not isinstance(payload[name], str):
                raise ValueError(f"{name!r} must be a string")
        if "executor" in payload and payload["executor"] is not None:
            if payload["executor"] not in ("auto", "serial", "thread", "process"):
                raise ValueError(
                    "executor must be one of auto/serial/thread/process"
                )
        if "priority" in payload and not isinstance(payload["priority"], int):
            raise ValueError("'priority' must be an integer")
        if "timeout" in payload and payload["timeout"] is not None:
            if not isinstance(payload["timeout"], (int, float)):
                raise ValueError("'timeout' must be a number of seconds")
        if "sources" in payload and not isinstance(payload["sources"], list):
            raise ValueError("'sources' must be a list")
        if "mode" in payload and payload["mode"] not in ("full", "delta"):
            raise ValueError("'mode' must be 'full' or 'delta'")
        if "baseline_sources" in payload and not isinstance(
            payload["baseline_sources"], list
        ):
            raise ValueError("'baseline_sources' must be a list")
        if "resilience" in payload and payload["resilience"] is not None:
            if not isinstance(payload["resilience"], dict):
                raise ValueError("'resilience' must be an object")
        return self.submit(**payload)

    def _count_submit(self, tenant: str, deduplicated: bool) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "confvalley_jobs_submitted_total",
                "Job submissions accepted, by tenant and dedup outcome.",
            ).inc(tenant=tenant, deduplicated=str(deduplicated).lower())
            self._update_depth_gauges()

    def _count_rejection(self, reason: str) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "confvalley_job_rejections_total",
                "Submissions rejected by admission control, by reason.",
            ).inc(reason=reason)

    def _update_depth_gauges(self) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge(
                "confvalley_job_queue_depth",
                "Jobs currently waiting in the queue.",
            ).set(self._state_counts[JobState.QUEUED])
            metrics.gauge(
                "confvalley_jobs_running",
                "Jobs currently executing on the worker pool.",
            ).set(self._state_counts[JobState.RUNNING])

    # ------------------------------------------------------------------
    # Worker protocol (called from WorkerPool threads)
    # ------------------------------------------------------------------

    def _next_job(self, timeout: float = 0.1) -> Optional[ValidationJob]:
        """Pop and transition the next runnable job to RUNNING."""
        job = self.queue.pop(timeout=timeout)
        if job is None:
            return None
        with self._lock:
            if job.state != JobState.QUEUED:
                return None  # cancelled between pop and this check
            self._transition(job, JobState.RUNNING)
            job.started_at = self._time()
            job.attempts += 1
            self._cancel_events[job.id] = threading.Event()
            self._journal_update(
                job,
                state=job.state,
                started_at=job.started_at,
                attempts=job.attempts,
            )
        metrics = get_metrics()
        if metrics.enabled:
            wait = job.wait_seconds
            if wait is not None:
                metrics.histogram(
                    "confvalley_job_wait_seconds",
                    "Queue wait per job: submission to execution start.",
                ).observe(wait)
            self._update_depth_gauges()
        return job

    def _run_job(self, job: ValidationJob) -> None:
        """Execute one RUNNING job and record its terminal transition."""
        cancel = self._cancel_events.get(job.id)
        state, result, error = self.executor.execute(job, cancel)
        self._record_terminal(job, state, result, error)

    def _record_terminal(
        self,
        job: ValidationJob,
        state: str,
        result: Optional[dict],
        error: str,
    ) -> None:
        with self._lock:
            self._transition(job, state)
            job.result = result
            job.error = error
            job.finished_at = self._time()
            self._bump_tenant(job.tenant, -1)
            self._cancel_events.pop(job.id, None)
            self._journal_update(
                job,
                state=state,
                result=result,
                error=error,
                finished_at=job.finished_at,
            )
            self._evict_locked()
            self._done.notify_all()
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "confvalley_jobs_finished_total",
                "Jobs reaching a terminal state, by state.",
            ).inc(state=state)
            run = job.run_seconds
            if run is not None:
                metrics.histogram(
                    "confvalley_job_run_seconds",
                    "Execution wall clock per job.",
                ).observe(run)
            self._update_depth_gauges()
        _log.info(
            "job finished",
            extra={
                "job": job.id,
                "state": state,
                "verdict": (result or {}).get("verdict"),
                "run_seconds": job.run_seconds,
            },
        )

    # ------------------------------------------------------------------
    # Lifecycle API
    # ------------------------------------------------------------------

    def get(self, job_id: str) -> Optional[ValidationJob]:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> ValidationJob:
        """Cancel a job: immediate for QUEUED, best-effort for RUNNING.

        Raises :class:`KeyError` for unknown ids and :class:`ValueError`
        when the job is already terminal.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            if job.terminal:
                raise ValueError(f"job {job_id} is already {job.state}")
            job.cancel_requested = True
            if job.state == JobState.QUEUED:
                self._transition(job, JobState.CANCELLED)
                job.finished_at = self._time()
                job.error = "cancelled before execution"
                self._bump_tenant(job.tenant, -1)
                self._journal_update(
                    job,
                    state=job.state,
                    cancel_requested=True,
                    error=job.error,
                    finished_at=job.finished_at,
                )
                self._done.notify_all()
            else:  # RUNNING: the supervising worker observes the event
                event = self._cancel_events.get(job.id)
                if event is not None:
                    event.set()
                self._journal_update(job, cancel_requested=True)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "confvalley_job_cancellations_total",
                "Cancellation requests accepted, by state at request time.",
            ).inc(state=job.state)
            self._update_depth_gauges()
        return job

    def wait(self, job_id: str, timeout: Optional[float] = None) -> ValidationJob:
        """Block until the job reaches a terminal state (test/CLI helper)."""
        deadline = None if timeout is None else _clock.now() + timeout
        with self._done:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    raise KeyError(job_id)
                if job.terminal:
                    return job
                remaining = None
                if deadline is not None:
                    remaining = deadline - _clock.now()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"job {job_id} still {job.state} after {timeout}s"
                        )
                self._done.wait(remaining if remaining is not None else 0.5)

    def list_jobs(
        self,
        state: Optional[str] = None,
        tenant: Optional[str] = None,
        limit: int = 50,
    ) -> list[dict]:
        """Job summaries, newest submissions first, optionally filtered."""
        with self._lock:
            jobs = list(self._jobs.values())
        if state:
            jobs = [job for job in jobs if job.state == state]
        if tenant:
            jobs = [job for job in jobs if job.tenant == tenant]
        jobs.sort(key=lambda job: (job.submitted_at or 0.0, job.id), reverse=True)
        return [job.summary() for job in jobs[: max(0, limit)]]

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------

    def _evict_locked(self) -> None:
        """Drop the oldest terminal jobs beyond the retention policy."""
        terminal = [job for job in self._jobs.values() if job.terminal]
        evict = []
        if self.retention_age is not None:
            horizon = self._time() - self.retention_age
            evict.extend(
                job for job in terminal
                if (job.finished_at or 0.0) < horizon
            )
        overflow = len(terminal) - len(evict) - self.retention_count
        if overflow > 0:
            remaining = sorted(
                (job for job in terminal if job not in evict),
                key=lambda job: (job.finished_at or 0.0, job.id),
            )
            evict.extend(remaining[:overflow])
        for job in evict:
            self._state_counts[job.state] -= 1
            del self._jobs[job.id]
            if job.idempotency_key:
                self._by_key.pop(job.idempotency_key, None)

    # ------------------------------------------------------------------
    # Status / shutdown
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """JSON-safe status block (merged into the service ``stats()``)."""
        with self._lock:
            states = {
                state: count
                for state, count in self._state_counts.items()
                if count
            }
            return {
                "jobs": len(self._jobs),
                "queued": self._state_counts[JobState.QUEUED],
                "running": self._state_counts[JobState.RUNNING],
                "states": states,
                "workers": self.pool.workers,
                "rejections": dict(self.rejections),
                "tenants_in_flight": dict(self._tenant_in_flight),
                "queue_depth_cap": self.admission.max_depth,
                "per_tenant_limit": self.admission.per_tenant_limit,
                "rate_limit": self.admission.bucket.rate,
                "retention_count": self.retention_count,
                "retention_age": self.retention_age,
                "journal": self.journal.path if self.journal else None,
            }

    def close(self, drain: bool = True, timeout: Optional[float] = 30.0) -> bool:
        """Shut down: optionally drain in-flight jobs, persist, close.

        QUEUED jobs stay QUEUED in the journal — the whole point of the
        durable queue is that the next start resumes them.  Returns True
        when every worker exited within ``timeout``.
        """
        clean = self.pool.drain(timeout=timeout if drain else 0.0)
        if self.journal is not None:
            self.journal.rotate(self._snapshot_jobs())
            self.journal.close()
        _log.info("job service closed", extra={"clean": clean})
        return clean
