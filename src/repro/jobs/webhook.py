"""Completion webhooks: POST the terminal verdict back to the submitter.

A fleet-scale submitter (CI bot, deployment orchestrator) should not have
to poll ``GET /jobs/<id>``; jobs carrying a ``callback_url`` get the full
terminal job record — the *same* JSON ``GET /jobs/<id>`` serves, verdict
and fingerprint included — POSTed to that URL when they finish, whatever
the terminal state (DONE, FAILED, CANCELLED, EXPIRED, …).

Delivery is at-least-once with exponential backoff:

* a dedicated dispatcher thread drains a deadline-ordered heap, so one
  slow or dead receiver never delays validation work or other deliveries
  that are already due;
* a failed POST (connection error or a non-2xx status) is retried after
  ``base_delay * 2^(attempt-1)`` seconds, capped at ``max_delay``;
* after ``max_attempts`` failures the delivery is parked on a bounded
  **dead-letter** ring visible in ``stats()`` and the job's ``webhook``
  record — an operator reads why, fixes the receiver, and resubmits;
* outcomes flow into ``confvalley_webhook_*`` metrics and back into the
  owning :class:`~repro.jobs.service.JobService` via ``on_result``, which
  journals the final delivery state on the job so a restart re-enqueues
  only deliveries that were still pending.

``post_fn`` is injectable (tests swap in a recorder / a failure script);
the default implementation POSTs JSON with a 10 s timeout via urllib.
"""

from __future__ import annotations

import heapq
import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..observability import get_logger, get_metrics

__all__ = ["WebhookDelivery", "WebhookDispatcher", "default_post"]

_log = get_logger("jobs.webhook")

#: delivery attempts before dead-lettering (first try + 4 retries)
DEFAULT_MAX_ATTEMPTS = 5
#: dead-letter records retained for the operator
DEAD_LETTER_LIMIT = 100


def default_post(url: str, payload: dict, timeout: float = 10.0) -> None:
    """POST ``payload`` as JSON; raises on connection errors or non-2xx."""
    from urllib.request import Request, urlopen

    request = Request(
        url,
        data=json.dumps(payload, sort_keys=True).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urlopen(request, timeout=timeout) as response:
        status = response.status
    if not 200 <= status < 300:
        raise OSError(f"receiver answered HTTP {status}")


@dataclass
class WebhookDelivery:
    """One pending callback: the job's terminal record bound for a URL."""

    job_id: str
    url: str
    payload: dict
    attempts: int = 0
    last_error: str = ""
    enqueued_at: float = field(default=0.0)

    def summary(self) -> dict:
        return {
            "job": self.job_id,
            "url": self.url,
            "attempts": self.attempts,
            "last_error": self.last_error,
        }


class WebhookDispatcher:
    """Deadline-ordered delivery queue with exponential-backoff retries."""

    def __init__(
        self,
        post_fn: Optional[Callable[[str, dict], None]] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        base_delay: float = 0.5,
        max_delay: float = 30.0,
        time_fn: Callable[[], float] = time.time,
        on_result: Optional[Callable[[str, str, int, str], None]] = None,
        start: bool = True,
    ):
        self.post_fn = post_fn if post_fn is not None else default_post
        self.max_attempts = max(1, int(max_attempts))
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self._time = time_fn
        #: ``on_result(job_id, outcome, attempts, error)`` with outcome
        #: ``delivered`` or ``dead-letter`` — the service journals it
        self.on_result = on_result
        self._heap: list[tuple[float, int, WebhookDelivery]] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.delivered = 0
        self.dead_lettered = 0
        self.attempts_total = 0
        self.dead_letters: list[dict] = []
        if start:
            self.start()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "WebhookDispatcher":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="confvalley-webhooks", daemon=True
            )
            self._thread.start()
        return self

    def close(self, timeout: Optional[float] = 5.0) -> None:
        self._stop.set()
        with self._wake:
            self._wake.notify_all()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout)

    # -- submission ----------------------------------------------------

    def submit(self, job_id: str, url: str, payload: dict) -> None:
        """Enqueue one delivery; the dispatcher thread takes it from here."""
        delivery = WebhookDelivery(
            job_id=job_id, url=url, payload=payload,
            enqueued_at=self._time(),
        )
        with self._wake:
            heapq.heappush(self._heap, (self._time(), next(self._seq), delivery))
            self._wake.notify()
        self._gauge_pending()

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._heap)

    # -- the dispatcher loop -------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            with self._wake:
                while not self._heap and not self._stop.is_set():
                    self._wake.wait(0.2)
                if self._stop.is_set():
                    return
                due, __, delivery = self._heap[0]
                now = self._time()
                if due > now:
                    self._wake.wait(min(0.2, due - now))
                    continue
                heapq.heappop(self._heap)
            self._attempt(delivery)
            self._gauge_pending()

    def _attempt(self, delivery: WebhookDelivery) -> None:
        delivery.attempts += 1
        self.attempts_total += 1
        try:
            self.post_fn(delivery.url, delivery.payload)
        except Exception as exc:
            delivery.last_error = f"{type(exc).__name__}: {exc}"
            self._count_attempt("error")
            if delivery.attempts >= self.max_attempts:
                self._dead_letter(delivery)
            else:
                delay = min(
                    self.max_delay,
                    self.base_delay * (2 ** (delivery.attempts - 1)),
                )
                _log.warning(
                    "webhook delivery failed; retrying",
                    extra={
                        "job": delivery.job_id,
                        "attempt": delivery.attempts,
                        "retry_in": delay,
                        "error": delivery.last_error,
                    },
                )
                with self._wake:
                    heapq.heappush(
                        self._heap,
                        (self._time() + delay, next(self._seq), delivery),
                    )
                    self._wake.notify()
            return
        self._count_attempt("ok")
        self.delivered += 1
        self._count_outcome("delivered")
        _log.info(
            "webhook delivered",
            extra={"job": delivery.job_id, "attempts": delivery.attempts},
        )
        if self.on_result is not None:
            self.on_result(delivery.job_id, "delivered", delivery.attempts, "")

    def _dead_letter(self, delivery: WebhookDelivery) -> None:
        self.dead_lettered += 1
        self.dead_letters.append(delivery.summary())
        del self.dead_letters[:-DEAD_LETTER_LIMIT]
        self._count_outcome("dead-letter")
        _log.error(
            "webhook dead-lettered",
            extra={
                "job": delivery.job_id,
                "attempts": delivery.attempts,
                "error": delivery.last_error,
            },
        )
        if self.on_result is not None:
            self.on_result(
                delivery.job_id, "dead-letter", delivery.attempts,
                delivery.last_error,
            )

    # -- observability -------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            pending = len(self._heap)
        return {
            "pending": pending,
            "delivered": self.delivered,
            "dead_lettered": self.dead_lettered,
            "attempts": self.attempts_total,
            "max_attempts": self.max_attempts,
            "dead_letters": list(self.dead_letters),
        }

    def _count_attempt(self, result: str) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "confvalley_webhook_attempts_total",
                "Webhook POST attempts, by result.",
            ).inc(result=result)

    def _count_outcome(self, outcome: str) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "confvalley_webhook_deliveries_total",
                "Webhook deliveries reaching a final outcome, by outcome.",
            ).inc(outcome=outcome)

    def _gauge_pending(self) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge(
                "confvalley_webhook_pending",
                "Webhook deliveries waiting (including backoff).",
            ).set(self.pending)
