"""Lease-based job claiming for multi-process execution.

When workers are independent processes (``confvalley worker``), the
in-memory queue stops being the arbiter of "who runs this job" — two
processes replaying the same journal directory would happily both pick
the same QUEUED job.  This module provides the arbitration and the
failure detector:

* **claims** — a worker claims a job by creating
  ``leases/<job_id>.json`` with ``O_CREAT | O_EXCL``.  The filesystem
  makes exactly one creator win, which is the single-writer arbitration
  the claim protocol needs; the loser moves on to the next candidate.
  The lease file carries ``(job id, worker id, epoch, deadline)``; the
  epoch is the fencing token the journal replay honors
  (:func:`repro.jobs.journal.apply_worker_event`).
* **heartbeats** — the holder renews its lease by atomically rewriting
  the file with a pushed-out deadline (temp file + ``os.replace``, so a
  reader never sees a torn lease).  Renewal fails loudly when the file
  was broken or re-claimed by someone else — the holder has been fenced
  and must not record a result as the current claimant.
* **expiry** — the coordinating service's reaper treats a lease whose
  deadline passed as a dead worker: the lease is broken and the job
  re-queued (bounded by the service's retry budget, terminal ``EXPIRED``
  beyond it).  Deadlines are wall-clock (``time.time``) because they are
  compared *across processes*; the clock is injectable for tests.
* **presence** — each worker also maintains ``workers/<id>.hb.json``
  (atomic rewrite per heartbeat) with its pid and progress counters, the
  data behind ``GET /workers``.

The shared directory layout (:class:`JobDirectory`)::

    <dir>/
      coordinator.jsonl     # the coordinating service's journal partition
      workers/<id>.jsonl    # one append-only partition per worker process
      workers/<id>.hb.json  # worker presence heartbeat (atomic rewrite)
      leases/<job_id>.json  # live leases (O_EXCL create = claim)
      specs/<name>.cpl      # registered named specs, visible to workers
      traces/<id>.jsonl     # per-worker trace-segment partitions (append)
      metrics/<id>.json     # per-worker metrics snapshots (atomic rewrite)
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..observability import get_logger

__all__ = ["Lease", "LeaseStore", "JobDirectory"]

_log = get_logger("jobs.lease")

#: lease time-to-live between heartbeats (seconds); workers renew at
#: ``ttl / 3`` by default, so two missed heartbeats still keep the lease
DEFAULT_LEASE_TTL = 10.0


def heartbeat_interval(ttl: float) -> float:
    """The default renewal cadence for a lease of ``ttl`` seconds."""
    return max(0.05, ttl / 3.0)


@dataclass
class Lease:
    """One live claim: which worker runs which job, until when."""

    job_id: str
    worker: str
    epoch: int
    deadline: float
    claimed_at: float = 0.0
    heartbeats: int = 0

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "worker": self.worker,
            "epoch": self.epoch,
            "deadline": self.deadline,
            "claimed_at": self.claimed_at,
            "heartbeats": self.heartbeats,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Lease":
        return cls(
            job_id=data.get("job_id", ""),
            worker=data.get("worker", ""),
            epoch=int(data.get("epoch", 0)),
            deadline=float(data.get("deadline", 0.0)),
            claimed_at=float(data.get("claimed_at", 0.0)),
            heartbeats=int(data.get("heartbeats", 0)),
        )


class JobDirectory:
    """Path conventions of a shared multi-process job directory."""

    COORDINATOR = "coordinator.jsonl"

    def __init__(self, root: str):
        self.root = os.path.abspath(root)

    @property
    def coordinator_journal(self) -> str:
        return os.path.join(self.root, self.COORDINATOR)

    @property
    def workers_dir(self) -> str:
        return os.path.join(self.root, "workers")

    @property
    def leases_dir(self) -> str:
        return os.path.join(self.root, "leases")

    @property
    def specs_dir(self) -> str:
        return os.path.join(self.root, "specs")

    @property
    def traces_dir(self) -> str:
        return os.path.join(self.root, "traces")

    @property
    def metrics_dir(self) -> str:
        return os.path.join(self.root, "metrics")

    def ensure(self) -> "JobDirectory":
        for path in (self.root, self.workers_dir, self.leases_dir,
                     self.specs_dir, self.traces_dir, self.metrics_dir):
            os.makedirs(path, exist_ok=True)
        return self

    def worker_partition(self, worker_id: str) -> str:
        return os.path.join(self.workers_dir, f"{_safe_name(worker_id)}.jsonl")

    def worker_heartbeat(self, worker_id: str) -> str:
        return os.path.join(self.workers_dir, f"{_safe_name(worker_id)}.hb.json")

    def trace_partition(self, source_id: str) -> str:
        """Append-only trace-segment partition for one process."""
        return os.path.join(self.traces_dir, f"{_safe_name(source_id)}.jsonl")

    def trace_partitions(self) -> dict[str, str]:
        """``{source id: partition path}`` for every trace partition."""
        try:
            names = os.listdir(self.traces_dir)
        except OSError:
            return {}
        return {
            name[: -len(".jsonl")]: os.path.join(self.traces_dir, name)
            for name in sorted(names)
            if name.endswith(".jsonl")
        }

    def metrics_snapshot(self, source_id: str) -> str:
        """Atomically-rewritten metrics snapshot for one process."""
        return os.path.join(self.metrics_dir, f"{_safe_name(source_id)}.json")

    def metrics_snapshots(self) -> dict[str, str]:
        """``{source id: snapshot path}`` for every exported snapshot."""
        try:
            names = os.listdir(self.metrics_dir)
        except OSError:
            return {}
        return {
            name[: -len(".json")]: os.path.join(self.metrics_dir, name)
            for name in sorted(names)
            if name.endswith(".json") and not name.startswith(".")
        }

    def partitions(self) -> dict[str, str]:
        """``{worker id: partition path}`` for every partition on disk."""
        try:
            names = os.listdir(self.workers_dir)
        except OSError:
            return {}
        return {
            name[: -len(".jsonl")]: os.path.join(self.workers_dir, name)
            for name in sorted(names)
            if name.endswith(".jsonl")
        }

    def publish_spec(self, name: str, text: str) -> str:
        """Atomically write a named spec where worker processes see it."""
        path = os.path.join(self.specs_dir, f"{_safe_name(name)}.cpl")
        _atomic_write(path, text.encode("utf-8"))
        return path

    def read_spec(self, name: str) -> Optional[str]:
        path = os.path.join(self.specs_dir, f"{_safe_name(name)}.cpl")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return handle.read()
        except OSError:
            return None


def _safe_name(name: str) -> str:
    """File-system-safe worker/spec name (ids are operator-chosen)."""
    return "".join(
        ch if ch.isalnum() or ch in "-_." else "_" for ch in name
    ) or "_"


def _atomic_write(path: str, payload: bytes) -> None:
    temp = f"{path}.{os.getpid()}.tmp"
    with open(temp, "wb") as handle:
        handle.write(payload)
        handle.flush()
    os.replace(temp, path)


class LeaseStore:
    """Claims, renewals, and expiry over the ``leases/`` directory."""

    def __init__(
        self,
        directory: JobDirectory,
        ttl: float = DEFAULT_LEASE_TTL,
        time_fn: Callable[[], float] = time.time,
    ):
        self.directory = directory
        self.ttl = float(ttl)
        self._time = time_fn

    def _lease_path(self, job_id: str) -> str:
        return os.path.join(self.directory.leases_dir, f"{_safe_name(job_id)}.json")

    # -- claim / renew / release ---------------------------------------

    def try_claim(self, job_id: str, worker: str, epoch: int) -> Optional[Lease]:
        """Claim ``job_id`` at ``epoch``; None when someone else holds it.

        ``O_CREAT | O_EXCL`` is the arbitration: exactly one concurrent
        claimant creates the file.  A lease file whose deadline already
        passed does *not* make the claim succeed — breaking stale leases
        is the reaper's job, so that the re-queue (and its retry budget)
        is accounted exactly once, by one process.
        """
        now = self._time()
        lease = Lease(
            job_id=job_id, worker=worker, epoch=epoch,
            deadline=now + self.ttl, claimed_at=now,
        )
        path = self._lease_path(job_id)
        try:
            descriptor = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return None
        except OSError:
            return None
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(lease.to_dict(), handle)
            handle.flush()
        return lease

    def renew(self, lease: Lease) -> bool:
        """Push the deadline out; False = fenced (lease broken/re-owned)."""
        current = self.read(lease.job_id)
        if (
            current is None
            or current.worker != lease.worker
            or current.epoch != lease.epoch
        ):
            return False
        lease.deadline = self._time() + self.ttl
        lease.heartbeats += 1
        _atomic_write(
            self._lease_path(lease.job_id),
            json.dumps(lease.to_dict()).encode("utf-8"),
        )
        return True

    def release(self, lease: Lease) -> None:
        """Drop the lease after the terminal event is durably journalled."""
        current = self.read(lease.job_id)
        if (
            current is not None
            and current.worker == lease.worker
            and current.epoch == lease.epoch
        ):
            self.break_lease(lease.job_id)

    def break_lease(self, job_id: str) -> None:
        """Remove a lease unconditionally (reaper expiry path)."""
        try:
            os.unlink(self._lease_path(job_id))
        except OSError:
            pass

    # -- reading -------------------------------------------------------

    def read(self, job_id: str) -> Optional[Lease]:
        try:
            with open(self._lease_path(job_id), "r", encoding="utf-8") as handle:
                return Lease.from_dict(json.load(handle))
        except (OSError, ValueError):
            return None

    def live_leases(self) -> list[Lease]:
        """Every parseable lease on disk (fresh and expired alike)."""
        try:
            names = sorted(os.listdir(self.directory.leases_dir))
        except OSError:
            return []
        leases = []
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(
                    os.path.join(self.directory.leases_dir, name),
                    "r", encoding="utf-8",
                ) as handle:
                    leases.append(Lease.from_dict(json.load(handle)))
            except (OSError, ValueError):
                continue  # mid-replace or torn: next scan sees it whole
        return leases

    def expired(self) -> list[Lease]:
        now = self._time()
        return [lease for lease in self.live_leases() if lease.deadline < now]

    # -- worker presence -----------------------------------------------

    def announce(self, worker_id: str, **info) -> None:
        """Publish/refresh this worker's presence heartbeat."""
        payload = {
            "id": worker_id,
            "pid": os.getpid(),
            "last_seen": self._time(),
        }
        payload.update(info)
        _atomic_write(
            self.directory.worker_heartbeat(worker_id),
            json.dumps(payload, sort_keys=True).encode("utf-8"),
        )

    def retire(self, worker_id: str) -> None:
        try:
            os.unlink(self.directory.worker_heartbeat(worker_id))
        except OSError:
            pass

    def workers(self, stale_after: Optional[float] = None) -> list[dict]:
        """Announced workers, each flagged ``alive`` by heartbeat age."""
        if stale_after is None:
            stale_after = max(self.ttl, 2.0)
        try:
            names = sorted(os.listdir(self.directory.workers_dir))
        except OSError:
            return []
        now = self._time()
        rows = []
        for name in names:
            if not name.endswith(".hb.json"):
                continue
            try:
                with open(
                    os.path.join(self.directory.workers_dir, name),
                    "r", encoding="utf-8",
                ) as handle:
                    info = json.load(handle)
            except (OSError, ValueError):
                continue
            age = max(0.0, now - float(info.get("last_seen", 0.0)))
            info["heartbeat_age"] = round(age, 3)
            info["alive"] = age <= stale_after
            rows.append(info)
        return rows
