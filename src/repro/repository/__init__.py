"""Unified configuration representation, keys and discovery indexes."""

from .keys import (
    InstanceKey,
    InstanceSegment,
    KeyPattern,
    PatternSegment,
    parse_instance_key,
    parse_pattern,
)
from .model import ConfigClass, ConfigInstance
from .naive import NaiveIndex
from .store import ConfigStore
from .trie import TrieIndex
from .versioned import ChangeSet, ConfigRepository, Snapshot, diff_stores

__all__ = [
    "InstanceKey",
    "InstanceSegment",
    "KeyPattern",
    "PatternSegment",
    "parse_instance_key",
    "parse_pattern",
    "ConfigClass",
    "ConfigInstance",
    "ConfigStore",
    "TrieIndex",
    "NaiveIndex",
    "ChangeSet",
    "ConfigRepository",
    "Snapshot",
    "diff_stores",
]
