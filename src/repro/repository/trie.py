"""Trie-based instance discovery with query caching (paper §5.2).

The paper rewrote the naive discovery "with better data structures (e.g.,
trie) and caching support", improving processing time 5×–40× under the high
query load typical of a large validation run (5M+ discovery queries).

Because pattern matching is suffix-anchored (see
:mod:`repro.repository.keys`), the trie stores each instance key *reversed*:
the root's children are leaf parameter names, deeper levels are enclosing
scopes.  A pattern of N segments is answered by walking its segments in
reverse; every instance registered in the subtree of the reached node is a
match.  Non-wildcard name segments use a hash lookup keyed by name; wildcard
names fall back to scanning the children of a node.

A per-index query cache memoizes rendered-pattern → result lists and is
invalidated wholesale on mutation (validation workloads are read-heavy: the
store is loaded once and then queried millions of times).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Optional

from .keys import InstanceKey, InstanceSegment, KeyPattern, PatternSegment
from .model import ConfigInstance

__all__ = ["TrieIndex"]


class _Node:
    """One trie node; edges are full instance-segment identities."""

    __slots__ = ("children", "by_name", "instances")

    def __init__(self) -> None:
        self.children: dict[InstanceSegment, _Node] = {}
        # Secondary index: segment name -> segments, so exact-name pattern
        # segments avoid scanning every child.
        self.by_name: dict[str, list[InstanceSegment]] = defaultdict(list)
        self.instances: list[ConfigInstance] = []

    def child(self, segment: InstanceSegment) -> "_Node":
        node = self.children.get(segment)
        if node is None:
            node = _Node()
            self.children[segment] = node
            self.by_name[segment.name].append(segment)
        return node


class TrieIndex:
    """Reverse-key trie with memoized queries."""

    def __init__(self, cache_size: int = 65536) -> None:
        self._root = _Node()
        self._count = 0
        self._cache: dict[str, list[ConfigInstance]] = {}
        self._cache_size = cache_size
        self.cache_hits = 0
        self.cache_misses = 0

    def add(self, instance: ConfigInstance) -> None:
        node = self._root
        for segment in reversed(instance.key.segments):
            node = node.child(segment)
        node.instances.append(instance)
        self._count += 1
        self._cache.clear()

    def __len__(self) -> int:
        return self._count

    def instances(self) -> Iterable[ConfigInstance]:
        yield from self._collect(self._root)

    def query(self, pattern: KeyPattern) -> list[ConfigInstance]:
        cache_key = pattern.render()
        cached = self._cache.get(cache_key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        results: list[ConfigInstance] = []
        self._walk(self._root, list(reversed(pattern.segments)), 0, results)
        if len(self._cache) < self._cache_size:
            self._cache[cache_key] = results
        return results

    # ------------------------------------------------------------------

    def _walk(
        self,
        node: _Node,
        reversed_pattern: list[PatternSegment],
        depth: int,
        out: list[ConfigInstance],
    ) -> None:
        if depth == len(reversed_pattern):
            self._collect_into(node, out)
            return
        segment = reversed_pattern[depth]
        if "*" in segment.name or segment.name.startswith("$"):
            candidates: Iterable[InstanceSegment] = node.children.keys()
            candidates = [c for c in candidates if segment.matches(c)]
        else:
            candidates = [
                c for c in node.by_name.get(segment.name, ()) if segment.matches(c)
            ]
        for child_segment in candidates:
            self._walk(node.children[child_segment], reversed_pattern, depth + 1, out)

    def _collect(self, node: _Node) -> list[ConfigInstance]:
        out: list[ConfigInstance] = []
        self._collect_into(node, out)
        return out

    def _collect_into(self, node: _Node, out: list[ConfigInstance]) -> None:
        stack = [node]
        while stack:
            current = stack.pop()
            out.extend(current.instances)
            stack.extend(current.children.values())
