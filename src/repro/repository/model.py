"""Unified configuration representation (paper §4.2.2, Figure 3).

Drivers convert diverse configuration sources (XML hierarchies, INI files,
key-value stores, REST endpoints, …) into flat collections of
:class:`ConfigInstance` objects, each carrying a fully qualified
:class:`~repro.repository.keys.InstanceKey` and a raw string value.

The *class/instance* duality from paper §2.1 is captured by
:class:`ConfigClass`: all instances whose keys share the same name path
belong to one configuration class (the paper reports instance:class ratios
of 80:1 up to 14,000:1 in Azure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from .keys import InstanceKey

__all__ = ["ConfigInstance", "ConfigClass"]


@dataclass(frozen=True)
class ConfigInstance:
    """One concrete configuration value at one fully qualified key."""

    key: InstanceKey
    value: str
    source: str = ""

    @property
    def class_key(self) -> tuple[str, ...]:
        return self.key.class_key

    def render(self) -> str:
        return f"{self.key.render()} = {self.value!r}"

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.render()


@dataclass
class ConfigClass:
    """All instances of one configuration class (same name path)."""

    class_key: tuple[str, ...]
    instances: list[ConfigInstance] = field(default_factory=list)

    @property
    def name(self) -> str:
        return ".".join(self.class_key)

    @property
    def leaf_name(self) -> str:
        return self.class_key[-1]

    @property
    def values(self) -> list[str]:
        return [instance.value for instance in self.instances]

    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self) -> Iterator[ConfigInstance]:
        return iter(self.instances)
