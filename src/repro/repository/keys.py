"""Qualified configuration keys and key patterns (paper §4.2.2, Table 1).

Every configuration *instance* in the unified representation is identified by
a fully qualified :class:`InstanceKey` — an ordered list of scope segments
ending in the parameter name.  Each segment carries:

* ``name``      — the scope or parameter name (``Cloud``, ``SecretKey``),
* ``qualifier`` — an optional *named* instance qualifier (``Cloud::CO2test2``),
* ``ordinal``   — the 1-based sibling index among same-named siblings, which
  backs the paper's *numbered* style (``Cloud[1]`` = the first cloud).

CPL specifications refer to configurations through :class:`KeyPattern`
objects, which support the notations from paper Table 1:

=====================================  =========================================
Notation                               Meaning
=====================================  =========================================
``Cloud.Tenant.SecretKey``             SecretKey in all tenants in all clouds
``Cloud::CO2test2.Tenant.SecretKey``   … only in cloud CO2test2
``Cloud::$CloudName.Tenant.SecretKey`` named qualifier substituted from $CloudName
``Cloud[1].Tenant::SLB.SecretKey``     … tenant SLB in the *first* cloud
``*.SecretKey``                        SecretKey under any single scope
``*IP``                                any parameter whose key ends with IP
=====================================  =========================================

Matching semantics: a pattern of *N* segments matches an instance key whose
**last N segments** align with the pattern (suffix matching).  This realizes
the paper's rule that "domain key ``a`` matches all more specific instance
keys such as ``a::inst1``" and lets short notations reach parameters nested
under deeper hierarchies.  A segment without an instance qualifier matches
every instance of that name.

Named qualifiers containing characters outside ``[A-Za-z0-9_*-]`` are written
single-quoted when rendered (``CloudGroup::'East1 Production'``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, Mapping, Optional, Sequence, Union

from ..errors import KeyNotationError

__all__ = [
    "InstanceSegment",
    "InstanceKey",
    "PatternSegment",
    "KeyPattern",
    "parse_pattern",
    "parse_instance_key",
]

_PLAIN_NAME = re.compile(r"^[A-Za-z0-9_*-]+$")


@lru_cache(maxsize=4096)
def _wildcard_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a name pattern where ``*`` matches any run of characters."""
    parts = (re.escape(p) for p in pattern.split("*"))
    return re.compile("^" + ".*".join(parts) + "$")


def _name_matches(pattern: str, name: str) -> bool:
    if "*" not in pattern:
        return pattern == name
    return _wildcard_regex(pattern).match(name) is not None


def _quote_if_needed(text: str) -> str:
    if _PLAIN_NAME.match(text):
        return text
    return "'" + text.replace("'", "\\'") + "'"


# ---------------------------------------------------------------------------
# Instance keys
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InstanceSegment:
    """One scope (or leaf parameter) level of a fully qualified instance key."""

    name: str
    qualifier: Optional[str] = None
    ordinal: int = 1

    def render(self) -> str:
        if self.qualifier is not None:
            return f"{self.name}::{_quote_if_needed(self.qualifier)}"
        if self.ordinal != 1:
            return f"{self.name}[{self.ordinal}]"
        return self.name


@dataclass(frozen=True)
class InstanceKey:
    """A fully qualified, unique identity for one configuration instance."""

    segments: tuple[InstanceSegment, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise KeyNotationError("an instance key needs at least one segment")

    @classmethod
    def build(cls, *parts: Union[str, tuple]) -> "InstanceKey":
        """Convenience constructor.

        Each part is a plain name, a ``(name, qualifier)`` pair, or a
        ``(name, qualifier, ordinal)`` triple.
        """
        segments = []
        for part in parts:
            if isinstance(part, str):
                segments.append(InstanceSegment(part))
            elif len(part) == 2:
                segments.append(InstanceSegment(part[0], part[1]))
            else:
                segments.append(InstanceSegment(part[0], part[1], part[2]))
        return cls(tuple(segments))

    @property
    def class_key(self) -> tuple[str, ...]:
        """The configuration *class* this instance belongs to (names only)."""
        return tuple(segment.name for segment in self.segments)

    @property
    def leaf_name(self) -> str:
        return self.segments[-1].name

    @property
    def scope(self) -> tuple[InstanceSegment, ...]:
        """All segments except the leaf parameter name."""
        return self.segments[:-1]

    def render(self) -> str:
        return ".".join(segment.render() for segment in self.segments)

    def child(self, segment: InstanceSegment) -> "InstanceKey":
        return InstanceKey(self.segments + (segment,))

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.render()

    def __len__(self) -> int:
        return len(self.segments)


# ---------------------------------------------------------------------------
# Key patterns
# ---------------------------------------------------------------------------

#: Sentinel kinds for pattern segments.
ANY = "any"
NAMED = "named"
ORDINAL = "ordinal"


@dataclass(frozen=True)
class PatternSegment:
    """One level of a CPL configuration notation.

    ``kind`` selects how the instance qualifier is constrained:

    * ``ANY``     — match every instance of ``name``
    * ``NAMED``   — ``qualifier`` must equal the instance's named qualifier
      (wildcards allowed)
    * ``ORDINAL`` — ``qualifier`` (an int) must equal the 1-based sibling index

    ``name`` and named qualifiers may be substitutable variables written
    ``$var`` (whole-token only); :meth:`KeyPattern.substitute` resolves them.
    """

    name: str
    kind: str = ANY
    qualifier: Union[str, int, None] = None

    def __post_init__(self) -> None:
        if self.kind not in (ANY, NAMED, ORDINAL):
            raise KeyNotationError(f"bad pattern segment kind: {self.kind!r}")
        if self.kind == ANY and self.qualifier is not None:
            raise KeyNotationError("ANY segments carry no qualifier")

    @property
    def variables(self) -> frozenset[str]:
        names = set()
        if self.name.startswith("$"):
            names.add(self.name[1:])
        if isinstance(self.qualifier, str) and self.qualifier.startswith("$"):
            names.add(self.qualifier[1:])
        return frozenset(names)

    def substitute(self, env: Mapping[str, object]) -> "PatternSegment":
        name = self.name
        qualifier = self.qualifier
        if name.startswith("$") and name[1:] in env:
            name = str(env[name[1:]])
        kind = self.kind
        if isinstance(qualifier, str) and qualifier.startswith("$"):
            var = qualifier[1:]
            if var in env:
                value = env[var]
                if kind == ORDINAL:
                    qualifier = int(value)  # numbered style: $var holds an index
                else:
                    qualifier = str(value)
        return PatternSegment(name, kind, qualifier)

    def matches(self, segment: InstanceSegment) -> bool:
        if self.name.startswith("$"):
            raise KeyNotationError(
                f"unresolved variable ${self.name[1:]} in pattern segment"
            )
        if not _name_matches(self.name, segment.name):
            return False
        if self.kind == ANY:
            return True
        if self.kind == ORDINAL:
            if isinstance(self.qualifier, str):
                raise KeyNotationError(
                    f"unresolved variable {self.qualifier} in ordinal qualifier"
                )
            return segment.ordinal == self.qualifier
        # NAMED
        qualifier = self.qualifier
        assert isinstance(qualifier, str)
        if qualifier.startswith("$"):
            raise KeyNotationError(
                f"unresolved variable {qualifier} in named qualifier"
            )
        if segment.qualifier is None:
            return False
        return _name_matches(qualifier, segment.qualifier)

    def render(self) -> str:
        if self.kind == NAMED:
            assert isinstance(self.qualifier, str)
            if self.qualifier.startswith("$"):
                return f"{self.name}::{self.qualifier}"
            return f"{self.name}::{_quote_if_needed(self.qualifier)}"
        if self.kind == ORDINAL:
            return f"{self.name}[{self.qualifier}]"
        return self.name


@dataclass(frozen=True)
class KeyPattern:
    """A parsed CPL configuration notation (a *domain* reference)."""

    segments: tuple[PatternSegment, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise KeyNotationError("a key pattern needs at least one segment")

    @classmethod
    def parse(cls, text: str) -> "KeyPattern":
        return parse_pattern(text)

    @property
    def variables(self) -> frozenset[str]:
        names: set[str] = set()
        for segment in self.segments:
            names |= segment.variables
        return frozenset(names)

    @property
    def is_concrete(self) -> bool:
        """True when the pattern has no wildcards and no variables."""
        if self.variables:
            return False
        return not any("*" in s.name for s in self.segments)

    def substitute(self, env: Mapping[str, object]) -> "KeyPattern":
        return KeyPattern(tuple(s.substitute(env) for s in self.segments))

    def prefixed_with(self, prefix: "KeyPattern") -> "KeyPattern":
        """Prepend another pattern's segments (namespace/compartment rule)."""
        return KeyPattern(prefix.segments + self.segments)

    def prefixed_with_instance(self, key: InstanceKey) -> "KeyPattern":
        """Prepend a *concrete* instance key (compartment evaluation rule)."""
        prefix = tuple(
            PatternSegment(s.name, ORDINAL, s.ordinal)
            if s.qualifier is None
            else PatternSegment(s.name, NAMED, s.qualifier)
            for s in key.segments
        )
        return KeyPattern(prefix + self.segments)

    def matches(self, key: InstanceKey) -> bool:
        """Suffix-match this pattern against a fully qualified instance key."""
        if len(self.segments) > len(key.segments):
            return False
        tail = key.segments[len(key.segments) - len(self.segments):]
        return all(p.matches(s) for p, s in zip(self.segments, tail))

    def render(self) -> str:
        return ".".join(segment.render() for segment in self.segments)

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.render()

    def __len__(self) -> int:
        return len(self.segments)


# ---------------------------------------------------------------------------
# Notation parsing
# ---------------------------------------------------------------------------


class _NotationScanner:
    """Character scanner shared by pattern and instance-key parsing."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> KeyNotationError:
        return KeyNotationError(f"{message} at offset {self.pos} in {self.text!r}")

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def take(self) -> str:
        ch = self.peek()
        self.pos += 1
        return ch

    def expect(self, ch: str) -> None:
        if self.peek() != ch:
            raise self.error(f"expected {ch!r}")
        self.pos += 1

    def read_name(self, allow_dollar: bool = False) -> str:
        start = self.pos
        if allow_dollar and self.peek() == "$":
            self.pos += 1
        while not self.eof() and (self.peek().isalnum() or self.peek() in "_*-"):
            self.pos += 1
        if self.pos == start or self.text[start:self.pos] == "$":
            raise self.error("expected a name")
        return self.text[start:self.pos]

    def read_quoted(self) -> str:
        self.expect("'")
        out = []
        while True:
            if self.eof():
                raise self.error("unterminated quoted qualifier")
            ch = self.take()
            if ch == "\\" and self.peek() == "'":
                out.append(self.take())
            elif ch == "'":
                break
            else:
                out.append(ch)
        return "".join(out)


def parse_pattern(text: str) -> KeyPattern:
    """Parse a CPL configuration notation into a :class:`KeyPattern`.

    Raises :class:`~repro.errors.KeyNotationError` on malformed notation.
    """
    scanner = _NotationScanner(text.strip())
    segments: list[PatternSegment] = []
    while True:
        name = scanner.read_name(allow_dollar=True)
        kind, qualifier = ANY, None
        if scanner.peek() == ":":
            scanner.expect(":")
            scanner.expect(":")
            kind = NAMED
            if scanner.peek() == "'":
                qualifier = scanner.read_quoted()
            else:
                qualifier = scanner.read_name(allow_dollar=True)
        elif scanner.peek() == "[":
            scanner.expect("[")
            kind = ORDINAL
            if scanner.peek() == "$":
                qualifier = scanner.read_name(allow_dollar=True)
            else:
                digits = []
                while scanner.peek().isdigit():
                    digits.append(scanner.take())
                if not digits:
                    raise scanner.error("expected an index")
                qualifier = int("".join(digits))
            scanner.expect("]")
        segments.append(PatternSegment(name, kind, qualifier))
        if scanner.eof():
            break
        scanner.expect(".")
    return KeyPattern(tuple(segments))


def parse_instance_key(text: str) -> InstanceKey:
    """Parse the canonical rendering of an instance key back into an object.

    Only notations produced by :meth:`InstanceKey.render` are accepted: each
    segment is a plain name, ``name::qualifier`` or ``name[ordinal]``.
    """
    pattern = parse_pattern(text)
    segments = []
    for p in pattern.segments:
        if p.variables or "*" in p.name:
            raise KeyNotationError(
                f"instance keys cannot contain wildcards or variables: {text!r}"
            )
        if p.kind == NAMED:
            assert isinstance(p.qualifier, str)
            segments.append(InstanceSegment(p.name, p.qualifier))
        elif p.kind == ORDINAL:
            assert isinstance(p.qualifier, int)
            segments.append(InstanceSegment(p.name, None, p.qualifier))
        else:
            segments.append(InstanceSegment(p.name))
    return InstanceKey(tuple(segments))
