"""Naive instance-discovery index — the paper's initial implementation.

Paper §5.2: "In our initial implementation of the instance discovery, we got
all instance keys that had the same number of segments as the domain key, and
then iterated segment-by-segment to gradually filter out instance keys whose
segment did not approximately match the corresponding segment of the domain
key.  But this implementation was inefficient in handling the high load of
discovery queries."

We keep this implementation as the baseline for the 5×–40× speedup claim
(reproduced by ``benchmarks/bench_discovery_trie_vs_naive.py``).  Because our
matching semantics are suffix-based, "same number of segments" generalizes to
"at least as many segments"; the candidate set is still grouped by length so
the per-query work mirrors the paper's description.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from .keys import InstanceKey, KeyPattern
from .model import ConfigInstance

__all__ = ["NaiveIndex"]


class NaiveIndex:
    """Segment-by-segment filtering over per-length candidate lists."""

    def __init__(self) -> None:
        self._by_length: dict[int, list[ConfigInstance]] = defaultdict(list)
        self._count = 0

    def add(self, instance: ConfigInstance) -> None:
        self._by_length[len(instance.key)].append(instance)
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def instances(self) -> Iterable[ConfigInstance]:
        for bucket in self._by_length.values():
            yield from bucket

    def query(self, pattern: KeyPattern) -> list[ConfigInstance]:
        depth = len(pattern)
        results: list[ConfigInstance] = []
        for length, bucket in self._by_length.items():
            if length < depth:
                continue
            # Gradually filter candidates one pattern segment at a time,
            # mirroring the paper's segment-by-segment loop.
            candidates = bucket
            for offset in range(depth):
                segment = pattern.segments[offset]
                survivors = []
                for instance in candidates:
                    key_segment = instance.key.segments[length - depth + offset]
                    if segment.matches(key_segment):
                        survivors.append(instance)
                candidates = survivors
                if not candidates:
                    break
            results.extend(candidates)
        return results
