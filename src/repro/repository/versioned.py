"""Versioned configuration repository: branches, snapshots, change sets.

The paper's evaluation runs specifications on the "latest configuration
data branches" (Trunk, Branch 1, Branch 2 — Tables 6/7) and motivates
validation "before checking-in to the repository" (§3.2).  This module
provides the minimal repository substrate those workflows need:

* :class:`Snapshot` — an immutable, content-addressed set of configuration
  instances with a commit message;
* :class:`ConfigRepository` — named branches of snapshots with ``commit``,
  ``head``, branching, and ``diff`` producing a :class:`ChangeSet`;
* :class:`ChangeSet` — added / removed / modified instances between two
  snapshots, the input to incremental validation
  (:mod:`repro.core.incremental`).

Stores built from snapshots are cached per snapshot id, so validating the
same head repeatedly (the continuous-service case) re-uses the parsed
unified representation.

The check-in workflow end to end — commit a baseline, commit the change,
diff the two heads, hand the change set to incremental validation::

    >>> from repro.repository.keys import InstanceKey
    >>> from repro.repository.model import ConfigInstance
    >>> def inst(key, value):
    ...     return ConfigInstance(InstanceKey.build(*key.split(".")), value)
    >>> repo = ConfigRepository()
    >>> base = repo.commit([inst("fabric.Timeout", "30")], message="baseline")
    >>> head = repo.commit([inst("fabric.Timeout", "45")], message="bump")
    >>> change = repo.diff(base, head)
    >>> change.summary()
    '+0 -0 ~1 instance(s), 1 class(es) touched'
    >>> [key.render() for key in change.touched_keys()]
    ['fabric.Timeout']

:func:`diff_stores` is the repository-free variant the delta scanner uses
(:class:`repro.service.DeltaScanner` diffs the live store pair it parsed
itself, no commits involved):

    >>> from repro.repository.store import ConfigStore
    >>> old, new = ConfigStore(), ConfigStore()
    >>> old.add_all([inst("fabric.Timeout", "30")])
    >>> new.add_all([inst("fabric.Timeout", "30"), inst("fabric.Mode", "fast")])
    >>> diff_stores(old, new).summary()
    '+1 -0 ~0 instance(s), 1 class(es) touched'
    >>> diff_stores(None, old).summary()     # no baseline: everything added
    '+1 -0 ~0 instance(s), 1 class(es) touched'
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..errors import ConfValleyError
from .keys import InstanceKey
from .model import ConfigInstance
from .store import ConfigStore

__all__ = ["Snapshot", "ChangeSet", "ConfigRepository", "diff_stores"]


@dataclass(frozen=True)
class Snapshot:
    """One immutable configuration state."""

    id: str
    branch: str
    sequence: int           # 1-based position on its branch
    message: str
    instances: tuple[ConfigInstance, ...]
    parent_id: Optional[str] = None

    def __len__(self) -> int:
        return len(self.instances)


@dataclass
class ChangeSet:
    """Difference between two snapshots (old → new)."""

    added: list[ConfigInstance] = field(default_factory=list)
    removed: list[ConfigInstance] = field(default_factory=list)
    modified: list[tuple[ConfigInstance, ConfigInstance]] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.modified)

    def touched_keys(self) -> list[InstanceKey]:
        """Every instance key involved in this change."""
        keys = [instance.key for instance in self.added]
        keys += [instance.key for instance in self.removed]
        keys += [new.key for __, new in self.modified]
        return keys

    def touched_classes(self) -> set[tuple[str, ...]]:
        return {key.class_key for key in self.touched_keys()}

    def summary(self) -> str:
        return (
            f"+{len(self.added)} -{len(self.removed)} "
            f"~{len(self.modified)} instance(s), "
            f"{len(self.touched_classes())} class(es) touched"
        )


def diff_stores(old: Optional[ConfigStore], new: ConfigStore) -> ChangeSet:
    """Change set between two stores (no repository required)."""
    change = ChangeSet()
    old_by_key = {i.key: i for i in (old.instances() if old else ())}
    new_by_key = {i.key: i for i in new.instances()}
    for key, instance in new_by_key.items():
        previous = old_by_key.get(key)
        if previous is None:
            change.added.append(instance)
        elif previous.value != instance.value:
            change.modified.append((previous, instance))
    for key, instance in old_by_key.items():
        if key not in new_by_key:
            change.removed.append(instance)
    return change


def _content_id(branch: str, sequence: int, instances: Iterable[ConfigInstance]) -> str:
    digest = hashlib.sha256()
    digest.update(f"{branch}@{sequence}".encode("utf-8"))
    for instance in sorted(instances, key=lambda i: i.key.render()):
        digest.update(instance.key.render().encode("utf-8"))
        digest.update(b"\0")
        digest.update(instance.value.encode("utf-8"))
        digest.update(b"\1")
    return digest.hexdigest()[:16]


class ConfigRepository:
    """Branches of configuration snapshots with diffing and store caching."""

    DEFAULT_BRANCH = "trunk"

    def __init__(self) -> None:
        self._branches: dict[str, list[Snapshot]] = {self.DEFAULT_BRANCH: []}
        self._by_id: dict[str, Snapshot] = {}
        self._store_cache: dict[str, ConfigStore] = {}

    # ------------------------------------------------------------------
    # Branch management
    # ------------------------------------------------------------------

    def branches(self) -> list[str]:
        return sorted(self._branches)

    def create_branch(self, name: str, from_branch: Optional[str] = None) -> None:
        """Create a branch, optionally seeded with another branch's head."""
        if name in self._branches:
            raise ConfValleyError(f"branch {name!r} already exists")
        self._branches[name] = []
        if from_branch is not None:
            head = self.head(from_branch)
            if head is not None:
                self.commit(
                    head.instances,
                    message=f"branched from {from_branch}@{head.sequence}",
                    branch=name,
                )

    def head(self, branch: str = DEFAULT_BRANCH) -> Optional[Snapshot]:
        history = self._history(branch)
        return history[-1] if history else None

    def log(self, branch: str = DEFAULT_BRANCH) -> list[Snapshot]:
        return list(self._history(branch))

    def get(self, snapshot_id: str) -> Snapshot:
        try:
            return self._by_id[snapshot_id]
        except KeyError:
            raise ConfValleyError(f"unknown snapshot {snapshot_id!r}") from None

    def _history(self, branch: str) -> list[Snapshot]:
        try:
            return self._branches[branch]
        except KeyError:
            raise ConfValleyError(
                f"unknown branch {branch!r}; known: {self.branches()}"
            ) from None

    # ------------------------------------------------------------------
    # Commits
    # ------------------------------------------------------------------

    def commit(
        self,
        instances: Iterable[ConfigInstance],
        message: str = "",
        branch: str = DEFAULT_BRANCH,
    ) -> Snapshot:
        history = self._history(branch)
        frozen = tuple(instances)
        parent = history[-1] if history else None
        snapshot = Snapshot(
            id=_content_id(branch, len(history) + 1, frozen),
            branch=branch,
            sequence=len(history) + 1,
            message=message,
            instances=frozen,
            parent_id=parent.id if parent else None,
        )
        history.append(snapshot)
        self._by_id[snapshot.id] = snapshot
        return snapshot

    # ------------------------------------------------------------------
    # Stores and diffs
    # ------------------------------------------------------------------

    def store_for(self, snapshot: Snapshot) -> ConfigStore:
        """Unified store for a snapshot (cached per snapshot id)."""
        cached = self._store_cache.get(snapshot.id)
        if cached is None:
            cached = ConfigStore()
            cached.add_all(snapshot.instances)
            self._store_cache[snapshot.id] = cached
        return cached

    def diff(self, old: Optional[Snapshot], new: Snapshot) -> ChangeSet:
        """Change set taking ``old`` to ``new`` (old=None → everything added)."""
        change = ChangeSet()
        old_by_key = {i.key: i for i in (old.instances if old else ())}
        new_by_key = {i.key: i for i in new.instances}
        for key, instance in new_by_key.items():
            previous = old_by_key.get(key)
            if previous is None:
                change.added.append(instance)
            elif previous.value != instance.value:
                change.modified.append((previous, instance))
        for key, instance in old_by_key.items():
            if key not in new_by_key:
                change.removed.append(instance)
        return change

    def diff_heads(self, old_branch: str, new_branch: str) -> ChangeSet:
        old = self.head(old_branch)
        new = self.head(new_branch)
        if new is None:
            raise ConfValleyError(f"branch {new_branch!r} has no commits")
        return self.diff(old, new)
