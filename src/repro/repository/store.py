"""The configuration store: the unified repository validated by CPL.

A :class:`ConfigStore` aggregates instances produced by format drivers,
guarantees key uniqueness (auto-disambiguating colliding keys by bumping the
leaf ordinal, since the paper assigns "a unique fully qualified key for each
configuration instance"), groups instances into configuration classes, and
answers discovery queries through a pluggable index (trie by default, naive
baseline for the §5.2 comparison).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Optional, Union

from ..errors import ConfValleyError
from .keys import InstanceKey, InstanceSegment, KeyPattern, parse_pattern
from .model import ConfigClass, ConfigInstance
from .naive import NaiveIndex
from .trie import TrieIndex

__all__ = ["ConfigStore"]


class ConfigStore:
    """Holds the unified representation of one or more configuration sources."""

    def __init__(self, index: Union[TrieIndex, NaiveIndex, None] = None) -> None:
        self._index = index if index is not None else TrieIndex()
        self._by_key: dict[InstanceKey, ConfigInstance] = {}
        self._classes: dict[tuple[str, ...], ConfigClass] = {}
        self._order: dict[InstanceKey, int] = {}
        self.query_count = 0

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def add(self, instance: ConfigInstance) -> ConfigInstance:
        """Register one instance, disambiguating duplicate keys by ordinal."""
        key = instance.key
        if key in self._by_key:
            key = self._next_free_key(key)
            instance = ConfigInstance(key, instance.value, instance.source)
        self._by_key[key] = instance
        self._order[key] = len(self._order)
        self._index.add(instance)
        cls = self._classes.get(instance.class_key)
        if cls is None:
            cls = ConfigClass(instance.class_key)
            self._classes[instance.class_key] = cls
        cls.instances.append(instance)
        return instance

    def add_all(self, instances: Iterable[ConfigInstance]) -> None:
        for instance in instances:
            self.add(instance)

    def _next_free_key(self, key: InstanceKey) -> InstanceKey:
        leaf = key.segments[-1]
        ordinal = leaf.ordinal + 1
        while True:
            candidate = InstanceKey(
                key.segments[:-1]
                + (InstanceSegment(leaf.name, leaf.qualifier, ordinal),)
            )
            if candidate not in self._by_key:
                return candidate
            ordinal += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, pattern: Union[str, KeyPattern]) -> list[ConfigInstance]:
        """Find every instance whose key matches ``pattern`` (suffix match).

        Results come back in load order so aggregate predicates (unique,
        order) blame instances deterministically.
        """
        if isinstance(pattern, str):
            pattern = parse_pattern(pattern)
        self.query_count += 1
        results = self._index.query(pattern)
        return sorted(results, key=lambda i: self._order[i.key])

    def get(self, key: Union[str, InstanceKey]) -> Optional[ConfigInstance]:
        if isinstance(key, str):
            matches = self.query(key)
            if len(matches) > 1:
                raise ConfValleyError(f"{key!r} is ambiguous ({len(matches)} matches)")
            return matches[0] if matches else None
        return self._by_key.get(key)

    def classes(self) -> Iterator[ConfigClass]:
        yield from self._classes.values()

    def get_class(self, class_key: tuple[str, ...]) -> Optional[ConfigClass]:
        return self._classes.get(class_key)

    def instances(self) -> Iterator[ConfigInstance]:
        yield from self._by_key.values()

    @property
    def instance_count(self) -> int:
        return len(self._by_key)

    @property
    def class_count(self) -> int:
        return len(self._classes)

    def __len__(self) -> int:
        return len(self._by_key)

    def __contains__(self, pattern: Union[str, KeyPattern]) -> bool:
        return bool(self.query(pattern))

    # ------------------------------------------------------------------
    # Cross-source analysis
    # ------------------------------------------------------------------

    def cross_source_conflicts(self) -> list[tuple[str, list[ConfigInstance]]]:
        """Instances of one logical key defined by *different sources* with
        *different values*.

        The paper motivates cross-validating configuration sources (§2.1:
        "account configurations need to be consistent across controller and
        authentication components").  Duplicate keys from different sources
        are disambiguated by leaf ordinal at load time; this groups them
        back (ordinal stripped) and reports groups spanning several sources
        whose values disagree.  Returns ``(logical key, instances)`` pairs.
        """
        groups: dict[str, list[ConfigInstance]] = {}
        for instance in self._by_key.values():
            leaf = instance.key.segments[-1]
            logical = InstanceKey(
                instance.key.segments[:-1]
                + (InstanceSegment(leaf.name, leaf.qualifier, 1),)
            ).render()
            groups.setdefault(logical, []).append(instance)
        conflicts = []
        for logical, members in groups.items():
            if len(members) < 2:
                continue
            sources = {m.source for m in members}
            values = {m.value for m in members}
            if len(sources) > 1 and len(values) > 1:
                conflicts.append(
                    (logical, sorted(members, key=lambda m: self._order[m.key]))
                )
        return sorted(conflicts)
