"""Token definitions for the CPL lexer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = ["Token", "KEYWORDS", "TokenType"]


class TokenType:
    """Token type names (plain strings; a class for namespacing only)."""

    IDENT = "IDENT"          # predicate/transform names, scope words (may contain * _ -)
    DOMAIN = "DOMAIN"        # $Fabric.RecoveryAttempts, $_, $env.os …
    STRING = "STRING"        # 'single quoted'
    NUMBER = "NUMBER"        # 42 or 3.14 (value carries int or float)
    ARROW = "ARROW"          # -> or →
    AND = "AND"              # &
    OR = "OR"                # |
    NOT = "NOT"              # ~
    ASSIGN = "ASSIGN"        # :=
    BANGBANG = "BANGBANG"    # !! (custom error message suffix, §4.4)
    RELOP = "RELOP"          # == != < <= > >=
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    LBRACE = "LBRACE"
    RBRACE = "RBRACE"
    LBRACKET = "LBRACKET"
    RBRACKET = "RBRACKET"
    COMMA = "COMMA"
    DOT = "DOT"              # . (dotted scope names in block headers)
    COLONCOLON = "COLONCOLON"  # :: (instance qualifiers in block headers)
    AT = "AT"                # @ (macro reference)
    HASH = "HASH"            # # (inline compartment delimiter)
    PLUS = "PLUS"
    MINUS = "MINUS"
    STAR = "STAR"
    SLASH = "SLASH"
    QUANT_EXISTS = "QUANT_EXISTS"        # ∃ / exists
    QUANT_FORALL = "QUANT_FORALL"        # ∀ / forall
    QUANT_ONE = "QUANT_ONE"              # ∃! / one
    KEYWORD = "KEYWORD"                  # load include let get as if else namespace compartment foreach
    NEWLINE = "NEWLINE"
    EOF = "EOF"


KEYWORDS = {
    "load",
    "include",
    "let",
    "get",
    "as",
    "if",
    "else",
    "namespace",
    "compartment",
    "foreach",
}

#: keywords that lex to quantifier tokens instead of KEYWORD
QUANT_WORDS = {
    "exists": TokenType.QUANT_EXISTS,
    "forall": TokenType.QUANT_FORALL,
    "one": TokenType.QUANT_ONE,
}


@dataclass(frozen=True)
class Token:
    type: str
    value: Union[str, int, float]
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type}, {self.value!r}, {self.line}:{self.column})"
