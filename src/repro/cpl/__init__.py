"""CPL — the ConfValley Predicate Language front end."""

from . import ast
from .lexer import tokenize
from .parser import parse, parse_predicate
from .printer import print_domain, print_predicate, print_program, print_statement

__all__ = [
    "ast",
    "tokenize",
    "parse",
    "parse_predicate",
    "print_program",
    "print_statement",
    "print_predicate",
    "print_domain",
]
