"""Pretty-printer: AST → canonical CPL text.

Used to display what the compiler's rewrites produced, to serialize
programmatically-built specifications, and to round-trip programs in tests
(property: ``parse(print(parse(text)))`` equals ``parse(text)`` up to the
recorded source text/line metadata).
"""

from __future__ import annotations

from typing import Union

from . import ast

__all__ = ["print_program", "print_statement", "print_predicate", "print_domain"]


def _quote(value: str) -> str:
    return "'" + str(value).replace("\\", "\\\\").replace("'", "\\'") + "'"


def _operand(node: ast.Operand) -> str:
    if isinstance(node, ast.Literal):
        if isinstance(node.value, str):
            return _quote(node.value)
        return str(node.value)
    if isinstance(node, ast.ContextRef):
        return "$_"
    if isinstance(node, ast.DomainRef):
        return f"${node.notation}"
    raise TypeError(f"not an operand: {node!r}")


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------

_PRECEDENCE = {"or": 1, "and": 2, "unary": 3}


def print_predicate(node: ast.PredExpr) -> str:
    return _pred(node, 0)


def _pred(node: ast.PredExpr, parent_level: int) -> str:
    if isinstance(node, ast.Or):
        text = f"{_pred(node.left, 1)} | {_pred(node.right, 1)}"
        level = 1
    elif isinstance(node, ast.And):
        text = f"{_pred(node.left, 2)} & {_pred(node.right, 2)}"
        level = 2
    elif isinstance(node, ast.Not):
        return f"~{_pred(node.operand, 3)}"
    elif isinstance(node, ast.Quantified):
        quantifier = {"exists": "exists", "forall": "forall", "one": "one"}[
            node.quantifier
        ]
        return f"{quantifier} {_pred(node.operand, 3)}"
    elif isinstance(node, ast.IfPred):
        text = f"if ({_pred(node.condition, 0)}) {_pred(node.then, 3)}"
        if node.otherwise is not None:
            text += f" else {_pred(node.otherwise, 3)}"
        # an if-predicate's branches parse greedily, so it must be
        # parenthesized under any binary operator or unary prefix
        return f"({text})" if parent_level >= 1 else text
    elif isinstance(node, ast.MacroRef):
        return f"@{node.name}"
    elif isinstance(node, ast.PrimitiveCall):
        if node.args:
            args = ", ".join(_operand(arg) for arg in node.args)
            return f"{node.name}({args})"
        return node.name
    elif isinstance(node, ast.RangePred):
        return f"[{_operand(node.low)}, {_operand(node.high)}]"
    elif isinstance(node, ast.SetPred):
        members = ", ".join(_operand(member) for member in node.members)
        return f"{{{members}}}"
    elif isinstance(node, ast.RelPred):
        return f"{node.op} {_operand(node.operand)}"
    else:
        raise TypeError(f"not a predicate: {node!r}")
    if level < parent_level:
        return f"({text})"
    return text


# ---------------------------------------------------------------------------
# Domains and steps
# ---------------------------------------------------------------------------


def print_domain(node: ast.DomainExpr) -> str:
    if isinstance(node, ast.DomainRef):
        return f"${node.notation}"
    if isinstance(node, ast.CompartmentDomain):
        return f"#[{node.compartment}] {print_domain(node.inner)}#"
    if isinstance(node, ast.UnionDomain):
        return ", ".join(print_domain(member) for member in node.members)
    if isinstance(node, ast.BinOpDomain):
        return f"{print_domain(node.left)} {node.op} {print_domain(node.right)}"
    if isinstance(node, ast.TransformDomain):
        extra = "".join(", " + _operand(arg) for arg in node.args)
        return f"{node.name}({print_domain(node.inner)}{extra})"
    raise TypeError(f"not a domain: {node!r}")


def _step(node: ast.Step) -> str:
    if isinstance(node, ast.TransformStep):
        if node.args:
            args = ", ".join(_operand(arg) for arg in node.args)
            return f"{node.name}({args})"
        return node.name
    if isinstance(node, ast.TupleStep):
        return "[" + ", ".join(_step(part) for part in node.parts) + "]"
    if isinstance(node, ast.ForeachStep):
        return f"foreach(${node.domain.notation})"
    if isinstance(node, ast.CondStep):
        text = f"if ({print_predicate(node.condition)}) {_step(node.then)}"
        if node.otherwise is not None:
            text += f" else {_step(node.otherwise)}"
        return text
    if isinstance(node, ast.PredicateStep):
        return print_predicate(node.predicate)
    raise TypeError(f"not a step: {node!r}")


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


def print_statement(node: ast.Statement, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(node, ast.LoadCmd):
        text = f"load {_quote(node.alias)} {_quote(node.location)}"
        if node.scope:
            text += f" as {_quote(node.scope)}"
        return pad + text
    if isinstance(node, ast.IncludeCmd):
        return pad + f"include {_quote(node.path)}"
    if isinstance(node, ast.LetCmd):
        return pad + f"let {node.name} := {print_predicate(node.predicate)}"
    if isinstance(node, ast.GetCmd):
        return pad + f"get {print_domain(node.domain)}"
    if isinstance(node, ast.NamespaceBlock):
        header = pad + "namespace " + ", ".join(node.names) + " {"
        body = [print_statement(child, indent + 1) for child in node.body]
        return "\n".join([header] + body + [pad + "}"])
    if isinstance(node, ast.CompartmentBlock):
        header = pad + f"compartment {node.name} {{"
        body = [print_statement(child, indent + 1) for child in node.body]
        return "\n".join([header] + body + [pad + "}"])
    if isinstance(node, ast.IfStatement):
        condition = _condition(node.condition)
        lines = [pad + f"if ({condition}) {{"]
        lines += [print_statement(child, indent + 1) for child in node.then]
        if node.otherwise:
            lines.append(pad + "} else {")
            lines += [print_statement(child, indent + 1) for child in node.otherwise]
        lines.append(pad + "}")
        return "\n".join(lines)
    if isinstance(node, ast.SpecStatement):
        parts = [print_domain(node.domain)]
        parts += [_step(step) for step in node.steps]
        text = pad + " -> ".join(parts)
        if node.custom_message:
            text += f" !! {_quote(node.custom_message)}"
        return text
    raise TypeError(f"not a statement: {node!r}")


def _condition(node: ast.ConditionSpec) -> str:
    spec = node.spec
    parts = [print_domain(spec.domain)]
    parts += [_step(step) for step in spec.steps]
    return " -> ".join(parts)


def print_program(program: ast.Program) -> str:
    return "\n".join(print_statement(statement) for statement in program.statements)
