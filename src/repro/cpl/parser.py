"""Recursive-descent parser for CPL (paper Listing 4 grammar).

The paper built its compiler on ANTLR; offline we hand-write the parser.
Noteworthy disambiguation rules:

* ``[a, b]`` is a **range predicate** when its elements are literals or
  domain references, and a **tuple step** (``[at(0), at(1)]``) when its
  elements are transformation calls;
* a call ``name(...)`` inside a pipeline is a transformation step when
  ``name`` is a registered transform, otherwise a predicate primitive;
* ``if`` inside a pipeline produces a predicated transformation when its
  branch is a transformation, and a conditional predicate when its branch is
  a predicate;
* ``domain relop domain`` at statement level desugars to
  ``domain -> (relop operand)`` (paper Figure 4 writes ``$k1 <= $k2``).

Statements are newline-terminated; the lexer already folded continuation
newlines away.
"""

from __future__ import annotations

from typing import Optional

from ..errors import CPLSyntaxError
from ..transforms import is_transform
from . import ast
from .lexer import tokenize
from .tokens import Token, TokenType

__all__ = ["parse", "parse_predicate"]


def parse(text: str) -> ast.Program:
    """Parse CPL source text into a :class:`~repro.cpl.ast.Program`."""
    return _Parser(tokenize(text), text).parse_program()


def parse_predicate(text: str) -> ast.PredExpr:
    """Parse a standalone predicate expression (used by ``let`` tooling)."""
    parser = _Parser(tokenize(text), text)
    predicate = parser.parse_pred_expr()
    parser.skip_newlines()
    parser.expect(TokenType.EOF)
    return predicate


class _Parser:
    def __init__(self, tokens: list[Token], source: str = ""):
        self.tokens = tokens
        self.pos = 0
        self.source_lines = source.splitlines()

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type != TokenType.EOF:
            self.pos += 1
        return token

    def check(self, type_: str, value=None, ahead: int = 0) -> bool:
        token = self.peek(ahead)
        if token.type != type_:
            return False
        return value is None or token.value == value

    def match(self, type_: str, value=None) -> Optional[Token]:
        if self.check(type_, value):
            return self.advance()
        return None

    def expect(self, type_: str, value=None) -> Token:
        if self.check(type_, value):
            return self.advance()
        token = self.peek()
        wanted = value if value is not None else type_
        raise CPLSyntaxError(
            f"expected {wanted}, found {token.value!r}", token.line, token.column
        )

    def skip_newlines(self) -> None:
        while self.match(TokenType.NEWLINE):
            pass

    def statement_end(self) -> None:
        if self.check(TokenType.EOF) or self.check(TokenType.RBRACE):
            return
        if self.check(TokenType.KEYWORD, "else"):
            return  # single-statement `then` branch followed by inline else
        self.expect(TokenType.NEWLINE)
        self.skip_newlines()

    def error(self, message: str) -> CPLSyntaxError:
        token = self.peek()
        return CPLSyntaxError(message, token.line, token.column)

    def _slice_text(self, start_line: int, end_line: int) -> str:
        lines = self.source_lines[max(0, start_line - 1):end_line]
        return "\n".join(line.strip() for line in lines).strip()

    # ------------------------------------------------------------------
    # Program / statements
    # ------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        statements = self.parse_statements(until=TokenType.EOF)
        self.expect(TokenType.EOF)
        return ast.Program(tuple(statements))

    def parse_statements(self, until: str) -> list[ast.Statement]:
        statements: list[ast.Statement] = []
        self.skip_newlines()
        while not self.check(until) and not self.check(TokenType.EOF):
            statements.append(self.parse_statement())
            self.skip_newlines()
        return statements

    def parse_statement(self) -> ast.Statement:
        token = self.peek()
        if token.type == TokenType.KEYWORD:
            if token.value == "load":
                return self.parse_load()
            if token.value == "include":
                return self.parse_include()
            if token.value == "let":
                return self.parse_let()
            if token.value == "get":
                return self.parse_get()
            if token.value == "namespace":
                return self.parse_namespace()
            if token.value == "compartment":
                return self.parse_compartment()
            if token.value == "if":
                return self.parse_if_statement()
            raise self.error(f"unexpected keyword {token.value!r}")
        if token.type in (
            TokenType.QUANT_EXISTS,
            TokenType.QUANT_FORALL,
            TokenType.QUANT_ONE,
        ):
            # standalone quantified statement: ∃ $a.b == 'x'
            condition = self.parse_condition()
            end_line = self.peek(-1).line if self.pos > 0 else token.line
            self.statement_end()
            spec = condition.spec
            return ast.SpecStatement(
                spec.domain,
                spec.steps,
                text=self._slice_text(token.line, end_line),
                line=token.line,
            )
        return self.parse_spec_statement()

    def parse_load(self) -> ast.LoadCmd:
        line = self.expect(TokenType.KEYWORD, "load").line
        alias = str(self.expect(TokenType.STRING).value)
        location = str(self.expect(TokenType.STRING).value)
        scope = ""
        if self.match(TokenType.KEYWORD, "as"):
            scope = str(self.expect(TokenType.STRING).value)
        self.statement_end()
        return ast.LoadCmd(alias, location, scope, line)

    def parse_include(self) -> ast.IncludeCmd:
        line = self.expect(TokenType.KEYWORD, "include").line
        path = str(self.expect(TokenType.STRING).value)
        self.statement_end()
        return ast.IncludeCmd(path, line)

    def parse_let(self) -> ast.LetCmd:
        line = self.expect(TokenType.KEYWORD, "let").line
        name = str(self.expect(TokenType.IDENT).value)
        self.expect(TokenType.ASSIGN)
        predicate = self.parse_pred_expr()
        self.statement_end()
        return ast.LetCmd(name, predicate, line)

    def parse_get(self) -> ast.GetCmd:
        line = self.expect(TokenType.KEYWORD, "get").line
        domain = self.parse_domain_expr()
        self.statement_end()
        return ast.GetCmd(domain, line)

    def parse_namespace(self) -> ast.NamespaceBlock:
        line = self.expect(TokenType.KEYWORD, "namespace").line
        names = [self.parse_qid_text()]
        while self.match(TokenType.COMMA):
            names.append(self.parse_qid_text())
        self.expect(TokenType.LBRACE)
        body = self.parse_statements(until=TokenType.RBRACE)
        self.expect(TokenType.RBRACE)
        return ast.NamespaceBlock(tuple(names), tuple(body), line)

    def parse_compartment(self) -> ast.CompartmentBlock:
        line = self.expect(TokenType.KEYWORD, "compartment").line
        name = self.parse_qid_text()
        self.expect(TokenType.LBRACE)
        body = self.parse_statements(until=TokenType.RBRACE)
        self.expect(TokenType.RBRACE)
        return ast.CompartmentBlock(name, tuple(body), line)

    def parse_qid_text(self) -> str:
        """A dotted, optionally qualified scope name for block headers
        (``r.s``, ``Cluster::prod*``, ``Rack.Blade``)."""
        parts = [self._qid_segment()]
        while self.match(TokenType.DOT):
            parts.append(self._qid_segment())
        return ".".join(parts)

    def _qid_segment(self) -> str:
        name = str(self.expect(TokenType.IDENT).value)
        if self.match(TokenType.COLONCOLON):
            if self.check(TokenType.STRING):
                qualifier = str(self.advance().value)
                escaped = qualifier.replace("'", "\\'")
                return f"{name}::'{escaped}'"
            qualifier = str(self.expect(TokenType.IDENT).value)
            return f"{name}::{qualifier}"
        return name

    def parse_if_statement(self) -> ast.IfStatement:
        line = self.expect(TokenType.KEYWORD, "if").line
        self.expect(TokenType.LPAREN)
        condition = self.parse_condition()
        self.expect(TokenType.RPAREN)
        self.skip_newlines()
        then = self.parse_statement_or_block()
        otherwise: tuple[ast.Statement, ...] = ()
        self.skip_newlines()
        if self.match(TokenType.KEYWORD, "else"):
            self.skip_newlines()
            otherwise = self.parse_statement_or_block()
        return ast.IfStatement(condition, then, otherwise, line)

    def parse_statement_or_block(self) -> tuple[ast.Statement, ...]:
        if self.match(TokenType.LBRACE):
            body = self.parse_statements(until=TokenType.RBRACE)
            self.expect(TokenType.RBRACE)
            return tuple(body)
        return (self.parse_statement(),)

    # ------------------------------------------------------------------
    # Conditions (inside statement-level if)
    # ------------------------------------------------------------------

    def parse_condition(self) -> ast.ConditionSpec:
        """``$CloudName -> ~match('…')`` or ``exists $X.Y == 'v'``."""
        quantifier = self.parse_optional_quantifier()
        domain = self.parse_domain_expr()
        if self.match(TokenType.ARROW):
            steps = self.parse_pipeline_steps()
        elif self.check(TokenType.RELOP):
            op = str(self.advance().value)
            operand = self.parse_operand()
            steps = [ast.PredicateStep(ast.RelPred(op, operand))]
        else:
            # bare domain condition: true when the domain has instances
            steps = [ast.PredicateStep(ast.PrimitiveCall("string"))]
            if quantifier is None:
                quantifier = "exists"
        if quantifier is not None:
            last = steps[-1]
            assert isinstance(last, ast.PredicateStep)
            steps[-1] = ast.PredicateStep(
                ast.Quantified(quantifier, last.predicate)
            )
        spec = ast.SpecStatement(domain, tuple(steps))
        return ast.ConditionSpec(spec)

    def parse_optional_quantifier(self) -> Optional[str]:
        for type_, name in (
            (TokenType.QUANT_EXISTS, "exists"),
            (TokenType.QUANT_FORALL, "forall"),
            (TokenType.QUANT_ONE, "one"),
        ):
            if self.match(type_):
                return name
        return None

    # ------------------------------------------------------------------
    # Specification statements
    # ------------------------------------------------------------------

    def parse_spec_statement(self) -> ast.SpecStatement:
        start = self.peek()
        domain = self.parse_domain_expr()
        if self.check(TokenType.COMMA):
            # $s.k1, $s.k2 -> … : several domains validated together (Fig 4b)
            members = [domain]
            while self.match(TokenType.COMMA):
                members.append(self.parse_domain_expr())
            domain = ast.UnionDomain(tuple(members))
        if self.check(TokenType.RELOP):
            # Figure 4 style: $k1 <= $k2
            op = str(self.advance().value)
            operand = self.parse_operand()
            steps: list[ast.Step] = [ast.PredicateStep(ast.RelPred(op, operand))]
        else:
            self.expect(TokenType.ARROW)
            steps = self.parse_pipeline_steps()
        custom_message = ""
        if self.match(TokenType.BANGBANG):
            custom_message = str(self.expect(TokenType.STRING).value)
        end_line = self.peek(-1).line if self.pos > 0 else start.line
        self.statement_end()
        return ast.SpecStatement(
            domain,
            tuple(steps),
            text=self._slice_text(start.line, end_line),
            line=start.line,
            custom_message=custom_message,
        )

    # ------------------------------------------------------------------
    # Domains
    # ------------------------------------------------------------------

    def parse_domain_expr(self) -> ast.DomainExpr:
        left = self.parse_domain_term()
        while True:
            for type_, op in (
                (TokenType.PLUS, "+"),
                (TokenType.MINUS, "-"),
                (TokenType.STAR, "*"),
                (TokenType.SLASH, "/"),
            ):
                if self.check(type_):
                    self.advance()
                    right = self.parse_domain_term()
                    left = ast.BinOpDomain(op, left, right)
                    break
            else:
                return left

    def parse_domain_term(self) -> ast.DomainExpr:
        if self.check(TokenType.DOMAIN):
            notation = str(self.advance().value)
            if notation == "_":
                raise self.error("$_ is only valid inside a pipeline")
            return ast.DomainRef(notation)
        if self.check(TokenType.HASH):
            return self.parse_inline_compartment()
        if self.check(TokenType.IDENT) and self.check(TokenType.LPAREN, ahead=1):
            name = str(self.advance().value)
            if not is_transform(name):
                raise self.error(f"{name!r} is not a transformation")
            self.expect(TokenType.LPAREN)
            inner = self.parse_domain_expr()
            args: list[ast.Operand] = []
            while self.match(TokenType.COMMA):
                args.append(self.parse_operand())
            self.expect(TokenType.RPAREN)
            return ast.TransformDomain(name, tuple(args), inner)
        if self.match(TokenType.LPAREN):
            inner = self.parse_domain_expr()
            self.expect(TokenType.RPAREN)
            return inner
        raise self.error(f"expected a domain, found {self.peek().value!r}")

    def parse_inline_compartment(self) -> ast.CompartmentDomain:
        self.expect(TokenType.HASH)
        self.expect(TokenType.LBRACKET)
        name_parts = [str(self.expect(TokenType.IDENT).value)]
        while self.match(TokenType.DOT):
            name_parts.append(str(self.expect(TokenType.IDENT).value))
        self.expect(TokenType.RBRACKET)
        inner = self.parse_domain_expr()
        self.expect(TokenType.HASH)
        return ast.CompartmentDomain(".".join(name_parts), inner)

    # ------------------------------------------------------------------
    # Pipelines
    # ------------------------------------------------------------------

    def parse_pipeline_steps(self) -> list[ast.Step]:
        steps = [self.parse_step()]
        while self.match(TokenType.ARROW):
            steps.append(self.parse_step())
        # Exactly the last step may be (must be) a predicate.
        for step in steps[:-1]:
            if isinstance(step, ast.PredicateStep):
                raise self.error("only the final pipeline step may be a predicate")
        if not isinstance(steps[-1], ast.PredicateStep):
            raise self.error("a specification must end in a predicate")
        return steps

    def parse_step(self) -> ast.Step:
        token = self.peek()
        if token.type == TokenType.KEYWORD and token.value == "foreach":
            self.advance()
            self.expect(TokenType.LPAREN)
            domain = self.expect(TokenType.DOMAIN)
            self.expect(TokenType.RPAREN)
            return ast.ForeachStep(ast.DomainRef(str(domain.value)))
        if token.type == TokenType.KEYWORD and token.value == "if":
            return self.parse_if_step()
        if token.type == TokenType.LBRACKET and self.is_tuple_step():
            return self.parse_tuple_step()
        if (
            token.type == TokenType.IDENT
            and is_transform(str(token.value))
            and not self.check(TokenType.RELOP, ahead=1)
        ):
            return self.parse_transform_call()
        return ast.PredicateStep(self.parse_pred_expr())

    def parse_if_step(self) -> ast.Step:
        """Disambiguate predicated transformations from conditional predicates."""
        self.expect(TokenType.KEYWORD, "if")
        self.expect(TokenType.LPAREN)
        condition = self.parse_pred_expr()
        self.expect(TokenType.RPAREN)
        self.skip_newlines_in_step()
        branch = self.parse_step()
        otherwise: Optional[ast.Step] = None
        if self.match(TokenType.KEYWORD, "else"):
            self.skip_newlines_in_step()
            otherwise = self.parse_step()
        if isinstance(branch, ast.PredicateStep):
            else_pred = None
            if otherwise is not None:
                if not isinstance(otherwise, ast.PredicateStep):
                    raise self.error("if-predicate branches must both be predicates")
                else_pred = otherwise.predicate
            return ast.PredicateStep(
                ast.IfPred(condition, branch.predicate, else_pred)
            )
        return ast.CondStep(condition, branch, otherwise)

    def skip_newlines_in_step(self) -> None:
        # pipelines are single statements; stray newlines here are lexer
        # artifacts around parenthesized conditions
        while self.check(TokenType.NEWLINE) and self.check(
            TokenType.ARROW, ahead=1
        ):
            self.advance()

    def is_tuple_step(self) -> bool:
        """True when ``[`` opens ``[at(0), at(1)]`` rather than a range."""
        return (
            self.check(TokenType.IDENT, ahead=1)
            and self.check(TokenType.LPAREN, ahead=2)
            and is_transform(str(self.peek(1).value))
        )

    def parse_tuple_step(self) -> ast.TupleStep:
        self.expect(TokenType.LBRACKET)
        parts = [self.parse_transform_call()]
        while self.match(TokenType.COMMA):
            parts.append(self.parse_transform_call())
        self.expect(TokenType.RBRACKET)
        return ast.TupleStep(tuple(parts))

    def parse_transform_call(self) -> ast.TransformStep:
        name = str(self.expect(TokenType.IDENT).value)
        if not is_transform(name):
            raise self.error(f"{name!r} is not a transformation")
        args: list[ast.Operand] = []
        if self.match(TokenType.LPAREN):
            if not self.check(TokenType.RPAREN):
                args.append(self.parse_operand())
                while self.match(TokenType.COMMA):
                    args.append(self.parse_operand())
            self.expect(TokenType.RPAREN)
        return ast.TransformStep(name, tuple(args))

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def parse_pred_expr(self) -> ast.PredExpr:
        return self.parse_pred_or()

    def parse_pred_or(self) -> ast.PredExpr:
        left = self.parse_pred_and()
        while self.match(TokenType.OR):
            right = self.parse_pred_and()
            left = ast.Or(left, right)
        return left

    def parse_pred_and(self) -> ast.PredExpr:
        left = self.parse_pred_unary()
        while self.match(TokenType.AND):
            right = self.parse_pred_unary()
            left = ast.And(left, right)
        return left

    _PRED_TERMINATORS = frozenset(
        {
            TokenType.NEWLINE,
            TokenType.EOF,
            TokenType.AND,
            TokenType.OR,
            TokenType.RPAREN,
            TokenType.RBRACE,
            TokenType.RBRACKET,
            TokenType.ARROW,
            TokenType.COMMA,
        }
    )

    def parse_pred_unary(self) -> ast.PredExpr:
        if self.match(TokenType.NOT):
            return ast.Not(self.parse_pred_unary())
        # `exists` doubles as the path-existence primitive: when nothing that
        # could start a predicate follows, it is the primitive, not ∃.
        if self.check(TokenType.QUANT_EXISTS) and self.peek(1).type in (
            self._PRED_TERMINATORS
        ):
            self.advance()
            return ast.PrimitiveCall("exists")
        quantifier = self.parse_optional_quantifier()
        if quantifier is not None:
            return ast.Quantified(quantifier, self.parse_pred_unary())
        return self.parse_pred_atom()

    def parse_pred_atom(self) -> ast.PredExpr:
        token = self.peek()
        if token.type == TokenType.LPAREN:
            self.advance()
            inner = self.parse_pred_expr()
            self.expect(TokenType.RPAREN)
            return inner
        if token.type == TokenType.KEYWORD and token.value == "if":
            self.advance()
            self.expect(TokenType.LPAREN)
            condition = self.parse_pred_expr()
            self.expect(TokenType.RPAREN)
            then = self.parse_pred_expr()
            otherwise = None
            if self.match(TokenType.KEYWORD, "else"):
                otherwise = self.parse_pred_expr()
            return ast.IfPred(condition, then, otherwise)
        if token.type == TokenType.AT:
            self.advance()
            name = str(self.expect(TokenType.IDENT).value)
            return ast.MacroRef(name)
        if token.type == TokenType.LBRACKET:
            self.advance()
            low = self.parse_operand()
            self.expect(TokenType.COMMA)
            high = self.parse_operand()
            self.expect(TokenType.RBRACKET)
            return ast.RangePred(low, high)
        if token.type == TokenType.LBRACE:
            self.advance()
            members = [self.parse_operand()]
            while self.match(TokenType.COMMA):
                members.append(self.parse_operand())
            self.expect(TokenType.RBRACE)
            return ast.SetPred(tuple(members))
        if token.type == TokenType.RELOP:
            op = str(self.advance().value)
            return ast.RelPred(op, self.parse_operand())
        if token.type == TokenType.DOMAIN and str(token.value) == "_":
            # $_ == operand — relation on the pipeline value
            self.advance()
            op = str(self.expect(TokenType.RELOP).value)
            return ast.RelPred(op, self.parse_operand())
        if token.type == TokenType.IDENT:
            name = str(self.advance().value)
            args: list[ast.Operand] = []
            if self.match(TokenType.LPAREN):
                if not self.check(TokenType.RPAREN):
                    args.append(self.parse_operand())
                    while self.match(TokenType.COMMA):
                        args.append(self.parse_operand())
                self.expect(TokenType.RPAREN)
            return ast.PrimitiveCall(name, tuple(args))
        raise self.error(f"expected a predicate, found {token.value!r}")

    # ------------------------------------------------------------------
    # Operands
    # ------------------------------------------------------------------

    def parse_operand(self) -> ast.Operand:
        token = self.peek()
        if token.type == TokenType.STRING:
            self.advance()
            return ast.Literal(str(token.value))
        if token.type == TokenType.NUMBER:
            self.advance()
            return ast.Literal(token.value)
        if token.type == TokenType.MINUS and self.check(TokenType.NUMBER, ahead=1):
            self.advance()
            number = self.advance().value
            return ast.Literal(-number)
        if token.type == TokenType.DOMAIN:
            self.advance()
            if str(token.value) == "_":
                return ast.ContextRef()
            return ast.DomainRef(str(token.value))
        raise self.error(f"expected a value or domain, found {token.value!r}")
