"""The CPL standard macro library.

The paper encourages modular, reusable specifications (``include`` + ``let``
macros).  This module ships the macros practitioners re-derive in every
deployment, as ordinary CPL text: sessions opt in with
:meth:`~repro.core.session.ValidationSession.load_stdlib` (or
``include 'stdlib'`` semantics in their own files).

Everything here is expressible in plain CPL — the library adds no engine
features, just names.
"""

from __future__ import annotations

__all__ = ["STDLIB_CPL", "STDLIB_MACRO_NAMES"]

STDLIB_CPL = """\
// ---- identity & uniqueness ------------------------------------------------
let UniqueIP := unique & ip
let UniqueCIDR := unique & cidr
let UniqueGuid := unique & guid
let UniqueName := unique & nonempty

// ---- network shapes ---------------------------------------------------------
let Endpoint := nonempty & match(':[0-9]+$')
let HttpsUrl := url & match('^https://')
let PrivateIPv4 := ip & (match('^10\\.') | match('^192\\.168\\.') | match('^172\\.(1[6-9]|2[0-9]|3[01])\\.'))
let LoopbackFree := ip & ~match('^127\\.')

// ---- common value shapes -----------------------------------------------------
let Percentage := float & [0, 100]
let Ratio := float & [0, 1]
let PositiveInt := int & [1, 2147483647]
let NonNegativeInt := int & [0, 2147483647]
let BoolFlag := bool & nonempty
let RequiredString := string & nonempty

// ---- operational hygiene ------------------------------------------------------
let SaneTimeout := int & [1, 86400]
let SanePort := port & nonempty
let ReplicaCount := int & {1, 3, 5, 7}
let WindowsShare := path & startswith('\\\\\\\\')
"""

#: macro names defined by :data:`STDLIB_CPL`, for discoverability/tests
STDLIB_MACRO_NAMES = (
    "UniqueIP",
    "UniqueCIDR",
    "UniqueGuid",
    "UniqueName",
    "Endpoint",
    "HttpsUrl",
    "PrivateIPv4",
    "LoopbackFree",
    "Percentage",
    "Ratio",
    "PositiveInt",
    "NonNegativeInt",
    "BoolFlag",
    "RequiredString",
    "SaneTimeout",
    "SanePort",
    "ReplicaCount",
    "WindowsShare",
)
