"""Hand-written lexer for CPL (replacing the paper's ANTLR front end).

Statement termination is newline-based (paper Listing 5 has no statement
separators).  Specifications may span lines, so a newline is suppressed when
the previous token obviously continues (trailing ``&``, ``->``, ``,`` …) or
the next token obviously resumes a statement (leading ``&``, ``|``, ``->``,
``else`` …).  Inside parentheses/brackets newlines never terminate.

Domain notations (``$Fabric::$CloudName.TenantName``) are lexed as single
``DOMAIN`` tokens using the same scanning rules as
:mod:`repro.repository.keys`, including nested ``$`` variables and quoted
qualifiers.  The context variable ``$_`` lexes as a DOMAIN token with value
``"_"``.
"""

from __future__ import annotations

from ..errors import CPLSyntaxError
from .tokens import KEYWORDS, QUANT_WORDS, Token, TokenType

__all__ = ["tokenize"]

_NAME_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_*-")
_SIMPLE = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    "@": TokenType.AT,
    "#": TokenType.HASH,
    "+": TokenType.PLUS,
    "/": TokenType.SLASH,
    "&": TokenType.AND,
    "|": TokenType.OR,
    "~": TokenType.NOT,
}

#: token types after which a newline never terminates a statement
_TRAILING_CONTINUATION = {
    TokenType.ARROW,
    TokenType.AND,
    TokenType.OR,
    TokenType.NOT,
    TokenType.ASSIGN,
    TokenType.COMMA,
    TokenType.RELOP,
    TokenType.LPAREN,
    TokenType.LBRACKET,
    TokenType.LBRACE,
    TokenType.PLUS,
    TokenType.MINUS,
    TokenType.STAR,
    TokenType.SLASH,
    TokenType.AT,
    TokenType.BANGBANG,
}

#: token types that, at line start, resume the previous statement
_LEADING_CONTINUATION = {
    TokenType.ARROW,
    TokenType.AND,
    TokenType.OR,
    TokenType.ASSIGN,
    TokenType.RELOP,
}


class _Lexer:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1
        self.depth = 0  # ( [ nesting; newlines are invisible inside
        self.tokens: list[Token] = []

    # -- low-level helpers ------------------------------------------------

    def error(self, message: str) -> CPLSyntaxError:
        return CPLSyntaxError(message, self.line, self.column)

    def peek(self, ahead: int = 0) -> str:
        index = self.pos + ahead
        return self.text[index] if index < len(self.text) else ""

    def advance(self, count: int = 1) -> str:
        chunk = self.text[self.pos:self.pos + count]
        for ch in chunk:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return chunk

    def emit(self, type_: str, value, line: int | None = None, column: int | None = None):
        self.tokens.append(
            Token(type_, value, line or self.line, column or self.column)
        )

    # -- main loop ---------------------------------------------------------

    def run(self) -> list[Token]:
        while self.pos < len(self.text):
            ch = self.peek()
            if ch == "\n":
                self.advance()
                if self.depth == 0:
                    self.emit(TokenType.NEWLINE, "\n")
                continue
            if ch in " \t\r":
                self.advance()
                continue
            if ch == "/" and self.peek(1) == "/":
                while self.pos < len(self.text) and self.peek() != "\n":
                    self.advance()
                continue
            if ch == "/" and self.peek(1) == "*":
                self.advance(2)
                while self.pos < len(self.text) and not (
                    self.peek() == "*" and self.peek(1) == "/"
                ):
                    self.advance()
                if self.pos >= len(self.text):
                    raise self.error("unterminated block comment")
                self.advance(2)
                continue
            line, column = self.line, self.column
            if ch == "'":
                self.emit(TokenType.STRING, self.read_string(), line, column)
                continue
            if ch.isdigit() or (ch == "." and self.peek(1).isdigit()):
                self.emit(TokenType.NUMBER, self.read_number(), line, column)
                continue
            if ch == "$":
                self.emit(TokenType.DOMAIN, self.read_domain(), line, column)
                continue
            if ch == "-" and self.peek(1) == ">":
                self.advance(2)
                self.emit(TokenType.ARROW, "->", line, column)
                continue
            if ch == "→":  # →
                self.advance()
                self.emit(TokenType.ARROW, "->", line, column)
                continue
            if ch == "∃":  # ∃ / ∃!
                self.advance()
                if self.peek() == "!":
                    self.advance()
                    self.emit(TokenType.QUANT_ONE, "one", line, column)
                else:
                    self.emit(TokenType.QUANT_EXISTS, "exists", line, column)
                continue
            if ch == "∀":  # ∀
                self.advance()
                self.emit(TokenType.QUANT_FORALL, "forall", line, column)
                continue
            if ch == ":" and self.peek(1) == "=":
                self.advance(2)
                self.emit(TokenType.ASSIGN, ":=", line, column)
                continue
            if ch == ":" and self.peek(1) == ":":
                self.advance(2)
                self.emit(TokenType.COLONCOLON, "::", line, column)
                continue
            if ch in "=!<>":
                op = self.read_relop()
                if op == "!!":
                    self.emit(TokenType.BANGBANG, op, line, column)
                else:
                    self.emit(TokenType.RELOP, op, line, column)
                continue
            if ch == "≤":  # ≤
                self.advance()
                self.emit(TokenType.RELOP, "<=", line, column)
                continue
            if ch == "≥":  # ≥
                self.advance()
                self.emit(TokenType.RELOP, ">=", line, column)
                continue
            if ch in _SIMPLE:
                self.advance()
                type_ = _SIMPLE[ch]
                # Braces hold *statements* (namespace/compartment blocks), so
                # newlines inside them still terminate; only parens/brackets
                # make newlines invisible.
                if type_ in (TokenType.LPAREN, TokenType.LBRACKET):
                    self.depth += 1
                elif type_ in (TokenType.RPAREN, TokenType.RBRACKET):
                    self.depth = max(0, self.depth - 1)
                elif type_ == TokenType.RBRACE and self.depth == 0:
                    # `}` closing a block statement (never inside parens or
                    # brackets, where it closes a set literal): follow it
                    # with a virtual newline so `else` lookahead stays simple.
                    self.emit(type_, ch, line, column)
                    self.emit(TokenType.NEWLINE, "\n", line, column)
                    continue
                self.emit(type_, ch, line, column)
                continue
            if ch == "-":
                # unary minus on numbers is handled by the parser; standalone
                # minus is the arithmetic domain operator
                self.advance()
                self.emit(TokenType.MINUS, "-", line, column)
                continue
            if ch in _NAME_CHARS:
                word = self.read_word()
                if word in QUANT_WORDS:
                    self.emit(QUANT_WORDS[word], word, line, column)
                elif word in KEYWORDS:
                    self.emit(TokenType.KEYWORD, word, line, column)
                else:
                    self.emit(TokenType.IDENT, word, line, column)
                continue
            raise self.error(f"unexpected character {ch!r}")
        self.emit(TokenType.EOF, "")
        return self._fold_newlines(self.tokens)

    # -- scanners ------------------------------------------------------------

    def read_string(self) -> str:
        self.advance()  # opening quote
        out = []
        while True:
            if self.pos >= len(self.text):
                raise self.error("unterminated string literal")
            ch = self.advance()
            if ch == "\\" and self.peek() in ("'", "\\"):
                out.append(self.advance())
            elif ch == "'":
                break
            else:
                out.append(ch)
        return "".join(out)

    def read_number(self):
        start = self.pos
        while self.peek().isdigit():
            self.advance()
        if self.peek() == "." and self.peek(1).isdigit():
            self.advance()
            while self.peek().isdigit():
                self.advance()
            return float(self.text[start:self.pos])
        return int(self.text[start:self.pos])

    def read_relop(self) -> str:
        ch = self.advance()
        if ch == "=" and self.peek() == "=":
            self.advance()
            return "=="
        if ch == "=":
            return "=="  # tolerate single '=' as equality
        if ch == "!":
            if self.peek() == "!":
                self.advance()
                return "!!"
            if self.peek() != "=":
                raise self.error("expected '=' or '!' after '!'")
            self.advance()
            return "!="
        if ch in "<>" and self.peek() == "=":
            self.advance()
            return ch + "="
        return ch

    def read_word(self) -> str:
        start = self.pos
        while self.peek() in _NAME_CHARS:
            if self.peek() == "-" and self.peek(1) == ">":
                break  # '-' belongs to an arrow, not the name
            self.advance()
        return self.text[start:self.pos]

    def read_domain(self) -> str:
        """Scan a full qualified notation after ``$`` (value excludes the $)."""
        self.advance()  # $
        if self.peek() == "_" and self.peek(1) not in _NAME_CHARS:
            self.advance()
            return "_"
        start = self.pos
        out = []

        def read_name(allow_dollar: bool) -> None:
            if allow_dollar and self.peek() == "$":
                out.append(self.advance())
            got = False
            while self.peek() in _NAME_CHARS:
                if self.peek() == "-" and self.peek(1) == ">":
                    break  # '-' belongs to an arrow, not the name
                out.append(self.advance())
                got = True
            if not got:
                raise self.error("expected a name in configuration notation")

        read_name(allow_dollar=False)
        while True:
            if self.peek() == ":" and self.peek(1) == ":":
                out.append(self.advance(2))
                if self.peek() == "'":
                    quoted = self.read_string()
                    out.append("'" + quoted.replace("'", "\\'") + "'")
                else:
                    read_name(allow_dollar=True)
                continue
            if self.peek() == "[":
                # Only an index ([3] or [$var]) binds to the domain; anything
                # else (e.g. range predicate "[...") belongs to the parser.
                ahead = 1
                if self.peek(ahead) == "$":
                    ahead += 1
                    while self.peek(ahead) in _NAME_CHARS:
                        ahead += 1
                elif self.peek(ahead).isdigit():
                    while self.peek(ahead).isdigit():
                        ahead += 1
                else:
                    break
                if self.peek(ahead) != "]":
                    break
                out.append(self.advance(ahead + 1))
                continue
            if self.peek() == "." and (
                self.peek(1) in _NAME_CHARS or self.peek(1) == "$"
            ):
                out.append(self.advance())
                read_name(allow_dollar=True)
                continue
            break
        if not out:
            raise self.error("empty configuration notation after '$'")
        return "".join(out)

    # -- newline folding -------------------------------------------------------

    @staticmethod
    def _fold_newlines(tokens: list[Token]) -> list[Token]:
        """Drop newlines that sit inside an obviously-continuing statement."""
        out: list[Token] = []
        index = 0
        while index < len(tokens):
            token = tokens[index]
            if token.type != TokenType.NEWLINE:
                out.append(token)
                index += 1
                continue
            # collapse a run of newlines
            next_index = index
            while (
                next_index < len(tokens)
                and tokens[next_index].type == TokenType.NEWLINE
            ):
                next_index += 1
            previous = out[-1] if out else None
            following = tokens[next_index] if next_index < len(tokens) else None
            drop = False
            if previous is None or previous.type == TokenType.NEWLINE:
                drop = True
            elif previous.type in _TRAILING_CONTINUATION:
                drop = True
            elif following is not None and following.type in _LEADING_CONTINUATION:
                drop = True
            elif following is not None and (
                following.type == TokenType.KEYWORD and following.value == "else"
            ):
                drop = True
            if not drop:
                out.append(token)
            index = next_index
        return out


def tokenize(text: str) -> list[Token]:
    """Tokenize CPL source text; raises :class:`CPLSyntaxError` on bad input."""
    return _Lexer(text).run()
