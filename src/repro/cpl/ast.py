"""CPL abstract syntax tree (paper Listing 4).

The tree distinguishes three layers:

* **statements** — commands (``load``/``include``/``let``/``get``), scope
  blocks (``namespace``/``compartment``), conditional statements, and
  specification statements (``domain -> pipeline``);
* **domains** — configuration notations, inline compartments, arithmetic
  combinations and prefix transformations;
* **predicates** — the boolean layer with logical connectives, quantifiers,
  primitives, ranges, sets, relations and macro references.

Pipelines (paper §4.2.3) are sequences of steps ending in a predicate; each
step is a transformation call, a tuple of transformations, a ``foreach``
re-query, or a predicated transformation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

__all__ = [
    "Node",
    "Program",
    "LoadCmd",
    "IncludeCmd",
    "LetCmd",
    "GetCmd",
    "NamespaceBlock",
    "CompartmentBlock",
    "IfStatement",
    "SpecStatement",
    "DomainRef",
    "ContextRef",
    "CompartmentDomain",
    "BinOpDomain",
    "TransformDomain",
    "UnionDomain",
    "TransformStep",
    "TupleStep",
    "ForeachStep",
    "CondStep",
    "PredicateStep",
    "And",
    "Or",
    "Not",
    "Quantified",
    "IfPred",
    "PrimitiveCall",
    "RangePred",
    "SetPred",
    "RelPred",
    "MacroRef",
    "ConditionSpec",
    "Literal",
    "Statement",
    "DomainExpr",
    "PredExpr",
    "Step",
    "Operand",
]


class Node:
    """Marker base class for all AST nodes."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Operands: literals, domain references, the pipeline context variable
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal(Node):
    value: Union[str, int, float]


@dataclass(frozen=True)
class DomainRef(Node):
    """A configuration notation, e.g. ``Fabric::$CloudName.TenantName``.

    ``notation`` is the raw text (without the leading ``$``); it is parsed
    into a :class:`~repro.repository.keys.KeyPattern` at evaluation time,
    after variable substitution.
    """

    notation: str


@dataclass(frozen=True)
class ContextRef(Node):
    """``$_`` — the value flowing through the current pipeline step."""


Operand = Union[Literal, DomainRef, ContextRef]


# ---------------------------------------------------------------------------
# Domains
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompartmentDomain(Node):
    """Inline compartment: ``#[Datacenter] $Machinepool.FillFactor#``."""

    compartment: str
    inner: "DomainExpr"


@dataclass(frozen=True)
class BinOpDomain(Node):
    """Arithmetic over the Cartesian product of two domains (§4.2.1)."""

    op: str  # + - * /
    left: "DomainExpr"
    right: "DomainExpr"


@dataclass(frozen=True)
class TransformDomain(Node):
    """Prefix transformation style: ``lower($OSPath)``."""

    name: str
    args: tuple[Operand, ...]
    inner: "DomainExpr"


@dataclass(frozen=True)
class UnionDomain(Node):
    """``$s.k1,$s.k2`` — several domains validated together.

    Produced by the compiler's domain-aggregation rewrite (paper Figure 4b);
    the concrete syntax also accepts comma-separated domains at statement
    level.
    """

    members: tuple["DomainExpr", ...]


DomainExpr = Union[
    DomainRef, CompartmentDomain, BinOpDomain, TransformDomain, UnionDomain
]


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class And(Node):
    left: "PredExpr"
    right: "PredExpr"


@dataclass(frozen=True)
class Or(Node):
    left: "PredExpr"
    right: "PredExpr"


@dataclass(frozen=True)
class Not(Node):
    operand: "PredExpr"


@dataclass(frozen=True)
class Quantified(Node):
    """``exists p`` / ``forall p`` / ``one p`` (∃ / ∀ / ∃!)."""

    quantifier: str  # "exists" | "forall" | "one"
    operand: "PredExpr"


@dataclass(frozen=True)
class IfPred(Node):
    """``if (r) s [else t]`` — (r → s) ∧ (¬r → t)."""

    condition: "PredExpr"
    then: "PredExpr"
    otherwise: Optional["PredExpr"] = None


@dataclass(frozen=True)
class PrimitiveCall(Node):
    """A named predicate primitive, with optional arguments.

    Bare primitives (``int``, ``nonempty``) have empty ``args``; call-style
    primitives carry literals or domain operands (``match('.vhd$')``).
    """

    name: str
    args: tuple[Operand, ...] = ()


@dataclass(frozen=True)
class RangePred(Node):
    """``[low, high]`` — inclusive range with literal or domain bounds."""

    low: Operand
    high: Operand


@dataclass(frozen=True)
class SetPred(Node):
    """``{a, b, $Domain}`` — membership in literals and/or domain values."""

    members: tuple[Operand, ...]


@dataclass(frozen=True)
class RelPred(Node):
    """``== x`` / ``<= $Other`` applied to the value under test."""

    op: str
    operand: Operand


@dataclass(frozen=True)
class MacroRef(Node):
    """``@UniqueCIDR`` — reference to a ``let`` macro."""

    name: str


PredExpr = Union[
    And, Or, Not, Quantified, IfPred, PrimitiveCall, RangePred, SetPred, RelPred,
    MacroRef,
]


# ---------------------------------------------------------------------------
# Pipeline steps (§4.2.3)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TransformStep(Node):
    name: str
    args: tuple[Operand, ...] = ()


@dataclass(frozen=True)
class TupleStep(Node):
    """``[at(0), at(1)]`` — build a list by applying each transform to $_."""

    parts: tuple[TransformStep, ...]


@dataclass(frozen=True)
class ForeachStep(Node):
    """``foreach($MachinePool::$_.LoadBalancer.VipRanges)`` — re-query a
    domain per current value, substituting ``$_``."""

    domain: DomainRef


@dataclass(frozen=True)
class CondStep(Node):
    """``if (nonempty) split('-')`` — predicated transformation."""

    condition: "PredExpr"
    then: "Step"
    otherwise: Optional["Step"] = None


@dataclass(frozen=True)
class PredicateStep(Node):
    """The terminal step: the constraint itself."""

    predicate: "PredExpr"


Step = Union[TransformStep, TupleStep, ForeachStep, CondStep, PredicateStep]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SpecStatement(Node):
    """``domain -> step -> … -> predicate`` — one validation specification.

    ``custom_message`` overrides the auto-generated error message for every
    violation of this spec (paper §4.4: "we also allow overriding this
    default error message for an individual check"); written
    ``$K -> int !! 'Timeout must be a number'``.  ``{key}`` and ``{value}``
    placeholders are substituted.
    """

    domain: DomainExpr
    steps: tuple[Step, ...]
    text: str = ""
    line: int = 0
    custom_message: str = ""


@dataclass(frozen=True)
class ConditionSpec(Node):
    """A specification used as a boolean (inside ``if (...)``).

    Holds either a full mini-spec (domain + steps) or a bare predicate to
    test against no domain (rare).  Truth = the spec passes.
    """

    spec: SpecStatement


@dataclass(frozen=True)
class LoadCmd(Node):
    alias: str
    location: str
    scope: str = ""
    line: int = 0


@dataclass(frozen=True)
class IncludeCmd(Node):
    path: str
    line: int = 0


@dataclass(frozen=True)
class LetCmd(Node):
    name: str
    predicate: PredExpr
    line: int = 0


@dataclass(frozen=True)
class GetCmd(Node):
    domain: DomainExpr
    line: int = 0


@dataclass(frozen=True)
class NamespaceBlock(Node):
    """``namespace r.s { … }`` — notation-prefix resolution (§4.2.2)."""

    names: tuple[str, ...]  # one or more namespaces, tried in order
    body: tuple["Statement", ...]
    line: int = 0


@dataclass(frozen=True)
class CompartmentBlock(Node):
    """``compartment Cluster { … }`` — per-instance isolated evaluation."""

    name: str
    body: tuple["Statement", ...]
    line: int = 0


@dataclass(frozen=True)
class IfStatement(Node):
    """Statement-level conditional validation (paper Listing 5)."""

    condition: ConditionSpec
    then: tuple["Statement", ...]
    otherwise: tuple["Statement", ...] = ()
    line: int = 0


Statement = Union[
    LoadCmd,
    IncludeCmd,
    LetCmd,
    GetCmd,
    NamespaceBlock,
    CompartmentBlock,
    IfStatement,
    SpecStatement,
]


@dataclass(frozen=True)
class Program(Node):
    statements: tuple[Statement, ...]
