"""Durable lifecycle journal: append-only JSON-lines with atomic rotation.

Promotion decisions are only trustworthy if they survive restarts — a
spec that earned enforcement over fifty scans must not fall back to
shadow because the service rolled.  The journal uses the same idiom as
``repro.jobs.journal``: one JSON object per line, flushed per append, a
torn trailing line (crash mid-write) dropped on replay, and automatic
compaction to a single ``snapshot`` line materialized under the writer
lock and published with ``os.replace``.

Event grammar::

    {"event": "snapshot", "records": [...], "scan_seq": N}
    {"event": "register", "record": {...}}            # new inferred spec
    {"event": "revise", "id": ..., "cpl": ..., "at": T}
    {"event": "scan", "seq": N, "ledger": {id: {"violations": v,
                                                "instances": i}}}
    {"event": "transition", "id": ..., "action": ..., "actor": ...,
     "reason": ..., "at": T}

:func:`fold` replays the stream through the *same* ``SpecRecord.apply``
/ ``PromotionPolicy.observe`` code the live manager uses.  ``scan``
events update only the drift ledgers (the action a policy would return
is ignored — the decision that was actually taken is its own
``transition`` event, which is how operator overrides and policy
decisions replay identically); ``transition`` events apply the recorded
action.  Folding the same stream therefore always reproduces the same
enforced set, byte for byte.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Callable, Optional

from ..observability import get_logger
from .model import SpecRecord
from .policy import PromotionPolicy

__all__ = ["LifecycleJournal", "fold"]

_log = get_logger("lifecycle.journal")


class LifecycleJournal:
    """Append-only JSON-lines journal for spec lifecycle events."""

    def __init__(
        self,
        path: str,
        rotate_after: int = 2048,
        fsync: bool = False,
        snapshot_source: Optional[Callable[[], dict]] = None,
    ):
        self.path = path
        self.rotate_after = max(1, rotate_after)
        self.fsync = fsync
        #: called at rotation time (under the writer lock) to obtain the
        #: compacted state: {"records": [...], "scan_seq": N}
        self.snapshot_source = snapshot_source
        self._lock = threading.Lock()
        self._handle = None
        self._appended = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)

    # -- writing -------------------------------------------------------

    def _open(self):
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, event: dict) -> None:
        """Durably record one event, auto-rotating when the log grows."""
        line = json.dumps(event, sort_keys=True, separators=(",", ":"))
        with self._lock:
            handle = self._open()
            handle.write(line + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
            self._appended += 1
            if (
                self._appended >= self.rotate_after
                and self.snapshot_source is not None
            ):
                self._rotate_locked(self.snapshot_source)

    def rotate(self, snapshot) -> None:
        """Compact to one snapshot line (atomic replace).

        Pass a callable to have the snapshot materialized under the
        writer lock — safe against concurrent appenders.
        """
        with self._lock:
            self._rotate_locked(snapshot)

    def _rotate_locked(self, snapshot) -> None:
        if callable(snapshot):
            snapshot = snapshot()
        payload = dict(snapshot)
        payload["event"] = "snapshot"
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        temp_path = os.path.join(
            os.path.dirname(os.path.abspath(self.path)),
            f".{os.path.basename(self.path)}.{os.getpid()}.tmp",
        )
        with open(temp_path, "w", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        os.replace(temp_path, self.path)
        self._appended = 0
        _log.info("lifecycle journal rotated", extra={"path": self.path})

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # -- reading -------------------------------------------------------

    def replay(self) -> list[dict]:
        """The event stream from disk (snapshot first when compacted)."""
        from ..jobs.journal import read_events

        return read_events(self.path)


def fold(events: list[dict], policy: PromotionPolicy) -> tuple[dict, int]:
    """Replay an event stream into ``({spec_id: SpecRecord}, scan_seq)``.

    ``scan`` events feed each spec's ledger through ``policy.observe``
    for the counter math only; state changes come exclusively from the
    journalled ``transition`` events (see module docstring).  Unknown
    event kinds and events for unknown specs are ignored — forward
    compatibility over strictness.
    """
    records: dict[str, SpecRecord] = {}
    scan_seq = 0
    for event in events:
        kind = event.get("event")
        if kind == "snapshot":
            records = {}
            for data in event.get("records", []):
                record = SpecRecord.from_dict(data)
                records[record.id] = record
            scan_seq = int(event.get("scan_seq", 0))
        elif kind == "register":
            record = SpecRecord.from_dict(event.get("record", {}))
            records[record.id] = record
        elif kind == "revise":
            record = records.get(event.get("id"))
            if record is not None:
                record.revise(event.get("cpl", record.cpl), at=event.get("at"))
        elif kind == "scan":
            scan_seq = max(scan_seq, int(event.get("seq", scan_seq)))
            ledger = event.get("ledger", {})
            for spec_id in sorted(ledger):
                record = records.get(spec_id)
                if record is None:
                    continue
                entry = ledger[spec_id]
                policy.observe(
                    record,
                    int(entry.get("violations", 0)),
                    int(entry.get("instances", 0)),
                )
        elif kind == "transition":
            record = records.get(event.get("id"))
            if record is None:
                continue
            try:
                record.apply(
                    event.get("action", ""),
                    actor=event.get("actor", "policy"),
                    reason=event.get("reason", ""),
                    at=event.get("at"),
                )
            except ValueError:
                _log.warning(
                    "skipping unreplayable lifecycle transition",
                    extra={"id": event.get("id"), "action": event.get("action")},
                )
    return records, scan_seq
