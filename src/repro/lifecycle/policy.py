"""Drift-driven promotion policy for inferred specs.

The policy is a pure fold over per-scan evidence: :meth:`observe` feeds
one scan's ``(violations, instances)`` for one spec into its drift
ledger and returns the lifecycle action the evidence now warrants
(``"promote"``, ``"demote"``, ``"retire"``) or ``None``.  It reads the
clock only through ``repro.runtime.clock`` and keeps no hidden state —
given the same record and the same scan sequence it always returns the
same actions, which is what lets the journal replay reproduce the live
enforced set byte-for-byte.

Decision rules:

* per-scan drift = violations / instances; a scan is *dirty* when drift
  exceeds ``demote_drift``, *clean* otherwise.  Scans with zero matching
  instances are no evidence either way and advance nothing.
* a ``SHADOW`` spec with ``promote_after`` consecutive clean scans is
  promoted to ``ENFORCED``.
* an ``ENFORCED`` spec is demoted back to ``SHADOW`` on a dirty scan —
  or retired outright once it has already burned ``retire_after``
  demotions (a repeat offender).
* a ``SHADOW`` spec that keeps misfiring (``retire_after + 1``
  consecutive dirty scans) is retired as hopeless.

Doctest — the full shadow → enforced → shadow → retired arc under a
deterministic injected clock:

>>> from repro.runtime.clock import FakeClock, set_clock
>>> from repro.lifecycle.model import SpecRecord, SpecState
>>> previous = set_clock(FakeClock(start=100.0, tick=1.0))
>>> policy = PromotionPolicy(promote_after=2, demote_drift=0.10, retire_after=1)
>>> rec = SpecRecord.new("range:web.Timeout", "$web.Timeout -> range(1, 60)",
...                      "range", ("web", "Timeout"))
>>> rec.state
'SHADOW'
>>> policy.observe(rec, violations=0, instances=50)     # clean scan 1
>>> policy.observe(rec, violations=1, instances=50)     # 2% < 10%: still clean
'promote'
>>> rec.apply("promote", actor="policy", reason="clean streak"), rec.state
('ENFORCED', 'ENFORCED')
>>> policy.observe(rec, violations=0, instances=0)      # no evidence: no-op
>>> policy.observe(rec, violations=9, instances=50)     # 18% > 10%: drifted
'demote'
>>> rec.apply("demote", actor="policy", reason="drift"), rec.demotions
('SHADOW', 1)
>>> policy.observe(rec, violations=0, instances=50)
>>> policy.observe(rec, violations=0, instances=50)
'promote'
>>> rec.apply("promote", actor="policy", reason="clean streak")
'ENFORCED'
>>> policy.observe(rec, violations=20, instances=50)    # repeat offender
'retire'
>>> rec.apply("retire", actor="policy", reason="repeat offender")
'RETIRED'
>>> [h["action"] for h in rec.history]
['promote', 'demote', 'promote', 'retire']
>>> _ = set_clock(previous)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .model import SpecRecord, SpecState

__all__ = ["PromotionPolicy"]


@dataclass(frozen=True)
class PromotionPolicy:
    """Thresholds governing promotion, demotion, and retirement."""

    #: consecutive clean scans a SHADOW spec needs to be promoted
    promote_after: int = 3
    #: per-scan misfire rate (violations / instances) above which a scan
    #: counts as dirty
    demote_drift: float = 0.05
    #: demotions an enforced spec may accumulate before the next drift
    #: retires it instead of demoting again
    retire_after: int = 2

    def observe(
        self, record: SpecRecord, violations: int, instances: int
    ) -> Optional[str]:
        """Fold one scan's evidence into *record*'s drift ledger.

        Mutates the ledger counters (streaks, totals, ``last_drift``)
        and returns the action the evidence warrants, or ``None``.  The
        caller decides whether to apply it — journal replay feeds the
        same evidence through here for the counter math but applies only
        the journalled transitions, so operator overrides replay too.
        """
        if instances <= 0:
            return None
        drift = violations / instances
        record.scans_observed += 1
        record.violations_total += violations
        record.instances_total += instances
        record.last_drift = drift
        if drift > self.demote_drift:
            record.dirty_streak += 1
            record.clean_streak = 0
        else:
            record.clean_streak += 1
            record.dirty_streak = 0
        if record.state == SpecState.SHADOW:
            if record.clean_streak >= self.promote_after:
                return "promote"
            if record.dirty_streak > self.retire_after:
                return "retire"
        elif record.state == SpecState.ENFORCED and record.dirty_streak:
            if record.demotions >= self.retire_after:
                return "retire"
            return "demote"
        return None

    def to_dict(self) -> dict:
        return {
            "promote_after": self.promote_after,
            "demote_drift": self.demote_drift,
            "retire_after": self.retire_after,
        }
