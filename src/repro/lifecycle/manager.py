"""Spec lifecycle manager: the seam between inference and enforcement.

The manager owns the full candidate → enforced pipeline for one
:class:`~repro.service.ValidationService`:

* :meth:`ingest` diffs a fresh :class:`InferenceResult` against the
  records it already tracks — new constraints register in ``SHADOW``,
  re-inferred constraints whose parameters changed are *revised* in
  place (keeping their transition history and state), and constraints
  the corpus no longer supports simply stop being re-registered;
* :meth:`run_scan` is called by the service once per scan: it triggers
  re-inference when due, evaluates the enforced lane (whose report the
  service merges into the verdict) and the shadow lane (whose report it
  never does), journals the scan's drift ledger, and lets the
  :class:`PromotionPolicy` promote/demote/retire;
* :meth:`promote` / :meth:`demote` / :meth:`retire` are the operator
  overrides behind ``confvalley specs`` and ``POST /specs/<id>/…`` —
  journalled with their actor, so a replayed journal reproduces manual
  decisions exactly like policy ones.

All mutation happens under one re-entrant lock: the service's scan loop
is the main writer, but operator HTTP threads promote/demote
concurrently.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..observability import get_logger, get_metrics
from ..runtime import clock as _clock
from .journal import LifecycleJournal, fold
from .model import SpecRecord, SpecState, constraint_spec_id
from .policy import PromotionPolicy
from .reinfer import ReInferencer
from .shadow import LaneResult, ShadowLane

__all__ = ["SpecLifecycleManager"]

_log = get_logger("lifecycle.manager")


class SpecLifecycleManager:
    """Tracks inferred specs across scans; promotes, demotes, retires."""

    def __init__(
        self,
        policy: Optional[PromotionPolicy] = None,
        journal: Optional[LifecycleJournal] = None,
        journal_path: Optional[str] = None,
        reinferencer: Optional[ReInferencer] = None,
        shadow: Optional[ShadowLane] = None,
        spec_cache=None,
    ):
        self.policy = policy if policy is not None else PromotionPolicy()
        if journal is None and journal_path:
            journal = LifecycleJournal(journal_path)
        self.journal = journal
        if self.journal is not None and self.journal.snapshot_source is None:
            self.journal.snapshot_source = self._snapshot_payload
        self.reinferencer = reinferencer
        self.shadow = shadow if shadow is not None else ShadowLane()
        #: optional repro.parallel.SpecCache shared with the service
        self.spec_cache = spec_cache
        self._lock = threading.RLock()
        self.records: dict[str, SpecRecord] = {}
        self.scan_seq = 0
        self.transitions: dict[str, int] = {}
        self.last_reinference: Optional[dict] = None
        if self.journal is not None:
            self._replay()

    # -- journal -------------------------------------------------------

    def _replay(self) -> None:
        events = self.journal.replay()
        if not events:
            return
        self.records, self.scan_seq = fold(events, self.policy)
        for record in self.records.values():
            for entry in record.history:
                action = entry.get("action", "")
                self.transitions[action] = self.transitions.get(action, 0) + 1
        _log.info(
            "lifecycle journal replayed",
            extra={"specs": len(self.records), "scan_seq": self.scan_seq},
        )

    def _append(self, event: dict) -> None:
        if self.journal is not None:
            self.journal.append(event)

    def _snapshot_payload(self) -> dict:
        # invoked under the journal's writer lock during rotation; the
        # manager lock is re-entrant, so the scan thread rotating mid-append
        # can safely re-enter
        with self._lock:
            return {
                "records": [
                    self.records[spec_id].to_dict()
                    for spec_id in sorted(self.records)
                ],
                "scan_seq": self.scan_seq,
            }

    # -- ingest --------------------------------------------------------

    def ingest(self, result, actor: str = "inference", reason: str = "") -> dict:
        """Diff an InferenceResult into the record set.

        Returns ``{"new": n, "revised": n, "unchanged": n, "missing": n}``.
        Constraints the corpus no longer yields are left alone (their
        drift ledger decides their fate) — inference absence is weak
        evidence, live misfires are strong evidence.
        """
        with self._lock:
            seen = set()
            new = revised = unchanged = 0
            for constraint in result.constraints:
                spec_id = constraint_spec_id(constraint)
                if spec_id in seen:
                    continue  # first rendering wins (deterministic order)
                seen.add(spec_id)
                cpl = constraint.to_cpl()
                record = self.records.get(spec_id)
                if record is None:
                    record = SpecRecord.new(
                        spec_id, cpl, constraint.kind, constraint.class_key
                    )
                    self.records[spec_id] = record
                    self._append({"event": "register", "record": record.to_dict()})
                    new += 1
                elif record.cpl != cpl and record.state != SpecState.RETIRED:
                    record.revise(cpl)
                    self._append({
                        "event": "revise",
                        "id": spec_id,
                        "cpl": cpl,
                        "at": record.updated_at,
                    })
                    revised += 1
                else:
                    unchanged += 1
            missing = len(self.records) - len(seen & set(self.records))
            return {
                "new": new, "revised": revised,
                "unchanged": unchanged, "missing": missing,
            }

    # -- per-scan driving ----------------------------------------------

    def _by_state(self, state: str) -> list:
        return [
            self.records[spec_id]
            for spec_id in sorted(self.records)
            if self.records[spec_id].state == state
        ]

    def run_scan(self, store, observe: bool = True) -> dict:
        """Evaluate both lanes against *store* and advance the lifecycle.

        Returns ``{"enforced_report", "shadow_profile", "summary"}``.
        The caller merges ``enforced_report`` into its verdict and must
        never merge anything from the shadow lane except the analytics
        profile.  ``observe=False`` (degraded scans) still evaluates the
        lanes but freezes the drift ledger — evidence gathered while
        sources are quarantined or shards failed would demote healthy
        specs for the infrastructure's sins.
        """
        with self._lock:
            reinference = None
            if (
                self.reinferencer is not None
                and store is not None
                and self.reinferencer.due(store)
            ):
                try:
                    result, info = self.reinferencer.run(store)
                    info["ingested"] = self.ingest(result, actor="reinference")
                    reinference = self.last_reinference = info
                    metrics = get_metrics()
                    metrics.counter(
                        "confvalley_lifecycle_reinference_runs_total",
                        "Re-inference runs triggered by corpus growth.",
                    ).inc()
                    metrics.counter(
                        "confvalley_lifecycle_reinference_rounds_total",
                        "Adaptive inference rounds executed across all runs.",
                    ).inc(info["rounds"])
                except Exception as exc:  # inference must never sink a scan
                    reinference = {"error": f"{type(exc).__name__}: {exc}"}
                    _log.warning("re-inference failed", extra=reinference)

            enforced = self.shadow.evaluate(
                self._by_state(SpecState.ENFORCED), store,
                spec_cache=self.spec_cache, guarded=False,
            )
            lane = self.shadow.evaluate(
                self._by_state(SpecState.SHADOW), store,
                spec_cache=self.spec_cache, guarded=True,
            )

            transitions = []
            if observe and (lane.per_spec or enforced.per_spec):
                self.scan_seq += 1
                ledger = {}
                for source in (lane, enforced):
                    for spec_id, entry in source.per_spec.items():
                        ledger[spec_id] = {
                            "violations": entry["violations"],
                            "instances": entry["instances"],
                        }
                # observe BEFORE journalling the scan: the append may
                # trigger a rotation snapshot, and that snapshot must
                # already contain this scan's ledger updates (the scan
                # event it replaces is dropped by rotation)
                pending = []
                for spec_id in sorted(ledger):
                    record = self.records.get(spec_id)
                    if record is None:
                        continue
                    action = self.policy.observe(
                        record,
                        ledger[spec_id]["violations"],
                        ledger[spec_id]["instances"],
                    )
                    if action:
                        pending.append((record, action))
                self._append({
                    "event": "scan", "seq": self.scan_seq, "ledger": ledger,
                })
                for record, action in pending:
                    self._transition_locked(
                        record, action, actor="policy",
                        reason=f"drift {record.last_drift:.4f} over "
                               f"{record.scans_observed} scan(s)",
                    )
                    transitions.append({"id": record.id, "action": action})

            self._export_metrics(lane)
            summary = {
                "enabled": True,
                "scan_seq": self.scan_seq,
                "shadow": lane.summary(),
                "enforced": enforced.summary(),
                "transitions": transitions,
                "reinference": reinference,
                "observed": bool(observe),
            }
            shadow_profile = (
                dict(lane.report.spec_profile) if lane.report is not None else {}
            )
            return {
                "enforced_report": enforced.report,
                "shadow_profile": shadow_profile,
                "summary": summary,
            }

    def _export_metrics(self, lane: LaneResult) -> None:
        metrics = get_metrics()
        metrics.counter(
            "confvalley_shadow_scans_total",
            "Shadow-lane evaluations (one per service scan).",
        ).inc()
        if lane.violations:
            metrics.counter(
                "confvalley_shadow_violations_total",
                "Violations raised by shadow specs (never in the verdict).",
            ).inc(lane.violations)
        metrics.histogram(
            "confvalley_shadow_seconds",
            "Shadow-lane wall clock per scan.",
        ).observe(lane.seconds)
        gauge = metrics.gauge(
            "confvalley_lifecycle_specs",
            "Lifecycle-tracked specs by state.",
        )
        counts = self.state_counts()
        for state in SpecState.ALL:
            gauge.set(counts.get(state, 0), state=state.lower())

    # -- transitions ---------------------------------------------------

    def _transition_locked(
        self, record: SpecRecord, action: str, actor: str, reason: str
    ) -> str:
        state = record.apply(action, actor=actor, reason=reason)
        self.transitions[action] = self.transitions.get(action, 0) + 1
        self._append({
            "event": "transition",
            "id": record.id,
            "action": action,
            "actor": actor,
            "reason": reason,
            "at": record.updated_at,
        })
        get_metrics().counter(
            "confvalley_lifecycle_transitions_total",
            "Lifecycle transitions, by action.",
        ).inc(action=action)
        _log.info(
            "lifecycle transition",
            extra={"id": record.id, "action": action, "actor": actor},
        )
        return state

    def _operator_action(self, spec_id: str, action: str, actor: str, reason: str) -> dict:
        with self._lock:
            record = self.records.get(spec_id)
            if record is None:
                raise KeyError(spec_id)
            self._transition_locked(record, action, actor=actor, reason=reason)
            return record.to_dict()

    def promote(self, spec_id: str, actor: str = "operator", reason: str = "") -> dict:
        """Manually promote a shadow spec (ValueError if not in SHADOW)."""
        return self._operator_action(spec_id, "promote", actor, reason)

    def demote(self, spec_id: str, actor: str = "operator", reason: str = "") -> dict:
        """Manually demote an enforced spec back to shadow."""
        return self._operator_action(spec_id, "demote", actor, reason)

    def retire(self, spec_id: str, actor: str = "operator", reason: str = "") -> dict:
        """Manually retire a spec from both lanes."""
        return self._operator_action(spec_id, "retire", actor, reason)

    # -- introspection -------------------------------------------------

    def enforced_cpl(self) -> str:
        """The enforced set as one CPL program ('' when empty)."""
        with self._lock:
            records = self._by_state(SpecState.ENFORCED)
            if not records:
                return ""
            return ShadowLane.compose(records)[0]

    def shadow_cpl(self) -> str:
        """The shadow set as one CPL program ('' when empty)."""
        with self._lock:
            records = self._by_state(SpecState.SHADOW)
            if not records:
                return ""
            return ShadowLane.compose(records)[0]

    def state_counts(self) -> dict:
        with self._lock:
            counts = {state: 0 for state in SpecState.ALL}
            for record in self.records.values():
                counts[record.state] = counts.get(record.state, 0) + 1
            return counts

    def records_payload(self, state: Optional[str] = None) -> list:
        """Records as dicts, sorted by id (optionally filtered by state)."""
        with self._lock:
            return [
                self.records[spec_id].to_dict()
                for spec_id in sorted(self.records)
                if state is None or self.records[spec_id].state == state
            ]

    def history(self, spec_id: str) -> list:
        """One spec's transition history (KeyError when unknown)."""
        with self._lock:
            return [dict(entry) for entry in self.records[spec_id].history]

    def stats(self) -> dict:
        """The lifecycle block surfaced in ``ValidationService.stats()``."""
        with self._lock:
            counts = {state: 0 for state in SpecState.ALL}
            for record in self.records.values():
                counts[record.state] += 1
            return {
                "specs": {state.lower(): n for state, n in counts.items()},
                "scan_seq": self.scan_seq,
                "transitions": dict(sorted(self.transitions.items())),
                "policy": self.policy.to_dict(),
                "reinference": {
                    "runs": self.reinferencer.runs,
                    "rounds": self.reinferencer.rounds_total,
                    "rounds_saved": self.reinferencer.rounds_saved,
                    "last": self.last_reinference,
                    "growth_threshold": self.reinferencer.growth_threshold,
                } if self.reinferencer is not None else None,
                "journal": self.journal.path if self.journal is not None else None,
            }

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()
