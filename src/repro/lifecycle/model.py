"""Lifecycle records: one inferred spec's journey from birth to enforcement.

Every constraint the inference engine mines becomes a :class:`SpecRecord`
with a stable identity (:func:`constraint_spec_id` — *kind* plus the
configuration class, deliberately independent of the constraint's
parameters, so a re-inference that widens a range or grows an enum value
set revises the record instead of minting a new one and the spec keeps
its drift history).  A record carries:

* its current :class:`SpecState` — ``SHADOW`` (candidate: evaluated on
  every scan, violations recorded but excluded from the verdict),
  ``ENFORCED`` (violations count), or ``RETIRED`` (evaluated nowhere);
* the **drift ledger**: cumulative and per-scan misfire counters the
  :class:`~repro.lifecycle.policy.PromotionPolicy` folds its promotion /
  demotion decisions over;
* an append-only transition ``history`` mirrored into the durable
  lifecycle journal.

State changes go through :meth:`SpecRecord.apply` — the *same* code path
the journal replay uses, which is what makes a replayed lifecycle
reproduce the live one exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..runtime import clock as _clock

__all__ = ["SpecState", "SpecRecord", "constraint_spec_id"]


class SpecState:
    """The three lifecycle states an inferred spec can be in."""

    SHADOW = "SHADOW"
    ENFORCED = "ENFORCED"
    RETIRED = "RETIRED"

    ALL = (SHADOW, ENFORCED, RETIRED)


#: action name → (allowed source states, destination state)
_ACTIONS = {
    "promote": ((SpecState.SHADOW,), SpecState.ENFORCED),
    "demote": ((SpecState.ENFORCED,), SpecState.SHADOW),
    "retire": ((SpecState.SHADOW, SpecState.ENFORCED), SpecState.RETIRED),
}


def constraint_spec_id(constraint) -> str:
    """Stable identity of one inferred constraint: ``kind:dotted.class``.

    Equality constraints add the anchor class (``equality:a.b=c.d``) —
    the pair *is* the constraint.  Parameters (range bounds, enum
    members) are deliberately excluded: a re-inference that refines them
    must map onto the same record so the spec keeps its history.
    """
    base = f"{constraint.kind}:{'.'.join(constraint.class_key)}"
    other = getattr(constraint, "other", None)
    if other:
        base += "=" + ".".join(other)
    return base


@dataclass
class SpecRecord:
    """One inferred spec's lifecycle state and drift ledger."""

    id: str
    cpl: str
    kind: str
    class_key: tuple = ()
    state: str = SpecState.SHADOW
    #: --- drift ledger -------------------------------------------------
    #: consecutive observed scans at-or-under the drift threshold
    clean_streak: int = 0
    #: consecutive observed scans over the drift threshold
    dirty_streak: int = 0
    #: scans with at least one matching instance (zero-evidence scans
    #: advance nothing — a spec matching no data can never qualify)
    scans_observed: int = 0
    violations_total: int = 0
    instances_total: int = 0
    #: misfire rate of the most recent observed scan
    last_drift: float = 0.0
    promotions: int = 0
    demotions: int = 0
    #: times a re-inference revised this record's CPL text
    revisions: int = 0
    created_at: float = 0.0
    updated_at: float = 0.0
    #: transition log: {seq, at, action, from, to, actor, reason}
    history: list = field(default_factory=list)

    @classmethod
    def new(cls, spec_id: str, cpl: str, kind: str, class_key=()) -> "SpecRecord":
        now = _clock.now()
        return cls(
            id=spec_id, cpl=cpl, kind=kind, class_key=tuple(class_key),
            created_at=now, updated_at=now,
        )

    # -- transitions ---------------------------------------------------

    def apply(
        self,
        action: str,
        actor: str = "policy",
        reason: str = "",
        at: Optional[float] = None,
    ) -> str:
        """Apply one lifecycle action; returns the new state.

        Raises ``ValueError`` for unknown actions and transitions the
        state machine does not allow (the operator endpoint turns that
        into a 409).  Used by both the live manager and journal replay,
        so the two can never drift apart.
        """
        try:
            allowed, target = _ACTIONS[action]
        except KeyError:
            raise ValueError(f"unknown lifecycle action {action!r}")
        if self.state not in allowed:
            raise ValueError(
                f"cannot {action} spec {self.id!r} from state {self.state}"
            )
        if action == "promote":
            self.promotions += 1
        elif action == "demote":
            self.demotions += 1
        previous = self.state
        self.state = target
        self.clean_streak = 0
        self.dirty_streak = 0
        self.updated_at = at if at is not None else _clock.now()
        self.history.append({
            "seq": len(self.history) + 1,
            "at": self.updated_at,
            "action": action,
            "from": previous,
            "to": target,
            "actor": actor,
            "reason": reason,
        })
        return self.state

    def revise(self, cpl: str, at: Optional[float] = None) -> None:
        """Adopt re-inferred CPL text; the qualification streak restarts
        (the constraint changed, so evidence for the old text no longer
        vouches for the new one) but state and history are kept."""
        self.cpl = cpl
        self.revisions += 1
        self.clean_streak = 0
        self.dirty_streak = 0
        self.updated_at = at if at is not None else _clock.now()

    # -- serialization -------------------------------------------------

    def drift(self) -> float:
        """Lifetime misfire rate: total violations / total instances."""
        if not self.instances_total:
            return 0.0
        return self.violations_total / self.instances_total

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "cpl": self.cpl,
            "kind": self.kind,
            "class_key": list(self.class_key),
            "state": self.state,
            "clean_streak": self.clean_streak,
            "dirty_streak": self.dirty_streak,
            "scans_observed": self.scans_observed,
            "violations_total": self.violations_total,
            "instances_total": self.instances_total,
            "last_drift": self.last_drift,
            "drift": round(self.drift(), 6),
            "promotions": self.promotions,
            "demotions": self.demotions,
            "revisions": self.revisions,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "history": [dict(entry) for entry in self.history],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpecRecord":
        known = set(cls.__dataclass_fields__)
        fields = {k: v for k, v in data.items() if k in known}
        fields["class_key"] = tuple(fields.get("class_key") or ())
        fields["history"] = [dict(e) for e in fields.get("history") or []]
        return cls(**fields)
