"""Inferred-spec lifecycle: shadow lane, drift-driven promotion, re-inference.

ConfValley's inference engine (Tables 5/7 of the paper) mines candidate
constraints from the configuration corpus.  This package keeps those
candidates honest over time instead of trusting a one-shot run:

* :class:`ShadowLane` evaluates candidates alongside every service scan
  in an isolated session — violations feed analytics and each spec's
  drift ledger but never the verdict or ``fingerprint()``;
* :class:`PromotionPolicy` promotes specs whose misfire rate stays under
  threshold for N consecutive scans into the enforced set, demotes
  enforced specs that drift, and retires repeat offenders;
* :class:`LifecycleJournal` makes every transition durable (JSON-lines,
  atomic snapshot compaction) so the enforced set survives restarts;
* :class:`ReInferencer` re-runs inference when the corpus grows, with
  adaptive early-stopping once constraint sets converge across rounds;
* :class:`SpecLifecycleManager` ties it together for the
  ``ValidationService`` and the ``confvalley specs`` / ``/specs``
  operator surfaces.

See docs/LIFECYCLE.md for the state machine, the drift math, and the
fingerprint-parity soundness argument.
"""

from .journal import LifecycleJournal, fold
from .manager import SpecLifecycleManager
from .model import SpecRecord, SpecState, constraint_spec_id
from .policy import PromotionPolicy
from .reinfer import ReInferencer
from .shadow import LaneResult, ShadowLane

__all__ = [
    "LaneResult",
    "LifecycleJournal",
    "PromotionPolicy",
    "ReInferencer",
    "ShadowLane",
    "SpecLifecycleManager",
    "SpecRecord",
    "SpecState",
    "constraint_spec_id",
    "fold",
]
