"""Continuous re-inference with adaptive early-stopping.

One-shot inference decays as the corpus evolves: new instances widen
value ranges, grow enum domains, and retire equalities.  The
:class:`ReInferencer` watches corpus growth and re-runs the
:class:`~repro.inference.engine.InferenceEngine` once the instance count
has grown by ``growth_threshold`` (a fraction) since the last run.

A full-corpus inference pass is the expensive part, so the adaptive
mode borrows the Monte-Carlo ``--mode adaptive`` convergence idiom:
infer over growing prefixes of the corpus (25%, 50%, 75%, 100% of the
instances, in insertion order — deterministic, no sampling) and stop
early as soon as two consecutive rounds produce the *same* constraint
set.  On a corpus whose distributions have stabilized, the half-corpus
round already converges and the remaining rounds are skipped; on a
shifting corpus every round disagrees and the full pass runs.  Two
consecutive rounds agreeing on the full rendered constraint set (ids
*and* parameters) is the convergence signal; like any early-stopping
heuristic it trades a vanishing tail of refinement for most of the
inference cost.  Specs that do drift because of it are exactly what the
shadow lane's drift ledger then catches.
"""

from __future__ import annotations

import math
from typing import Optional

from ..inference.engine import InferenceEngine, InferenceResult
from ..repository.store import ConfigStore
from .model import constraint_spec_id

__all__ = ["ReInferencer"]


def _prefix_store(store: ConfigStore, count: int) -> ConfigStore:
    """A substore of the first *count* instances, in insertion order."""
    prefix = ConfigStore()
    for index, instance in enumerate(store.instances()):
        if index >= count:
            break
        prefix.add(instance)
    return prefix


def _signature(result: InferenceResult) -> frozenset:
    """Order-insensitive identity of one round's constraint set."""
    return frozenset(
        (constraint_spec_id(c), c.to_cpl()) for c in result.constraints
    )


class ReInferencer:
    """Growth-triggered, convergence-stopped inference re-runs."""

    def __init__(
        self,
        engine: Optional[InferenceEngine] = None,
        growth_threshold: float = 0.25,
        mode: str = "adaptive",
        schedule: tuple = (0.25, 0.5, 0.75, 1.0),
    ):
        self.engine = engine if engine is not None else InferenceEngine()
        self.growth_threshold = max(0.0, growth_threshold)
        #: "adaptive" = prefix rounds with early-stopping; "full" = one
        #: whole-corpus pass per trigger
        self.mode = mode
        self.schedule = tuple(sorted(set(schedule) | {1.0}))
        #: corpus size at the last completed run (0 = never ran)
        self.last_instance_count = 0
        self.runs = 0
        self.rounds_total = 0
        self.rounds_saved = 0

    def due(self, store: ConfigStore) -> bool:
        """True when corpus growth since the last run crosses the threshold."""
        count = store.instance_count
        if count <= 0:
            return False
        if self.last_instance_count == 0:
            return True  # first corpus sighting: bootstrap inference
        growth = (count - self.last_instance_count) / self.last_instance_count
        return growth >= self.growth_threshold

    def run(self, store: ConfigStore) -> tuple[InferenceResult, dict]:
        """Re-infer over *store*; returns ``(result, info)``.

        ``info`` records the mode, rounds executed, whether the adaptive
        schedule converged early, and the growth that triggered the run.
        """
        count = store.instance_count
        previous = self.last_instance_count
        growth = (count - previous) / previous if previous else None
        rounds = 0
        converged = False
        result = None
        if self.mode == "adaptive" and count > 1:
            last_signature = None
            for fraction in self.schedule:
                size = min(count, max(1, math.ceil(fraction * count)))
                substore = store if size >= count else _prefix_store(store, size)
                result = self.engine.infer(substore)
                rounds += 1
                signature = _signature(result)
                if signature == last_signature:
                    converged = True
                    if size < count:
                        # distributions stabilized before the full corpus:
                        # the remaining rounds would reproduce this exact
                        # constraint set, so skip them
                        self.rounds_saved += len(self.schedule) - rounds
                    break
                last_signature = signature
        else:
            result = self.engine.infer(store)
            rounds = 1
        self.last_instance_count = count
        self.runs += 1
        self.rounds_total += rounds
        info = {
            "mode": self.mode,
            "rounds": rounds,
            "converged": converged,
            "instances": count,
            "growth": round(growth, 6) if growth is not None else None,
        }
        return result, info
