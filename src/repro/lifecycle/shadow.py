"""Shadow lane: evaluate candidate specs without touching the verdict.

The lane composes one CPL program from a set of :class:`SpecRecord`\\ s
(one line per record, sorted by spec id so line numbers are stable and
deterministic) and runs it in its **own** :class:`ValidationSession`
against the same store the enforced scan just used.  Nothing from the
lane report is merged into the main :class:`ValidationReport` — shadow
violations live only in the lifecycle ledger and analytics — which is
the whole soundness argument for fingerprint parity (docs/LIFECYCLE.md).

The lane carries its own :class:`SpecCircuitBreaker`: a shadow spec that
*errors* repeatedly (as opposed to merely misfiring) is quarantined
inside the lane after ``threshold`` consecutive errors.  A broken
candidate can therefore never slow down or fail the real scan, and its
zero-instance quarantined scans produce no drift evidence (the policy
ignores them), so it simply stops qualifying for promotion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.policy import ValidationPolicy
from ..core.session import ValidationSession
from ..resilience.breaker import SpecCircuitBreaker
from ..runtime import clock as _clock

__all__ = ["ShadowLane", "LaneResult"]

#: header prepended to every composed lane program (mirrors to_cpl())
_HEADER = "// shadow lane (composed)"


@dataclass
class LaneResult:
    """Outcome of evaluating one lane (shadow or enforced) for one scan."""

    #: the lane's ValidationReport (None when the lane had nothing to run
    #: or failed wholesale — see ``error``)
    report: object = None
    #: spec id → {"violations": v, "instances": i, "seconds": s}
    per_spec: dict = field(default_factory=dict)
    specs: int = 0
    violations: int = 0
    instances: int = 0
    seconds: float = 0.0
    #: non-empty when the whole lane failed (composition/session error)
    error: str = ""

    def summary(self) -> dict:
        return {
            "specs": self.specs,
            "violations": self.violations,
            "instances": self.instances,
            "seconds": round(self.seconds, 6),
            "error": self.error,
        }


class ShadowLane:
    """Evaluates lifecycle spec sets in an isolated, guarded session."""

    def __init__(self, breaker_threshold: int = 3, probe_interval: int = 2):
        self.breaker = SpecCircuitBreaker(
            threshold=breaker_threshold, probe_interval=probe_interval
        )

    @staticmethod
    def compose(records) -> tuple[str, dict]:
        """Build one CPL program from records, sorted by spec id.

        Returns ``(text, line_map)`` where ``line_map`` maps the CPL line
        number each record's statement landed on back to its spec id —
        how per-spec stats are recovered from the lane report's profile.
        """
        ordered = sorted(records, key=lambda record: record.id)
        lines = [_HEADER]
        line_map: dict[int, str] = {}
        for offset, record in enumerate(ordered):
            line_map[offset + 2] = record.id  # header occupies line 1
            lines.append(record.cpl)
        return "\n".join(lines) + "\n", line_map

    def evaluate(self, records, store, spec_cache=None, guarded: bool = True) -> LaneResult:
        """Run *records* against *store*; never raises.

        ``guarded=True`` (the shadow lane) runs under this lane's breaker
        so erroring candidates are isolated statement-by-statement;
        ``guarded=False`` (the enforced lane) runs plain, because
        enforced specs already passed shadow qualification and their
        errors should surface like any hand-written spec's.
        """
        records = list(records)
        if not records:
            return LaneResult()
        text, line_map = self.compose(records)
        result = LaneResult(specs=len(records))
        started = _clock.now()
        try:
            guard = self.breaker.begin_scan() if guarded else None
            session = ValidationSession(
                store=store,
                policy=ValidationPolicy(),
                spec_cache=spec_cache,
                analytics=True,
                # keep statements on their composed lines: the Figure-4
                # rewrites may merge/reorder statements, which would break
                # the line → spec-id attribution below
                optimize=False,
                spec_guard=guard,
            )
            report = session.validate(text)
            if guarded:
                report.health.finalize()
                self.breaker.observe(report)
        except Exception as exc:  # a lane must never sink the scan
            result.error = f"{type(exc).__name__}: {exc}"
            result.seconds = _clock.now() - started
            return result
        result.report = report
        result.seconds = _clock.now() - started
        per_spec = {
            spec_id: {"violations": 0, "instances": 0, "seconds": 0.0}
            for spec_id in line_map.values()
        }
        for (line, _text), row in report.spec_profile.items():
            spec_id = line_map.get(line)
            if spec_id is None:
                continue
            entry = per_spec[spec_id]
            entry["violations"] += row.get("violations", 0)
            entry["instances"] += row.get("instances", 0)
            entry["seconds"] += row.get("seconds", 0.0)
        result.per_spec = per_spec
        result.violations = len(report.violations)
        result.instances = report.instances_checked
        return result
