"""Validation reports and auto-generated error messages (paper §4.4, §6.3).

The paper generates error messages automatically "based on the checks and
configuration key values" (a range predicate failing produces "value for the
key is out of the range"), allows overriding per check, and groups failed
validations by constraint so practitioners can spot bad inferred
specifications ("if many configuration instances fail a constraint, it is
likely that constraint is problematic").
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..observability.analytics import merge_spec_profiles, profile_rows

__all__ = ["Violation", "ValidationReport", "Severity", "HealthBlock"]


class Severity:
    """Violation severity levels assigned by the validation policy."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"
    CRITICAL = "critical"

    ORDER = {INFO: 0, WARNING: 1, ERROR: 2, CRITICAL: 3}


@dataclass(frozen=True)
class Violation:
    """One failed check: which instance broke which constraint and why."""

    spec_text: str
    spec_line: int
    constraint: str          # primitive name or constraint label
    key: str                 # rendered instance key ('' for domain-level)
    value: str
    message: str
    severity: str = Severity.ERROR
    source: str = ""         # configuration source the instance came from

    def render(self) -> str:
        location = f" [{self.source}]" if self.source else ""
        return (
            f"{self.severity.upper()}: {self.message}{location}\n"
            f"    spec (line {self.spec_line}): {self.spec_text}"
        )

    def to_dict(self) -> dict:
        return {
            "severity": self.severity,
            "constraint": self.constraint,
            "key": self.key,
            "value": self.value,
            "message": self.message,
            "source": self.source,
            "spec": self.spec_text,
            "spec_line": self.spec_line,
        }


@dataclass
class HealthBlock:
    """Degraded-operation record attached to every report (``repro.resilience``).

    Describes *how healthy the run itself was* — quarantined sources, spec
    circuit breakers, shard timeouts — as opposed to what the validation
    found.  Like the perf counters it is excluded from
    :meth:`ValidationReport.fingerprint`, so two runs that validated the
    same data identically compare equal even when one of them limped.

    ``status`` is one of ``OK`` (nothing went wrong), ``DEGRADED`` (some
    inputs or statements were skipped/retried but the scan completed), or
    ``FAILED`` (the scan could not produce a meaningful report — e.g. the
    spec file itself is unreadable, or every source is quarantined).
    """

    OK = "OK"
    DEGRADED = "DEGRADED"
    FAILED = "FAILED"

    status: str = "OK"
    #: sources currently excluded from scans: {path, format, reason, failures, …}
    quarantined_sources: list = field(default_factory=list)
    #: spec statements skipped this run by a tripped circuit breaker
    quarantined_specs: list = field(default_factory=list)
    #: source load failures observed *this* run (before quarantine decisions)
    source_failures: list = field(default_factory=list)
    #: shard timeouts/crashes and how the fallback ladder recovered them
    shard_failures: list = field(default_factory=list)
    #: statements that raised an internal error this run (breaker input)
    spec_errors: list = field(default_factory=list)
    #: total retry attempts spent (source reloads + shard re-runs)
    retries: int = 0
    #: set when the scan could not produce a meaningful report
    fatal: str = ""

    @property
    def degraded(self) -> bool:
        return bool(
            self.quarantined_sources
            or self.quarantined_specs
            or self.source_failures
            or self.shard_failures
            or self.spec_errors
            or self.retries
        )

    def finalize(self) -> "HealthBlock":
        """Derive ``status`` from the recorded evidence (idempotent)."""
        if self.fatal:
            self.status = self.FAILED
        elif self.degraded:
            self.status = self.DEGRADED
        else:
            self.status = self.OK
        return self

    def merge(self, other: "HealthBlock") -> None:
        self.quarantined_sources.extend(other.quarantined_sources)
        self.quarantined_specs.extend(other.quarantined_specs)
        self.source_failures.extend(other.source_failures)
        self.shard_failures.extend(other.shard_failures)
        self.spec_errors.extend(other.spec_errors)
        self.retries += other.retries
        if not self.fatal:
            self.fatal = other.fatal
        self.finalize()

    def summary(self) -> str:
        parts = [f"health: {self.status}"]
        if self.quarantined_sources:
            parts.append(f"{len(self.quarantined_sources)} quarantined source(s)")
        if self.quarantined_specs:
            parts.append(f"{len(self.quarantined_specs)} circuit-broken spec(s)")
        if self.shard_failures:
            parts.append(f"{len(self.shard_failures)} shard failure(s)")
        if self.spec_errors:
            parts.append(f"{len(self.spec_errors)} spec error(s)")
        if self.retries:
            parts.append(f"{self.retries} retry(ies)")
        if self.fatal:
            parts.append(f"fatal: {self.fatal}")
        return "; ".join(parts)

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "quarantined_sources": list(self.quarantined_sources),
            "quarantined_specs": list(self.quarantined_specs),
            "source_failures": list(self.source_failures),
            "shard_failures": list(self.shard_failures),
            "spec_errors": list(self.spec_errors),
            "retries": self.retries,
            "fatal": self.fatal,
        }


@dataclass
class ValidationReport:
    """Outcome of validating one specification program against a store."""

    violations: list[Violation] = field(default_factory=list)
    #: output of `get` commands (one rendered "key = value" line each)
    notes: list[str] = field(default_factory=list)
    specs_evaluated: int = 0
    specs_failed: int = 0
    specs_skipped: int = 0
    #: violations acknowledged away by policy waivers
    suppressed: int = 0
    instances_checked: int = 0
    #: per-spec wall clock, filled when the evaluator profiles
    #: ((line, spec text) → cumulative seconds across bindings/compartments)
    spec_timings: dict = field(default_factory=dict)
    #: per-spec attribution, filled when the evaluator runs with analytics:
    #: (line, spec text) → {evals, instances, violations, seconds} — the
    #: input to the hot-spec table, dead-spec detection and drift reports
    #: (repro.observability.analytics); excluded from :meth:`fingerprint`
    spec_profile: dict = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    stopped_early: bool = False
    #: --- performance counters (repro.parallel) -------------------------
    #: excluded from :meth:`fingerprint` — they describe *how* the run was
    #: executed, not *what* it found
    #: shards evaluated (0 = plain serial evaluation, no sharding layer)
    shards_run: int = 0
    #: executor that ran the shards ('' when the sharding layer wasn't used)
    executor: str = ""
    #: compiled-spec cache hits/misses for the compile(s) behind this report
    cache_hits: int = 0
    cache_misses: int = 0
    #: per-shard wall clock: (shard label, seconds)
    shard_timings: list = field(default_factory=list)
    #: --- degraded-operation record (repro.resilience) -------------------
    #: also excluded from :meth:`fingerprint` — it describes the run's own
    #: health (quarantines, retries, breaker trips), not what it found
    health: HealthBlock = field(default_factory=HealthBlock)

    @property
    def passed(self) -> bool:
        return not self.violations

    def add(self, violation: Violation) -> None:
        self.violations.append(violation)

    def extend(self, violations: Iterable[Violation]) -> None:
        self.violations.extend(violations)

    def merge(self, other: "ValidationReport") -> None:
        self.violations.extend(other.violations)
        self.notes.extend(other.notes)
        self.specs_evaluated += other.specs_evaluated
        self.specs_failed += other.specs_failed
        self.specs_skipped += other.specs_skipped
        self.suppressed += other.suppressed
        self.instances_checked += other.instances_checked
        for key, seconds in other.spec_timings.items():
            self.spec_timings[key] = self.spec_timings.get(key, 0.0) + seconds
        merge_spec_profiles(self.spec_profile, other.spec_profile)
        self.elapsed_seconds = max(self.elapsed_seconds, other.elapsed_seconds)
        self.stopped_early = self.stopped_early or other.stopped_early
        self.shards_run += other.shards_run
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.shard_timings.extend(other.shard_timings)
        if not self.executor:
            self.executor = other.executor
        self.health.merge(other.health)

    def by_constraint(self) -> dict[str, list[Violation]]:
        """Group violations by constraint — the paper's report view for
        spotting inaccurate inferred specifications (§6.3)."""
        groups: dict[str, list[Violation]] = defaultdict(list)
        for violation in self.violations:
            groups[violation.constraint].append(violation)
        return dict(groups)

    def by_spec(self) -> dict[tuple[int, str], list[Violation]]:
        groups: dict[tuple[int, str], list[Violation]] = defaultdict(list)
        for violation in self.violations:
            groups[(violation.spec_line, violation.spec_text)].append(violation)
        return dict(groups)

    def slowest_specs(self, count: int = 5) -> list[tuple[float, int, str]]:
        """The costliest specifications, as (seconds, line, text) triples.

        Populated when the evaluator runs with profiling; surfaces the
        skew the paper observes in Table 8 ("some specifications are more
        complex than others") so operators can partition or rewrite them.
        """
        ranked = sorted(
            ((seconds, line, text) for (line, text), seconds in self.spec_timings.items()),
            reverse=True,
        )
        return ranked[:count]

    def suspicious_constraints(self, threshold: int = 10) -> list[str]:
        """Constraints failed by many instances — likely bad specs, since
        "it is rare that configuration data in an enterprise environment has
        a large error percentage" (paper §6.3)."""
        return sorted(
            name
            for name, group in self.by_constraint().items()
            if len(group) >= threshold
        )

    def render(self, limit: Optional[int] = None) -> str:
        lines = [
            f"validated {self.specs_evaluated} specification(s), "
            f"{self.instances_checked} instance check(s) "
            f"in {self.elapsed_seconds:.3f}s",
        ]
        if self.health.status != HealthBlock.OK:
            lines.append(self.health.summary())
        lines.extend(self.notes)
        if self.passed:
            lines.append("PASS: no violations")
            return "\n".join(lines)
        shown = self.violations if limit is None else self.violations[:limit]
        lines.append(f"FAIL: {len(self.violations)} violation(s)")
        lines.extend(violation.render() for violation in shown)
        if limit is not None and len(self.violations) > limit:
            lines.append(f"… and {len(self.violations) - limit} more")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-shaped summary (used by ``confvalley validate --format json``)."""
        return {
            "passed": self.passed,
            "specs_evaluated": self.specs_evaluated,
            "specs_failed": self.specs_failed,
            "specs_skipped": self.specs_skipped,
            "suppressed": self.suppressed,
            "instances_checked": self.instances_checked,
            "elapsed_seconds": self.elapsed_seconds,
            "stopped_early": self.stopped_early,
            "notes": list(self.notes),
            "violations": [violation.to_dict() for violation in self.violations],
            "perf": {
                "executor": self.executor,
                "shards_run": self.shards_run,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "shard_timings": [list(pair) for pair in self.shard_timings],
            },
            "analytics": profile_rows(self.spec_profile),
            "health": self.health.to_dict(),
        }

    def fingerprint(self) -> str:
        """Canonical serialized form for determinism comparisons.

        Excludes wall-clock and execution-strategy fields (elapsed time,
        per-shard timings, executor name, cache counters) *and* the health
        block: two runs that found the same things have the same
        fingerprint even when one ran serially and the other on a process
        pool, or when one of them had to retry a shard.  The parallel
        engine's determinism guarantee is stated (and tested) in these
        terms.
        """
        import json

        data = self.to_dict()
        del data["perf"]
        del data["elapsed_seconds"]
        del data["health"]
        del data["analytics"]
        return json.dumps(data, sort_keys=True)

    def to_json(self, indent: int = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent)
