"""Validation reports and auto-generated error messages (paper §4.4, §6.3).

The paper generates error messages automatically "based on the checks and
configuration key values" (a range predicate failing produces "value for the
key is out of the range"), allows overriding per check, and groups failed
validations by constraint so practitioners can spot bad inferred
specifications ("if many configuration instances fail a constraint, it is
likely that constraint is problematic").
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["Violation", "ValidationReport", "Severity"]


class Severity:
    """Violation severity levels assigned by the validation policy."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"
    CRITICAL = "critical"

    ORDER = {INFO: 0, WARNING: 1, ERROR: 2, CRITICAL: 3}


@dataclass(frozen=True)
class Violation:
    """One failed check: which instance broke which constraint and why."""

    spec_text: str
    spec_line: int
    constraint: str          # primitive name or constraint label
    key: str                 # rendered instance key ('' for domain-level)
    value: str
    message: str
    severity: str = Severity.ERROR
    source: str = ""         # configuration source the instance came from

    def render(self) -> str:
        location = f" [{self.source}]" if self.source else ""
        return (
            f"{self.severity.upper()}: {self.message}{location}\n"
            f"    spec (line {self.spec_line}): {self.spec_text}"
        )

    def to_dict(self) -> dict:
        return {
            "severity": self.severity,
            "constraint": self.constraint,
            "key": self.key,
            "value": self.value,
            "message": self.message,
            "source": self.source,
            "spec": self.spec_text,
            "spec_line": self.spec_line,
        }


@dataclass
class ValidationReport:
    """Outcome of validating one specification program against a store."""

    violations: list[Violation] = field(default_factory=list)
    #: output of `get` commands (one rendered "key = value" line each)
    notes: list[str] = field(default_factory=list)
    specs_evaluated: int = 0
    specs_failed: int = 0
    specs_skipped: int = 0
    #: violations acknowledged away by policy waivers
    suppressed: int = 0
    instances_checked: int = 0
    #: per-spec wall clock, filled when the evaluator profiles
    #: ((line, spec text) → cumulative seconds across bindings/compartments)
    spec_timings: dict = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    stopped_early: bool = False
    #: --- performance counters (repro.parallel) -------------------------
    #: excluded from :meth:`fingerprint` — they describe *how* the run was
    #: executed, not *what* it found
    #: shards evaluated (0 = plain serial evaluation, no sharding layer)
    shards_run: int = 0
    #: executor that ran the shards ('' when the sharding layer wasn't used)
    executor: str = ""
    #: compiled-spec cache hits/misses for the compile(s) behind this report
    cache_hits: int = 0
    cache_misses: int = 0
    #: per-shard wall clock: (shard label, seconds)
    shard_timings: list = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def add(self, violation: Violation) -> None:
        self.violations.append(violation)

    def extend(self, violations: Iterable[Violation]) -> None:
        self.violations.extend(violations)

    def merge(self, other: "ValidationReport") -> None:
        self.violations.extend(other.violations)
        self.notes.extend(other.notes)
        self.specs_evaluated += other.specs_evaluated
        self.specs_failed += other.specs_failed
        self.specs_skipped += other.specs_skipped
        self.suppressed += other.suppressed
        self.instances_checked += other.instances_checked
        self.elapsed_seconds = max(self.elapsed_seconds, other.elapsed_seconds)
        self.stopped_early = self.stopped_early or other.stopped_early
        self.shards_run += other.shards_run
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.shard_timings.extend(other.shard_timings)
        if not self.executor:
            self.executor = other.executor

    def by_constraint(self) -> dict[str, list[Violation]]:
        """Group violations by constraint — the paper's report view for
        spotting inaccurate inferred specifications (§6.3)."""
        groups: dict[str, list[Violation]] = defaultdict(list)
        for violation in self.violations:
            groups[violation.constraint].append(violation)
        return dict(groups)

    def by_spec(self) -> dict[tuple[int, str], list[Violation]]:
        groups: dict[tuple[int, str], list[Violation]] = defaultdict(list)
        for violation in self.violations:
            groups[(violation.spec_line, violation.spec_text)].append(violation)
        return dict(groups)

    def slowest_specs(self, count: int = 5) -> list[tuple[float, int, str]]:
        """The costliest specifications, as (seconds, line, text) triples.

        Populated when the evaluator runs with profiling; surfaces the
        skew the paper observes in Table 8 ("some specifications are more
        complex than others") so operators can partition or rewrite them.
        """
        ranked = sorted(
            ((seconds, line, text) for (line, text), seconds in self.spec_timings.items()),
            reverse=True,
        )
        return ranked[:count]

    def suspicious_constraints(self, threshold: int = 10) -> list[str]:
        """Constraints failed by many instances — likely bad specs, since
        "it is rare that configuration data in an enterprise environment has
        a large error percentage" (paper §6.3)."""
        return sorted(
            name
            for name, group in self.by_constraint().items()
            if len(group) >= threshold
        )

    def render(self, limit: Optional[int] = None) -> str:
        lines = [
            f"validated {self.specs_evaluated} specification(s), "
            f"{self.instances_checked} instance check(s) "
            f"in {self.elapsed_seconds:.3f}s",
        ]
        lines.extend(self.notes)
        if self.passed:
            lines.append("PASS: no violations")
            return "\n".join(lines)
        shown = self.violations if limit is None else self.violations[:limit]
        lines.append(f"FAIL: {len(self.violations)} violation(s)")
        lines.extend(violation.render() for violation in shown)
        if limit is not None and len(self.violations) > limit:
            lines.append(f"… and {len(self.violations) - limit} more")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-shaped summary (used by ``confvalley validate --format json``)."""
        return {
            "passed": self.passed,
            "specs_evaluated": self.specs_evaluated,
            "specs_failed": self.specs_failed,
            "specs_skipped": self.specs_skipped,
            "suppressed": self.suppressed,
            "instances_checked": self.instances_checked,
            "elapsed_seconds": self.elapsed_seconds,
            "stopped_early": self.stopped_early,
            "notes": list(self.notes),
            "violations": [violation.to_dict() for violation in self.violations],
            "perf": {
                "executor": self.executor,
                "shards_run": self.shards_run,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "shard_timings": [list(pair) for pair in self.shard_timings],
            },
        }

    def fingerprint(self) -> str:
        """Canonical serialized form for determinism comparisons.

        Excludes wall-clock and execution-strategy fields (elapsed time,
        per-shard timings, executor name, cache counters): two runs that
        found the same things have the same fingerprint even when one ran
        serially and the other on a process pool.  The parallel engine's
        determinism guarantee is stated (and tested) in these terms.
        """
        import json

        data = self.to_dict()
        del data["perf"]
        del data["elapsed_seconds"]
        return json.dumps(data, sort_keys=True)

    def to_json(self, indent: int = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent)
