"""Specification coverage: which configuration classes are validated at all.

The paper frames validation as confidence ("validating configurations
against various specifications shrinks the invalid value space and
increases the correctness confidence", §2.2).  The dual question operators
ask is *where confidence is missing*: which configuration classes no
specification can ever reach.  This module answers it by matching every
class in a store against the notation patterns of a spec corpus — the same
dependency extraction incremental validation uses — and reporting covered
and uncovered classes, plus a per-class spec count (heavily-checked vs
barely-checked parameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cpl import ast, parse
from ..repository.keys import InstanceKey, InstanceSegment
from ..repository.store import ConfigStore
from .incremental import _statement_patterns

__all__ = ["CoverageReport", "analyze_coverage"]


@dataclass
class CoverageReport:
    """Coverage of one spec corpus over one configuration store."""

    covered: dict[tuple[str, ...], int] = field(default_factory=dict)
    uncovered: list[tuple[str, ...]] = field(default_factory=list)
    #: specs whose notations match no instance at all — typically a stale
    #: or misspelled scope path; they validate vacuously (dead weight)
    dead_specs: list[str] = field(default_factory=list)
    spec_count: int = 0

    @property
    def total_classes(self) -> int:
        return len(self.covered) + len(self.uncovered)

    @property
    def coverage_ratio(self) -> float:
        if not self.total_classes:
            return 1.0
        return len(self.covered) / self.total_classes

    def barely_checked(self, threshold: int = 1) -> list[tuple[str, ...]]:
        """Classes matched by at most ``threshold`` specifications."""
        return sorted(
            class_key
            for class_key, count in self.covered.items()
            if count <= threshold
        )

    def render(self, limit: int = 20) -> str:
        lines = [
            f"{len(self.covered)}/{self.total_classes} configuration classes "
            f"covered ({self.coverage_ratio:.0%}) by {self.spec_count} spec(s)"
        ]
        if self.uncovered:
            lines.append(f"uncovered ({len(self.uncovered)}):")
            for class_key in sorted(self.uncovered)[:limit]:
                lines.append("  " + ".".join(class_key))
            if len(self.uncovered) > limit:
                lines.append(f"  … and {len(self.uncovered) - limit} more")
        if self.dead_specs:
            lines.append(f"dead specs matching no instance ({len(self.dead_specs)}):")
            for text in self.dead_specs[:limit]:
                lines.append("  " + text)
        return "\n".join(lines)


def analyze_coverage(spec_text: str, store: ConfigStore) -> CoverageReport:
    """Match every configuration class against every spec's notations.

    A class counts as covered by a spec when any of the spec's notation
    patterns (variables widened to wildcards) matches a representative
    instance key of the class.
    """
    program = parse(spec_text)
    spec_patterns = []
    spec_texts = []
    macros: dict[str, ast.PredExpr] = {}
    for statement in program.statements:
        if isinstance(statement, ast.LetCmd):
            macros[statement.name] = statement.predicate
            continue
        patterns = _statement_patterns(statement, macros)
        if patterns:
            spec_patterns.append(patterns)
            spec_texts.append(
                getattr(statement, "text", "") or type(statement).__name__
            )

    report = CoverageReport(spec_count=len(spec_patterns))
    matched_specs = [False] * len(spec_patterns)
    for config_class in store.classes():
        # sample several instance keys: an instance-qualified spec
        # (Cluster::C1.K) covers the class even if the first instance
        # belongs to another qualifier
        sample = [instance.key for instance in config_class.instances[:50]]
        hits = 0
        for index, patterns in enumerate(spec_patterns):
            if any(pattern.matches(key) for pattern in patterns for key in sample):
                hits += 1
                matched_specs[index] = True
        if hits:
            report.covered[config_class.class_key] = hits
        else:
            report.uncovered.append(config_class.class_key)
    report.dead_specs = [
        text
        for text, matched in zip(spec_texts, matched_specs)
        if not matched
    ]
    return report
