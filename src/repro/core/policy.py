"""Validation policies (paper §4.3).

"We currently allow policies to describe violation severity, violation
handling (e.g., stop on first violation, continue on violations), failed
actions and validation priority (i.e., assigning priorities for
configuration parameters so that specifications involving critical
parameters are evaluated first)."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Callable, Optional

from ..errors import PolicyError
from .report import Severity, Violation

__all__ = ["ValidationPolicy"]


@dataclass
class ValidationPolicy:
    """Controls evaluation order, severity labelling and failure handling."""

    #: stop the whole run at the first violation
    stop_on_first_violation: bool = False
    #: glob patterns over parameter names → priority (higher runs first)
    priorities: dict[str, int] = field(default_factory=dict)
    #: glob patterns over parameter names → severity for their violations
    severities: dict[str, str] = field(default_factory=dict)
    #: default severity when nothing matches
    default_severity: str = Severity.ERROR
    #: optional callback invoked per violation ("failed actions")
    on_violation: Optional[Callable[[Violation], None]] = None
    #: waivers: (key glob, constraint glob) pairs whose violations are
    #: acknowledged and filtered from reports (counted as suppressed)
    suppressions: list[tuple[str, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        for severity in list(self.severities.values()) + [self.default_severity]:
            if severity not in Severity.ORDER:
                raise PolicyError(f"unknown severity {severity!r}")

    def priority_of(self, spec_text: str) -> int:
        """Priority of a specification: the max priority of any parameter
        glob mentioned in it (critical parameters validate first)."""
        best = 0
        for pattern, priority in self.priorities.items():
            if pattern in spec_text or fnmatch(spec_text, f"*{pattern}*"):
                best = max(best, priority)
        return best

    def severity_of(self, key: str) -> str:
        for pattern, severity in self.severities.items():
            if fnmatch(key, f"*{pattern}*"):
                return severity
        return self.default_severity

    def is_suppressed(self, violation: Violation) -> bool:
        """True when a waiver covers this violation."""
        for key_glob, constraint_glob in self.suppressions:
            if fnmatch(violation.key, key_glob) and fnmatch(
                violation.constraint, constraint_glob
            ):
                return True
        return False

    def suppress(self, key_glob: str, constraint_glob: str = "*") -> None:
        """Add a waiver (operator acknowledged this violation class)."""
        self.suppressions.append((key_glob, constraint_glob))

    def load_waivers(self, path: str) -> int:
        """Load waivers from a file: one ``key_glob [constraint_glob]`` per
        line, ``#`` comments; returns the number loaded."""
        count = 0
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, raw in enumerate(handle, start=1):
                line = raw.split("#", 1)[0].strip()
                if not line:
                    continue
                parts = line.split()
                if len(parts) > 2:
                    raise PolicyError(
                        f"{path}:{lineno}: expected 'key_glob [constraint_glob]'"
                    )
                self.suppress(parts[0], parts[1] if len(parts) == 2 else "*")
                count += 1
        return count

    def order_statements(self, statements: list) -> list:
        """Stable-sort spec statements by descending priority."""
        if not self.priorities:
            return statements
        return sorted(
            statements,
            key=lambda s: -self.priority_of(getattr(s, "text", "") or ""),
        )
