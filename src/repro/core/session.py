"""Validation sessions: the user-facing entry point (paper §4.1, §5.1).

A :class:`ValidationSession` owns a configuration store, a runtime provider
and a policy; it processes CPL *commands* (``load``, ``include``, ``let``)
and hands the remaining statements to the :class:`~repro.core.evaluator.Evaluator`.

Three usage scenarios from paper §5.1 map onto this API:

* **batch mode** — :meth:`validate_file` / :meth:`validate` over a spec file,
  re-run whenever specifications or data change;
* **interactive console** — :meth:`validate_line` for one-liners and
  :meth:`get` for domain inspection (used by :mod:`repro.console`);
* **partitioned validation** — :meth:`validate_partitioned` splits the
  specification list into N pieces and times each, reproducing Table 8's
  P10 experiment (each job parses sources independently in the paper; here
  partitions share the already-loaded store and the per-partition wall
  clocks are reported so min/median/max match the paper's shape).

Two orthogonal performance features (see ``docs/PERFORMANCE.md``):

* ``executor`` routes evaluation through the sharded parallel engine
  (:mod:`repro.parallel`) — ``"auto"``, ``"serial"``, ``"thread"``, or
  ``"process"``; the merged report is identical to serial evaluation;
* ``spec_cache`` memoizes compiled programs keyed by (spec text hash,
  compiler options) so repeat validation of unchanged specs skips the
  parser and the Figure-4 rewrites entirely (:meth:`compile`).
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Union

from ..cpl import ast, parse
from ..drivers import driver_names, get_driver
from ..errors import ConfValleyError, DriverError
from ..observability import get_metrics, get_tracer
from ..repository.store import ConfigStore
from ..runtime import RuntimeProvider, StaticRuntime
from ..runtime import clock as _clock
from .compiler import CompilerOptions, optimize_statements
from .evaluator import Evaluator, Item
from .policy import ValidationPolicy
from .report import ValidationReport

__all__ = ["ValidationSession", "resolve_driver"]

_EXTENSION_FORMATS = {
    ".xml": "xml",
    ".ini": "ini",
    ".conf": "ini",
    ".cfg": "ini",
    ".json": "json",
    ".yaml": "yaml",
    ".yml": "yaml",
    ".csv": "csv",
    ".properties": "keyvalue",
    ".kv": "keyvalue",
    ".toml": "toml",
    ".env": "env",
}


def resolve_driver(format_or_alias: str, location: str) -> str:
    """Resolve a driver name from an explicit format or the location shape.

    A known driver name wins; URLs and host:port locations route to the
    ``rest`` driver; otherwise the location's file extension decides.
    Shared by :class:`ValidationSession` and the service's delta scanner so
    both resolve a ``SourceSpec`` to exactly the same driver.
    """
    if format_or_alias in driver_names():
        return format_or_alias
    if "://" in location or location.replace(".", "").replace(":", "").isdigit():
        return "rest"
    __, extension = os.path.splitext(location)
    if not extension:
        # dotfiles like ".env" are all extension and no stem
        basename = os.path.basename(location)
        if basename.startswith("."):
            extension = basename
    if extension.lower() in _EXTENSION_FORMATS:
        return _EXTENSION_FORMATS[extension.lower()]
    raise DriverError(
        f"cannot determine a driver for {format_or_alias!r} / {location!r}"
    )


class ValidationSession:
    """One configuration-validation session over a unified store."""

    def __init__(
        self,
        store: Optional[ConfigStore] = None,
        runtime: Optional[RuntimeProvider] = None,
        policy: Optional[ValidationPolicy] = None,
        base_dir: str = ".",
        optimize: bool = True,
        profile: bool = False,
        analytics: bool = False,
        executor: Optional[str] = None,
        max_workers: Optional[int] = None,
        spec_cache=None,
        compiler_options: Optional[CompilerOptions] = None,
        spec_guard=None,
        shard_timeout: Optional[float] = None,
        shard_retries: int = 1,
    ):
        self.store = store if store is not None else ConfigStore()
        self.runtime = runtime if runtime is not None else StaticRuntime()
        self.policy = policy if policy is not None else ValidationPolicy()
        self.base_dir = base_dir
        self.optimize = optimize
        #: None = classic in-process serial evaluation; otherwise routed
        #: through repro.parallel ("auto"/"serial"/"thread"/"process" or an
        #: executor object) with a deterministic, serial-identical merge
        self.executor = executor
        self.max_workers = max_workers
        #: optional repro.parallel.SpecCache shared across sessions/scans
        self.spec_cache = spec_cache
        self.compiler_options = compiler_options
        #: optional repro.resilience.SpecGuard: switches evaluation into
        #: guarded mode (statement-level fault isolation + breaker skips)
        self.spec_guard = spec_guard
        #: per-shard supervision knobs, forwarded to ParallelValidator when
        #: an executor is configured (see repro.parallel.supervision)
        self.shard_timeout = shard_timeout
        self.shard_retries = shard_retries
        self.evaluator = Evaluator(
            self.store, self.runtime, self.policy, profile=profile,
            guard=spec_guard, analytics=analytics,
        )
        self._last_compile_hit: Optional[bool] = None

    # ------------------------------------------------------------------
    # Loading configuration data
    # ------------------------------------------------------------------

    def load_source(self, format_or_alias: str, location: str, scope: str = "") -> int:
        """Load one configuration source into the unified store.

        ``format_or_alias`` is a driver name (``xml``, ``ini``, …); when it
        is not a known driver the format is guessed from the location's file
        extension (URLs route to the ``rest`` driver).  Returns the number
        of instances loaded.
        """
        driver_name = self._pick_driver(format_or_alias, location)
        driver = get_driver(driver_name)
        if driver_name == "rest":
            instances = driver.parse(location, source=location, scope=scope)
        else:
            path = location
            if not os.path.isabs(path):
                path = os.path.join(self.base_dir, path)
            # file I/O routes through the runtime provider so it can be
            # virtualized (repro.resilience.FaultyRuntimeProvider injects
            # deterministic read faults here for chaos testing)
            raw = self.runtime.read_bytes(path)
            instances = driver.parse_bytes(raw, source=path, scope=scope)
        self.store.add_all(instances)
        return len(instances)

    def load_text(self, format_name: str, text: str, source: str = "", scope: str = "") -> int:
        """Load configuration data from an in-memory string."""
        instances = get_driver(format_name).parse(text, source=source, scope=scope)
        self.store.add_all(instances)
        return len(instances)

    def _pick_driver(self, format_or_alias: str, location: str) -> str:
        return resolve_driver(format_or_alias, location)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def prepare(self, text: str) -> list[ast.Statement]:
        """Parse spec text, apply commands, return evaluable statements."""
        program = parse(text)
        return self._process_commands(program.statements)

    def _process_commands(
        self, statements: Sequence[ast.Statement]
    ) -> list[ast.Statement]:
        remaining: list[ast.Statement] = []
        for statement in statements:
            if isinstance(statement, ast.LoadCmd):
                self.load_source(statement.alias, statement.location, statement.scope)
            elif isinstance(statement, ast.IncludeCmd):
                path = statement.path
                if not os.path.isabs(path):
                    path = os.path.join(self.base_dir, path)
                with open(path, "r", encoding="utf-8") as handle:
                    remaining.extend(self.prepare(handle.read()))
            else:
                remaining.append(statement)
        return remaining

    def _options_fingerprint(self) -> tuple:
        """Cache-key component: optimization flag + rewrite toggles."""
        if not self.optimize:
            return ("raw",)
        options = self.compiler_options or CompilerOptions()
        return options.fingerprint()

    def compile(self, text: str) -> list[ast.Statement]:
        """Parse + resolve commands + optimize, consulting the spec cache.

        Programs containing ``load``/``include`` commands are compiled
        fresh every time (their compilation has side effects); everything
        else is memoized on ``(spec text hash, compiler options)`` when a
        ``spec_cache`` is attached, so steady-state revalidation skips the
        parser and the Figure-4 rewrites when only data changed.
        """
        fingerprint = self._options_fingerprint()
        with get_tracer().span("compile") as span:
            if self.spec_cache is not None:
                cached = self.spec_cache.lookup(text, fingerprint)
                if cached is not None:
                    self._last_compile_hit = True
                    span.set(cache="hit", statements=len(cached))
                    return list(cached)
            program = parse(text)
            has_commands = any(
                isinstance(statement, (ast.LoadCmd, ast.IncludeCmd))
                for statement in program.statements
            )
            statements = self._process_commands(program.statements)
            if self.optimize:
                statements = optimize_statements(statements, self.compiler_options)
            if self.spec_cache is not None:
                self._last_compile_hit = False
                if has_commands:
                    self.spec_cache.note_uncacheable()
                else:
                    self.spec_cache.store(text, fingerprint, tuple(statements))
            span.set(
                cache="miss" if self.spec_cache is not None else "off",
                statements=len(statements),
            )
        return statements

    def validate(
        self, text: str, report: Optional[ValidationReport] = None
    ) -> ValidationReport:
        """Validate the store against a CPL program (batch mode)."""
        statements = self.compile(text)
        return self._run_validation(statements, report)

    def validate_statements(
        self,
        statements: Sequence[ast.Statement],
        report: Optional[ValidationReport] = None,
    ) -> ValidationReport:
        if self.optimize:
            statements = optimize_statements(
                list(statements), self.compiler_options
            )
        return self._run_validation(statements, report)

    def _run_validation(
        self,
        statements: Sequence[ast.Statement],
        report: Optional[ValidationReport],
    ) -> ValidationReport:
        """Evaluate compiled statements — serially, or sharded when an
        executor is configured (output is identical either way)."""
        if report is None:
            report = ValidationReport()
        if self._last_compile_hit is not None:
            if self._last_compile_hit:
                report.cache_hits += 1
            else:
                report.cache_misses += 1
            self._last_compile_hit = None
        if self.executor is None:
            started = _clock.now()
            with get_tracer().span("evaluate", mode="serial", statements=len(statements)):
                self.evaluator.run(statements, report)
            elapsed = _clock.now() - started
            report.elapsed_seconds += elapsed
            metrics = get_metrics()
            metrics.counter(
                "confvalley_validations_total",
                "Validation runs, by evaluation mode.",
            ).inc(mode="serial")
            metrics.histogram(
                "confvalley_validation_seconds",
                "End-to-end evaluation wall clock per validation run.",
            ).observe(elapsed)
            if report.violations:
                metrics.counter(
                    "confvalley_violations_total",
                    "Violations found across all validation runs.",
                ).inc(len(report.violations))
        else:
            # the parallel engine times itself (including shard fan-out)
            from ..parallel.engine import ParallelValidator

            validator = ParallelValidator(
                self.store,
                self.runtime,
                self.policy,
                executor=self.executor,
                max_workers=self.max_workers,
                profile=self.evaluator.profile,
                analytics=self.evaluator.analytics,
                shard_timeout=self.shard_timeout,
                shard_retries=self.shard_retries,
                guard=self.spec_guard,
            )
            validator.validate_statements(
                statements, report, macros=dict(self.evaluator.macros)
            )
            # keep session macro state consistent with serial semantics:
            # top-level lets persist for later validate()/get() calls
            for statement in statements:
                if isinstance(statement, ast.LetCmd):
                    self.evaluator.macros[statement.name] = statement.predicate
        return report

    def validate_file(self, path: str) -> ValidationReport:
        if not os.path.isabs(path):
            path = os.path.join(self.base_dir, path)
        # spec-file I/O also routes through the runtime provider (chaos
        # harness coverage); specs are UTF-8 like CPL itself
        return self.validate(self.runtime.read_bytes(path).decode("utf-8"))

    def validate_line(self, line: str) -> ValidationReport:
        """Validate a single one-liner (interactive console scenario)."""
        return self.validate(line)

    # ------------------------------------------------------------------
    # Partitioned validation (Table 8)
    # ------------------------------------------------------------------

    def validate_partitioned(
        self, text: str, partitions: int = 10
    ) -> list[tuple[ValidationReport, float]]:
        """Split the specs into N partitions; validate and time each one.

        The paper demonstrates parallel speedup "by simply splitting the
        specifications into 10 partitions and running 10 validation jobs in
        parallel"; the parallel wall clock is the max partition time.  Let
        statements and blocks stay with their partition intact.
        """
        statements = self.prepare(text)
        lets = [s for s in statements if isinstance(s, ast.LetCmd)]
        work = [s for s in statements if not isinstance(s, ast.LetCmd)]
        chunks = _split(work, partitions)
        results: list[tuple[ValidationReport, float]] = []
        for chunk in chunks:
            evaluator = Evaluator(self.store, self.runtime, self.policy)
            report = ValidationReport()
            started = _clock.now()
            statements_for_chunk = lets + chunk
            if self.optimize:
                statements_for_chunk = optimize_statements(
                    statements_for_chunk, self.compiler_options
                )
            evaluator.run(statements_for_chunk, report)
            elapsed = _clock.now() - started
            report.elapsed_seconds = elapsed
            results.append((report, elapsed))
        return results

    # ------------------------------------------------------------------
    # Console helpers
    # ------------------------------------------------------------------

    def get(self, notation: str) -> list[Item]:
        """Resolve a domain notation (the ``get`` command)."""
        from .evaluator import Context

        return self.evaluator.resolve_notation(notation, Context())

    def define_macro(self, name: str, predicate_text: str) -> None:
        from ..cpl import parse_predicate

        self.evaluator.macros[name] = parse_predicate(predicate_text)

    def load_stdlib(self) -> list[str]:
        """Register the standard macro library; returns the macro names."""
        from ..cpl.stdlib import STDLIB_CPL, STDLIB_MACRO_NAMES

        self.evaluator.run(self.prepare(STDLIB_CPL))
        return list(STDLIB_MACRO_NAMES)


def _split(items: list, parts: int) -> list[list]:
    """Round-robin split preserving all items."""
    if parts <= 1:
        return [list(items)]
    chunks: list[list] = [[] for __ in range(min(parts, max(1, len(items))))]
    for index, item in enumerate(items):
        chunks[index % len(chunks)].append(item)
    return [chunk for chunk in chunks if chunk]
