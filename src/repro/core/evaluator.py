"""The ConfValley validation engine (paper §4.1, §4.2).

Evaluates parsed CPL programs against a :class:`~repro.repository.ConfigStore`:

* resolves configuration notations through namespace and compartment scopes
  with variable substitution (§4.2.2);
* iterates predicates over all instances of a domain with ∀ / ∃ / ∃!
  quantification (§4.2.1);
* treats every compartment instance as an isolated evaluation scope, skipping
  instances where a referenced domain is absent (§4.2.2 *Compartment*);
* runs pipelines of (predicated) transformations feeding ``$_`` (§4.2.3);
* evaluates aggregate predicates (``consistent``, ``unique``, ``order``)
  over whole domains while per-value predicates iterate;
* produces a :class:`~repro.core.report.ValidationReport` with
  auto-generated error messages (§4.4) under a
  :class:`~repro.core.policy.ValidationPolicy` (§4.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence, Union

from ..cpl import ast
from ..errors import CPLSemanticError, EvaluationError, UnknownMacroError
from ..predicates import compare, get_predicate
from ..predicates.relational import coerce_scalar
from ..repository.keys import InstanceKey, KeyPattern, parse_pattern
from ..repository.model import ConfigInstance
from ..repository.store import ConfigStore
from ..runtime import RuntimeProvider, StaticRuntime
from ..runtime import clock as _clock
from ..transforms import get_transform
from .policy import ValidationPolicy
from .report import Severity, ValidationReport, Violation

__all__ = ["Evaluator", "Item", "Context"]


@dataclass(frozen=True)
class Item:
    """A value flowing through validation, with provenance for reports."""

    value: Union[str, list]
    key: Optional[InstanceKey] = None
    source: str = ""

    @property
    def key_text(self) -> str:
        return self.key.render() if self.key is not None else ""

    def with_value(self, value) -> "Item":
        return Item(value, self.key, self.source)


@dataclass(frozen=True)
class Context:
    """Evaluation context: bindings and active scopes."""

    env: dict = field(default_factory=dict)
    namespaces: tuple[str, ...] = ()
    compartment: Optional[InstanceKey] = None

    def bind(self, **bindings) -> "Context":
        merged = dict(self.env)
        merged.update(bindings)
        return replace(self, env=merged)


class _Skip(Exception):
    """Raised when a compartment instance lacks a referenced domain."""


class Evaluator:
    """Evaluates CPL statements against one configuration store."""

    def __init__(
        self,
        store: ConfigStore,
        runtime: Optional[RuntimeProvider] = None,
        policy: Optional[ValidationPolicy] = None,
        profile: bool = False,
        macros: Optional[dict] = None,
        guard=None,
        analytics: bool = False,
    ):
        self.store = store
        self.runtime = runtime if runtime is not None else StaticRuntime()
        self.policy = policy if policy is not None else ValidationPolicy()
        self.profile = profile
        #: per-statement attribution (eval/instance/violation counts +
        #: cumulative latency) into ``report.spec_profile`` — the substrate
        #: of the hot-spec table and drift detection
        #: (repro.observability.analytics); never changes fingerprint()
        self.analytics = analytics
        #: optional statement guard (repro.resilience.SpecGuard, duck-typed):
        #: when present, top-level statements execute under fault isolation —
        #: quarantined statements are skipped with a reason, and a statement
        #: that raises an internal error is recorded in the report's health
        #: block instead of aborting the run
        self.guard = guard
        # seedable so shard evaluators inherit the session's macro registry
        self.macros: dict[str, ast.PredExpr] = dict(macros) if macros else {}
        self._scope_cache: dict[tuple, list[InstanceKey]] = {}
        self._scope_cache_size = -1

    # ==================================================================
    # Top level
    # ==================================================================

    def run(
        self,
        statements: Sequence[ast.Statement],
        report: Optional[ValidationReport] = None,
    ) -> ValidationReport:
        if report is None:
            report = ValidationReport()
        if self.guard is None:
            self.execute_block(statements, Context(), report)
            return report
        # Guarded top-level execution (repro.resilience): same ordering and
        # stop-on-first semantics as execute_block, but each statement is a
        # fault-isolation boundary.
        ordered = self.policy.order_statements(list(statements))
        ctx = Context()
        for statement in ordered:
            if self.policy.stop_on_first_violation and report.violations:
                report.stopped_early = True
                return report
            self.execute_guarded(statement, ctx, report)
        return report

    def execute_guarded(
        self, statement: ast.Statement, ctx: Context, report: ValidationReport
    ) -> None:
        """Execute one top-level statement under the statement guard.

        A quarantined statement is skipped (recorded as SKIPPED with its
        reason in the health block); an internal error is captured as a
        health-block spec error so the remaining statements still run.
        """
        reason = self.guard.skip_reason(statement)
        if reason is not None:
            report.specs_skipped += 1
            report.health.quarantined_specs.append(
                self.guard.skip_record(statement, reason)
            )
            return
        try:
            self.execute_statement(statement, ctx, report)
        except Exception as exc:
            report.health.spec_errors.append(
                self.guard.error_record(statement, exc)
            )

    def execute_block(
        self,
        statements: Sequence[ast.Statement],
        ctx: Context,
        report: ValidationReport,
    ) -> None:
        ordered = self.policy.order_statements(list(statements))
        for statement in ordered:
            if self.policy.stop_on_first_violation and report.violations:
                report.stopped_early = True
                return
            self.execute_statement(statement, ctx, report)

    def execute_statement(
        self, statement: ast.Statement, ctx: Context, report: ValidationReport
    ) -> None:
        if isinstance(statement, ast.LetCmd):
            self.macros[statement.name] = statement.predicate
            return
        if isinstance(statement, (ast.LoadCmd, ast.IncludeCmd)):
            raise CPLSemanticError(
                "load/include must be resolved by the session before evaluation"
            )
        if isinstance(statement, ast.GetCmd):
            # surface resolved instances in the report (console shows them)
            try:
                items = self.resolve_domain(statement.domain, ctx)
            except _Skip:
                items = []
            for item in items:
                report.notes.append(f"{item.key_text or '<value>'} = {item.value!r}")
            return
        if isinstance(statement, ast.NamespaceBlock):
            inner = replace(ctx, namespaces=statement.names + ctx.namespaces)
            self.execute_block(statement.body, inner, report)
            return
        if isinstance(statement, ast.CompartmentBlock):
            self._execute_compartment(statement, ctx, report)
            return
        if isinstance(statement, ast.IfStatement):
            self._execute_if(statement, ctx, report)
            return
        if isinstance(statement, ast.SpecStatement):
            self._execute_spec(statement, ctx, report)
            return
        raise CPLSemanticError(f"cannot execute {type(statement).__name__}")

    # ------------------------------------------------------------------

    def _execute_compartment(
        self, block: ast.CompartmentBlock, ctx: Context, report: ValidationReport
    ) -> None:
        instances = self.scope_instances(block.name, ctx)
        for scope_key in instances:
            inner = replace(ctx, compartment=scope_key)
            self.execute_block(block.body, inner, report)

    def _execute_if(
        self, statement: ast.IfStatement, ctx: Context, report: ValidationReport
    ) -> None:
        free = self._free_variables(statement, ctx)
        for bound in self._bindings(free, ctx):
            if self._condition_holds(statement.condition, bound):
                self.execute_block(statement.then, bound, report)
            elif statement.otherwise:
                self.execute_block(statement.otherwise, bound, report)

    def _execute_spec(
        self, spec: ast.SpecStatement, ctx: Context, report: ValidationReport
    ) -> None:
        measuring = self.profile or self.analytics
        started = _clock.now() if measuring else 0.0
        if self.analytics:
            evals_before = report.specs_evaluated
            instances_before = report.instances_checked
            violations_before = len(report.violations)
        free = self._free_variables(spec, ctx)
        for bound in self._bindings(free, ctx):
            self._evaluate_spec(spec, bound, report)
        if not measuring:
            return
        elapsed = _clock.now() - started
        key = (spec.line, spec.text or "<spec>")
        if self.profile:
            report.spec_timings[key] = (
                report.spec_timings.get(key, 0.0) + elapsed
            )
        if self.analytics:
            row = report.spec_profile.get(key)
            if row is None:
                row = {"evals": 0, "instances": 0, "violations": 0, "seconds": 0.0}
                report.spec_profile[key] = row
            row["evals"] += report.specs_evaluated - evals_before
            row["instances"] += report.instances_checked - instances_before
            row["violations"] += len(report.violations) - violations_before
            row["seconds"] += elapsed

    # ==================================================================
    # Variable binding (substitutable variables, §4.2.2)
    # ==================================================================

    def _free_variables(self, node, ctx: Context) -> list[str]:
        names: set[str] = set()
        for notation in _collect_notations(node):
            try:
                pattern = parse_pattern(notation)
            except Exception:
                continue
            names |= pattern.variables
        names -= set(ctx.env)
        names.discard("_")
        return sorted(names)

    def _bindings(self, variables: list[str], ctx: Context) -> Iterable[Context]:
        """Expand free variables over the distinct values of their domains."""
        if not variables:
            yield ctx
            return
        pools: list[list[str]] = []
        for name in variables:
            values = sorted(
                {i.value for i in self._query(parse_pattern(name), ctx)}
            )
            if not values:
                return  # unbound variable domain: statement is vacuous
            pools.append(values)
        for combo in itertools.product(*pools):
            yield ctx.bind(**dict(zip(variables, combo)))

    # ==================================================================
    # Conditions
    # ==================================================================

    def _condition_holds(self, condition: ast.ConditionSpec, ctx: Context) -> bool:
        probe = ValidationReport()
        try:
            self._evaluate_spec(condition.spec, ctx, probe, counting=False)
        except _Skip:
            return False
        return probe.passed and not probe.specs_skipped

    # ==================================================================
    # Specification evaluation
    # ==================================================================

    def _evaluate_spec(
        self,
        spec: ast.SpecStatement,
        ctx: Context,
        report: ValidationReport,
        counting: bool = True,
    ) -> None:
        if counting:
            report.specs_evaluated += 1
        domain = spec.domain
        if isinstance(domain, ast.CompartmentDomain):
            # inline compartment: evaluate per compartment instance
            inner_spec = ast.SpecStatement(domain.inner, spec.steps, spec.text, spec.line)
            for scope_key in self.scope_instances(domain.compartment, ctx):
                inner_ctx = replace(ctx, compartment=scope_key)
                before = len(report.violations)
                try:
                    self._run_pipeline(inner_spec, inner_ctx, report)
                except _Skip:
                    report.specs_skipped += 1
                if counting and len(report.violations) > before:
                    report.specs_failed += 1
            return
        before = len(report.violations)
        try:
            self._run_pipeline(spec, ctx, report)
        except _Skip:
            report.specs_skipped += 1
        if counting and len(report.violations) > before:
            report.specs_failed += 1

    def _run_pipeline(
        self, spec: ast.SpecStatement, ctx: Context, report: ValidationReport
    ) -> None:
        items = self.resolve_domain(spec.domain, ctx)
        for step in spec.steps[:-1]:
            items = self.apply_step(step, items, ctx)
        final = spec.steps[-1]
        assert isinstance(final, ast.PredicateStep)
        violations = self.check_items(final.predicate, items, ctx, spec)
        report.instances_checked += len(items)
        for violation in violations:
            if self.policy.is_suppressed(violation):
                report.suppressed += 1
                continue
            report.add(violation)
            if self.policy.on_violation is not None:
                self.policy.on_violation(violation)

    # ==================================================================
    # Domain resolution
    # ==================================================================

    def resolve_domain(self, domain: ast.DomainExpr, ctx: Context) -> list[Item]:
        if isinstance(domain, ast.DomainRef):
            return self.resolve_notation(domain.notation, ctx)
        if isinstance(domain, ast.TransformDomain):
            inner = self.resolve_domain(domain.inner, ctx)
            step = ast.TransformStep(domain.name, domain.args)
            return self.apply_step(step, inner, ctx)
        if isinstance(domain, ast.BinOpDomain):
            left = self.resolve_domain(domain.left, ctx)
            right = self.resolve_domain(domain.right, ctx)
            out = []
            for a, b in itertools.product(left, right):
                out.append(a.with_value(_arith(domain.op, a.value, b.value)))
            return out
        if isinstance(domain, ast.CompartmentDomain):
            out = []
            for scope_key in self.scope_instances(domain.compartment, ctx):
                inner_ctx = replace(ctx, compartment=scope_key)
                try:
                    out.extend(self.resolve_domain(domain.inner, inner_ctx))
                except _Skip:
                    continue
            return out
        if isinstance(domain, ast.UnionDomain):
            out = []
            for member in domain.members:
                out.extend(self.resolve_domain(member, ctx))
            return out
        raise EvaluationError(f"cannot resolve domain {type(domain).__name__}")

    def resolve_notation(self, notation: str, ctx: Context) -> list[Item]:
        """Resolve one configuration notation to its instances.

        Resolution order (paper §4.2.2): compartment-instance prefix, then
        each active namespace, then the bare notation.  Inside a compartment
        an absent domain raises :class:`_Skip` so the enclosing compartment
        instance is skipped.
        """
        # a bound variable used as a bare notation IS its bound value
        # (e.g. `$_ == $CloudName` inside a per-$CloudName expansion)
        if "." not in notation and notation in ctx.env:
            return [Item(str(ctx.env[notation]))]
        pattern = parse_pattern(notation).substitute(ctx.env)
        if pattern.variables:
            missing = ", ".join(sorted(pattern.variables))
            raise EvaluationError(
                f"unbound variable(s) ${missing} in notation {notation!r}"
            )
        # runtime pseudo-domain: $env.os etc. (§4.3)
        if pattern.segments[0].name == "env" and len(pattern.segments) == 2:
            env = self.runtime.environment()
            name = pattern.segments[1].name
            if name not in env:
                raise EvaluationError(f"unknown runtime fact $env.{name}")
            return [Item(env[name])]
        if ctx.compartment is not None:
            # compartment prefix composes with active namespaces:
            # Cluster::C1 + net + StartIP
            candidates = [pattern]
            candidates += [
                pattern.prefixed_with(parse_pattern(namespace))
                for namespace in ctx.namespaces
            ]
            for candidate in candidates:
                scoped = candidate.prefixed_with_instance(ctx.compartment)
                instances = self._query(scoped, ctx)
                if instances:
                    return instances
            # Distinguish cross-references (domain lives outside the
            # compartment class entirely) from per-compartment absence.
            bare = self._resolve_with_namespaces(pattern, ctx)
            compartment_names = {s.name for s in ctx.compartment.segments}
            outside = [
                item
                for item in bare
                if item.key is None
                or not compartment_names & {s.name for s in item.key.segments}
            ]
            if outside:
                return outside
            raise _Skip()
        return self._resolve_with_namespaces(pattern, ctx)

    def _resolve_with_namespaces(self, pattern: KeyPattern, ctx: Context) -> list[Item]:
        for namespace in ctx.namespaces:
            prefixed = pattern.prefixed_with(parse_pattern(namespace))
            instances = self._query(prefixed, ctx)
            if instances:
                return instances
        return self._query(pattern, ctx)

    def _query(self, pattern: KeyPattern, ctx: Context) -> list[Item]:
        return [
            Item(instance.value, instance.key, instance.source)
            for instance in self.store.query(pattern)
        ]

    # ------------------------------------------------------------------
    # Compartment scope discovery
    # ------------------------------------------------------------------

    def scope_instances(self, name: str, ctx: Context) -> list[InstanceKey]:
        """All distinct scope instances matching a compartment name."""
        if self._scope_cache_size != self.store.instance_count:
            self._scope_cache.clear()
            self._scope_cache_size = self.store.instance_count
        compartment = ctx.compartment.render() if ctx.compartment else ""
        cache_key = (name, compartment)
        cached = self._scope_cache.get(cache_key)
        if cached is not None:
            return cached
        pattern = parse_pattern(name).substitute(ctx.env)
        width = len(pattern.segments)
        found: dict[tuple, InstanceKey] = {}
        for instance in self.store.instances():
            segments = instance.key.segments
            limit = len(segments) - 1  # the leaf is a parameter, not a scope
            for start in range(0, limit - width + 1):
                window = segments[start:start + width]
                if all(p.matches(s) for p, s in zip(pattern.segments, window)):
                    prefix = segments[:start + width]
                    if ctx.compartment is not None:
                        outer = ctx.compartment.segments
                        if (
                            len(prefix) <= len(outer)
                            or prefix[:len(outer)] != outer
                        ):
                            continue
                    found.setdefault(tuple(prefix), InstanceKey(prefix))
        result = list(found.values())
        self._scope_cache[cache_key] = result
        return result

    # ==================================================================
    # Pipeline steps (§4.2.3)
    # ==================================================================

    def apply_step(
        self, step: ast.Step, items: list[Item], ctx: Context
    ) -> list[Item]:
        if isinstance(step, ast.TransformStep):
            return self._apply_transform(step, items, ctx)
        if isinstance(step, ast.TupleStep):
            out = []
            for item in items:
                parts = []
                for part in step.parts:
                    transformed = self._apply_transform(part, [item], ctx)
                    parts.append(transformed[0].value if transformed else "")
                out.append(item.with_value(parts))
            return out
        if isinstance(step, ast.ForeachStep):
            out = []
            for item in items:
                values = item.value if isinstance(item.value, list) else [item.value]
                for value in values:
                    inner = ctx.bind(_=value)
                    out.extend(self.resolve_notation(step.domain.notation, inner))
            return out
        if isinstance(step, ast.CondStep):
            out = []
            for item in items:
                holds, __ = self._eval_pred(step.condition, item, 0, ctx, {})
                if holds:
                    out.extend(self.apply_step(step.then, [item], ctx))
                elif step.otherwise is not None:
                    out.extend(self.apply_step(step.otherwise, [item], ctx))
                else:
                    out.append(item)
            return out
        raise EvaluationError(f"cannot apply step {type(step).__name__}")

    def _apply_transform(
        self, step: ast.TransformStep, items: list[Item], ctx: Context
    ) -> list[Item]:
        spec = get_transform(step.name)
        args = [self._single_operand_value(arg, ctx) for arg in step.args]
        if spec.reduce:
            values = [item.value for item in items]
            result = spec.fn(values, *args)
            template = items[0] if items else Item("")
            if isinstance(result, list) and step.name in (
                "union", "distinct", "flatten", "sort",
            ):
                # set-shaped results become one item per member
                return [Item(v) for v in result]
            return [template.with_value(result)]
        return [item.with_value(spec.fn(item.value, *args)) for item in items]

    # ==================================================================
    # Final predicate evaluation
    # ==================================================================

    def check_items(
        self,
        predicate: ast.PredExpr,
        items: list[Item],
        ctx: Context,
        spec: ast.SpecStatement,
    ) -> list[Violation]:
        # 1. unwrap an item-level quantifier (operand-level ones stay inline)
        quantifier = "forall"
        if isinstance(predicate, ast.Quantified) and not self._operand_level(
            predicate.operand
        ):
            quantifier = predicate.quantifier
            predicate = predicate.operand
        # 2. pre-compute aggregate predicates over the whole domain
        aggregates: dict[int, tuple[set[int], str]] = {}
        values = [_value_text(item.value) for item in items]
        self._collect_aggregates(predicate, values, aggregates)
        # 3. evaluate per item
        failures: list[tuple[Item, tuple[str, str]]] = []
        passed = 0
        for index, item in enumerate(items):
            ok, fail = self._eval_pred(predicate, item, index, ctx, aggregates)
            if ok:
                passed += 1
            else:
                failures.append((item, fail or ("predicate", "")))
        # 4. quantifier logic → violations
        if quantifier == "forall":
            return [
                self._violation(spec, item, constraint, detail, ctx)
                for item, (constraint, detail) in failures
            ]
        if quantifier == "exists":
            if passed >= 1:
                return []
            return [self._domain_violation(spec, items, "exists", ctx)]
        # exactly one
        if passed == 1:
            return []
        return [self._domain_violation(spec, items, f"exactly-one (got {passed})", ctx)]

    def _operand_level(self, predicate: ast.PredExpr) -> bool:
        """True when a quantifier directly governs operand-domain tuples."""
        if isinstance(predicate, (ast.RangePred, ast.RelPred, ast.SetPred)):
            operands = (
                (predicate.low, predicate.high)
                if isinstance(predicate, ast.RangePred)
                else (predicate.operand,)
                if isinstance(predicate, ast.RelPred)
                else predicate.members
            )
            return any(isinstance(op, ast.DomainRef) for op in operands)
        if isinstance(predicate, ast.PrimitiveCall):
            return any(isinstance(op, ast.DomainRef) for op in predicate.args)
        return False

    def _collect_aggregates(
        self,
        predicate: ast.PredExpr,
        values: list[str],
        out: dict[int, tuple[set[int], str]],
    ) -> None:
        if isinstance(predicate, ast.PrimitiveCall):
            spec = get_predicate(predicate.name)
            if spec.aggregate:
                args = [
                    op.value if isinstance(op, ast.Literal) else str(op)
                    for op in predicate.args
                ]
                offenders, detail = spec.fn(values, *args)
                out[id(predicate)] = (set(offenders), detail)
            return
        if isinstance(predicate, (ast.And, ast.Or)):
            self._collect_aggregates(predicate.left, values, out)
            self._collect_aggregates(predicate.right, values, out)
        elif isinstance(predicate, ast.Not):
            self._collect_aggregates(predicate.operand, values, out)
        elif isinstance(predicate, ast.Quantified):
            self._collect_aggregates(predicate.operand, values, out)
        elif isinstance(predicate, ast.IfPred):
            self._collect_aggregates(predicate.condition, values, out)
            self._collect_aggregates(predicate.then, values, out)
            if predicate.otherwise is not None:
                self._collect_aggregates(predicate.otherwise, values, out)
        elif isinstance(predicate, ast.MacroRef):
            self._collect_aggregates(self._macro(predicate.name), values, out)

    def _macro(self, name: str) -> ast.PredExpr:
        try:
            return self.macros[name]
        except KeyError:
            raise UnknownMacroError(f"undefined macro @{name}") from None

    # ------------------------------------------------------------------

    def _eval_pred(
        self,
        predicate: ast.PredExpr,
        item: Item,
        index: int,
        ctx: Context,
        aggregates: dict[int, tuple[set[int], str]],
    ) -> tuple[bool, Optional[tuple[str, str]]]:
        """Evaluate one predicate for one item → (ok, (constraint, message))."""
        if isinstance(predicate, ast.And):
            ok_left, fail_left = self._eval_pred(predicate.left, item, index, ctx, aggregates)
            if not ok_left:
                return False, fail_left
            return self._eval_pred(predicate.right, item, index, ctx, aggregates)
        if isinstance(predicate, ast.Or):
            ok_left, __ = self._eval_pred(predicate.left, item, index, ctx, aggregates)
            if ok_left:
                return True, None
            return self._eval_pred(predicate.right, item, index, ctx, aggregates)
        if isinstance(predicate, ast.Not):
            ok, __ = self._eval_pred(predicate.operand, item, index, ctx, aggregates)
            if ok:
                name = _describe(predicate.operand)
                return False, (f"~{name}", f"value {item.value!r} must not satisfy {name}")
            return True, None
        if isinstance(predicate, ast.IfPred):
            ok_cond, __ = self._eval_pred(predicate.condition, item, index, ctx, aggregates)
            if ok_cond:
                return self._eval_pred(predicate.then, item, index, ctx, aggregates)
            if predicate.otherwise is not None:
                return self._eval_pred(predicate.otherwise, item, index, ctx, aggregates)
            return True, None
        if isinstance(predicate, ast.Quantified):
            return self._eval_quantified(predicate, item, index, ctx, aggregates)
        if isinstance(predicate, ast.MacroRef):
            return self._eval_pred(self._macro(predicate.name), item, index, ctx, aggregates)
        if isinstance(predicate, ast.PrimitiveCall):
            return self._eval_primitive(predicate, item, index, ctx, aggregates)
        if isinstance(predicate, ast.RelPred):
            return self._eval_relation(predicate, item, ctx, "forall")
        if isinstance(predicate, ast.RangePred):
            return self._eval_range(predicate, item, ctx, "forall")
        if isinstance(predicate, ast.SetPred):
            return self._eval_set(predicate, item, ctx)
        raise EvaluationError(f"cannot evaluate predicate {type(predicate).__name__}")

    def _eval_quantified(self, predicate, item, index, ctx, aggregates):
        inner = predicate.operand
        q = predicate.quantifier
        if isinstance(inner, ast.RelPred):
            return self._eval_relation(inner, item, ctx, q)
        if isinstance(inner, ast.RangePred):
            return self._eval_range(inner, item, ctx, q)
        # quantifier over something without operand domains: item-level
        # quantification was already handled at check_items; treat as plain.
        return self._eval_pred(inner, item, index, ctx, aggregates)

    def _eval_primitive(self, predicate, item, index, ctx, aggregates):
        spec = get_predicate(predicate.name)
        if spec.aggregate:
            offenders, detail = aggregates.get(id(predicate), (set(), ""))
            if index in offenders:
                message = spec.message.format(
                    value=_value_text(item.value),
                    key=item.key_text or "<domain>",
                    args="",
                    detail=detail,
                    name=predicate.name,
                )
                return False, (predicate.name, message)
            return True, None
        args = [self._single_operand_value(arg, ctx, item) for arg in predicate.args]
        kwargs = {"runtime": self.runtime} if spec.needs_runtime else {}
        values = item.value if isinstance(item.value, list) else [item.value]
        for value in values:
            if not spec.fn(str(value), *args, **kwargs):
                message = spec.message.format(
                    value=value,
                    key=item.key_text or "<domain>",
                    args=tuple(args),
                    detail="",
                    name=predicate.name,
                )
                return False, (predicate.name, message)
        return True, None

    def _eval_relation(self, predicate, item, ctx, quantifier):
        operand_values = self._operand_values(predicate.operand, ctx, item)
        values = item.value if isinstance(item.value, list) else [item.value]
        outcomes = [
            compare(str(value), predicate.op, str(other))
            for value in values
            for other in operand_values
        ]
        ok = _quantify(outcomes, quantifier)
        if ok:
            return True, None
        shown = operand_values[0] if operand_values else "?"
        return False, (
            predicate.op,
            f"value {_value_text(item.value)!r} of {item.key_text or '<domain>'} "
            f"violates '{predicate.op} {shown}'",
        )

    def _eval_range(self, predicate, item, ctx, quantifier):
        lows = self._operand_values(predicate.low, ctx, item)
        highs = self._operand_values(predicate.high, ctx, item)
        values = item.value if isinstance(item.value, list) else [item.value]
        if not lows or not highs:
            return True, None  # vacuous outside compartments
        outcomes = []
        for low, high in itertools.product(lows, highs):
            outcomes.append(
                all(
                    compare(str(v), ">=", str(low)) and compare(str(v), "<=", str(high))
                    for v in values
                )
            )
        ok = _quantify(outcomes, quantifier)
        if ok:
            return True, None
        return False, (
            "range",
            f"value {_value_text(item.value)!r} of {item.key_text or '<domain>'} "
            f"is out of range [{lows[0]}, {highs[0]}]",
        )

    def _eval_set(self, predicate, item, ctx):
        members: list[str] = []
        for operand in predicate.members:
            members.extend(self._operand_values(operand, ctx, item))
        values = item.value if isinstance(item.value, list) else [item.value]
        ok = all(
            any(compare(str(v), "==", str(m)) for m in members) for v in values
        )
        if ok:
            return True, None
        preview = ", ".join(repr(m) for m in members[:5])
        return False, (
            "membership",
            f"value {_value_text(item.value)!r} of {item.key_text or '<domain>'} "
            f"is not one of {{{preview}}}",
        )

    # ------------------------------------------------------------------
    # Operands
    # ------------------------------------------------------------------

    def _operand_values(
        self, operand: ast.Operand, ctx: Context, item: Optional[Item] = None
    ) -> list[str]:
        if isinstance(operand, ast.Literal):
            return [str(operand.value)]
        if isinstance(operand, ast.ContextRef):
            if item is None:
                raise EvaluationError("$_ used outside a pipeline")
            return [_value_text(item.value)]
        if isinstance(operand, ast.DomainRef):
            return [_value_text(i.value) for i in self.resolve_notation(operand.notation, ctx)]
        raise EvaluationError(f"bad operand {type(operand).__name__}")

    def _single_operand_value(
        self, operand: ast.Operand, ctx: Context, item: Optional[Item] = None
    ):
        if isinstance(operand, ast.Literal):
            return operand.value
        values = self._operand_values(operand, ctx, item)
        distinct = sorted(set(values))
        if len(distinct) != 1:
            raise EvaluationError(
                f"argument domain must have exactly one distinct value, "
                f"got {len(distinct)}"
            )
        return distinct[0]

    # ------------------------------------------------------------------
    # Violations
    # ------------------------------------------------------------------

    def _violation(
        self,
        spec: ast.SpecStatement,
        item: Item,
        constraint: str,
        message: str,
        ctx: Context,
    ) -> Violation:
        key = item.key_text
        if spec.custom_message:
            # §4.4: per-check override of the auto-generated message
            message = spec.custom_message.format(
                key=key or "<domain>", value=_value_text(item.value)
            )
        return Violation(
            spec_text=spec.text or "<spec>",
            spec_line=spec.line,
            constraint=constraint,
            key=key,
            value=_value_text(item.value),
            message=message or f"value {item.value!r} of {key} failed {constraint}",
            severity=self.policy.severity_of(key),
            source=item.source,
        )

    def _domain_violation(
        self, spec: ast.SpecStatement, items: list[Item], what: str, ctx: Context
    ) -> Violation:
        key = items[0].key_text if items else ""
        if spec.custom_message:
            message = spec.custom_message.format(key=key or "<domain>", value="")
            return Violation(
                spec_text=spec.text or "<spec>",
                spec_line=spec.line,
                constraint=what,
                key=key,
                value="",
                message=message,
                severity=self.policy.severity_of(key),
                source=items[0].source if items else "",
            )
        return Violation(
            spec_text=spec.text or "<spec>",
            spec_line=spec.line,
            constraint=what,
            key=key,
            value="",
            message=f"quantifier '{what}' not satisfied over {len(items)} instance(s)",
            severity=self.policy.severity_of(key),
            source=items[0].source if items else "",
        )


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _quantify(outcomes: list[bool], quantifier: str) -> bool:
    if quantifier == "forall":
        return all(outcomes)
    if quantifier == "exists":
        return any(outcomes)
    return sum(outcomes) == 1  # exactly one


def _value_text(value: Union[str, list]) -> str:
    if isinstance(value, list):
        return ",".join(str(v) for v in value)
    return str(value)


def _arith(op: str, left, right) -> str:
    a, b = coerce_scalar(str(left)), coerce_scalar(str(right))
    if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
        if op == "+":
            return str(left) + str(right)  # string concatenation
        raise EvaluationError(f"non-numeric operands for '{op}'")
    if op == "+":
        result = a + b
    elif op == "-":
        result = a - b
    elif op == "*":
        result = a * b
    else:
        if b == 0:
            raise EvaluationError("division by zero in domain expression")
        result = a / b
    if isinstance(result, float) and result.is_integer():
        result = int(result)
    return str(result)


def _describe(predicate: ast.PredExpr) -> str:
    if isinstance(predicate, ast.PrimitiveCall):
        return predicate.name
    if isinstance(predicate, ast.MacroRef):
        return f"@{predicate.name}"
    if isinstance(predicate, ast.RelPred):
        return f"{predicate.op} …"
    return type(predicate).__name__.lower()


def _collect_notations(node) -> Iterable[str]:
    """Yield every configuration notation text inside an AST subtree."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.DomainRef):
            yield current.notation
            continue
        if isinstance(current, (list, tuple)):
            stack.extend(current)
            continue
        if hasattr(current, "__dataclass_fields__"):
            for name in current.__dataclass_fields__:
                stack.append(getattr(current, name))
