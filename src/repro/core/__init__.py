"""ConfValley core: evaluation engine, sessions, policies and reports."""

from .compiler import CompilerOptions, optimize_statements, simplify_predicate
from .coverage import CoverageReport, analyze_coverage
from .evaluator import Context, Evaluator, Item
from .incremental import DependencyIndex, IncrementalValidator
from .policy import ValidationPolicy
from .repair import Repair, apply_repairs, suggest_repairs
from .report import Severity, ValidationReport, Violation
from .session import ValidationSession

__all__ = [
    "CompilerOptions",
    "optimize_statements",
    "simplify_predicate",
    "Context",
    "Evaluator",
    "Item",
    "DependencyIndex",
    "IncrementalValidator",
    "CoverageReport",
    "analyze_coverage",
    "Repair",
    "suggest_repairs",
    "apply_repairs",
    "ValidationPolicy",
    "Severity",
    "ValidationReport",
    "Violation",
    "ValidationSession",
]
