"""CPL compiler rewrites (paper §5.2, Figure 4).

"Our compiler rewrites these types of inefficient specifications by
aggregating predicates, aggregating domains or omitting implied
constraints."

Three rewrites, each independently toggleable so the Figure 4 ablation
benchmark can measure their contribution:

(a) **predicate aggregation** — specifications sharing the same domain merge
    into one conjunction, so instance discovery runs once per domain;
(b) **domain aggregation** — specifications sharing the same predicate merge
    into one :class:`~repro.cpl.ast.UnionDomain`, so one predicate object
    serves many domains.  *Deviation for correctness*: specifications whose
    predicate contains an aggregate primitive (``unique``/``consistent``/
    ``order``) are never domain-aggregated, because uniqueness over a merged
    domain is a strictly stronger constraint than per-domain uniqueness
    (Figure 4b glosses over this);
(c) **implied-constraint elision** — conjuncts implied by their siblings are
    dropped (``string & nonempty & {'compute','storage'}`` →
    ``{'compute','storage'}``), using a small implication table
    (``int ⇒ float ⇒ nonempty ⇒ string``, every type predicate ⇒ nonempty,
    a set of nonempty literals ⇒ nonempty, everything ⇒ string).

All rewrites preserve the reported violations for aggregate-free
specifications (a property test asserts this); only the spec *count*
bookkeeping changes, since merged specs evaluate as one.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import replace
from typing import Optional, Sequence

from ..cpl import ast
from ..predicates import is_registered
from ..predicates.base import get_predicate

__all__ = ["optimize_statements", "CompilerOptions", "simplify_predicate"]


class CompilerOptions:
    """Rewrite toggles for the Figure 4 ablation."""

    def __init__(
        self,
        aggregate_predicates: bool = True,
        aggregate_domains: bool = True,
        omit_implied: bool = True,
    ):
        self.aggregate_predicates = aggregate_predicates
        self.aggregate_domains = aggregate_domains
        self.omit_implied = omit_implied

    def fingerprint(self) -> tuple:
        """Hashable identity of the rewrite configuration — part of the
        compiled-spec cache key (:class:`repro.parallel.SpecCache`)."""
        return (
            self.aggregate_predicates,
            self.aggregate_domains,
            self.omit_implied,
        )


#: conjuncts implied by another conjunct's presence: implied -> implier names
_TYPE_PREDICATES = {
    "int", "float", "bool", "ip", "ipv6", "cidr", "mac", "port",
    "url", "email", "guid", "path", "iprange",
}
_IMPLIES_NONEMPTY = _TYPE_PREDICATES | {
    f"list_{name}" for name in _TYPE_PREDICATES
}


def optimize_statements(
    statements: Sequence[ast.Statement], options: Optional[CompilerOptions] = None
) -> list[ast.Statement]:
    """Apply the Figure 4 rewrites to a statement list (recursing into blocks)."""
    options = options or CompilerOptions()
    out: list[ast.Statement] = []
    for statement in statements:
        if isinstance(statement, ast.NamespaceBlock):
            out.append(
                replace(
                    statement,
                    body=tuple(optimize_statements(statement.body, options)),
                )
            )
        elif isinstance(statement, ast.CompartmentBlock):
            out.append(
                replace(
                    statement,
                    body=tuple(optimize_statements(statement.body, options)),
                )
            )
        elif isinstance(statement, ast.IfStatement):
            out.append(
                replace(
                    statement,
                    then=tuple(optimize_statements(statement.then, options)),
                    otherwise=tuple(optimize_statements(statement.otherwise, options)),
                )
            )
        elif isinstance(statement, ast.SpecStatement) and options.omit_implied:
            out.append(_elide_implied(statement))
        else:
            out.append(statement)
    if options.aggregate_predicates:
        out = _aggregate_predicates(out, simplify=options.omit_implied)
    if options.aggregate_domains:
        out = _aggregate_domains(out)
    return out


# ---------------------------------------------------------------------------
# (a) aggregate predicates with the same domain
# ---------------------------------------------------------------------------


def _is_simple_spec(statement: ast.Statement) -> bool:
    """A spec with no pipeline steps other than its final predicate.

    Specs carrying a custom error message (§4.4) are never merged: merging
    would attach one spec's message to another spec's violations.
    """
    return (
        isinstance(statement, ast.SpecStatement)
        and len(statement.steps) == 1
        and isinstance(statement.steps[0], ast.PredicateStep)
        and not statement.custom_message
    )


def _final_predicate(spec: ast.SpecStatement) -> ast.PredExpr:
    step = spec.steps[-1]
    assert isinstance(step, ast.PredicateStep)
    return step.predicate


def _aggregate_predicates(
    statements: list[ast.Statement], simplify: bool = False
) -> list[ast.Statement]:
    by_domain: dict[ast.DomainExpr, list[ast.SpecStatement]] = defaultdict(list)
    for statement in statements:
        if _is_simple_spec(statement):
            by_domain[statement.domain].append(statement)
    merged_into: dict[int, ast.SpecStatement] = {}
    drop: set[int] = set()
    for domain, group in by_domain.items():
        if len(group) < 2:
            continue
        predicate = _final_predicate(group[0])
        for extra in group[1:]:
            predicate = ast.And(predicate, _final_predicate(extra))
            drop.add(id(extra))
        if simplify:
            # re-run (c): merging may expose newly implied conjuncts
            predicate = simplify_predicate(predicate)
        merged = replace(
            group[0],
            steps=(ast.PredicateStep(predicate),),
            text=" & ".join(s.text or "<spec>" for s in group),
        )
        merged_into[id(group[0])] = merged
    out = []
    for statement in statements:
        if id(statement) in drop:
            continue
        out.append(merged_into.get(id(statement), statement))
    return out


# ---------------------------------------------------------------------------
# (b) aggregate domains with the same predicate
# ---------------------------------------------------------------------------


def _has_aggregate(predicate: ast.PredExpr) -> bool:
    if isinstance(predicate, ast.PrimitiveCall):
        return is_registered(predicate.name) and get_predicate(predicate.name).aggregate
    if isinstance(predicate, (ast.And, ast.Or)):
        return _has_aggregate(predicate.left) or _has_aggregate(predicate.right)
    if isinstance(predicate, ast.Not):
        return _has_aggregate(predicate.operand)
    if isinstance(predicate, ast.Quantified):
        return _has_aggregate(predicate.operand)
    if isinstance(predicate, ast.IfPred):
        return (
            _has_aggregate(predicate.condition)
            or _has_aggregate(predicate.then)
            or (predicate.otherwise is not None and _has_aggregate(predicate.otherwise))
        )
    if isinstance(predicate, ast.MacroRef):
        return True  # conservatively assume macros may contain aggregates
    return False


def _aggregate_domains(statements: list[ast.Statement]) -> list[ast.Statement]:
    by_predicate: dict[ast.PredExpr, list[ast.SpecStatement]] = defaultdict(list)
    for statement in statements:
        if _is_simple_spec(statement) and not _has_aggregate(
            _final_predicate(statement)
        ):
            by_predicate[_final_predicate(statement)].append(statement)
    merged_into: dict[int, ast.SpecStatement] = {}
    drop: set[int] = set()
    for predicate, group in by_predicate.items():
        if len(group) < 2:
            continue
        domains = tuple(spec.domain for spec in group)
        merged = replace(
            group[0],
            domain=ast.UnionDomain(domains),
            text=" , ".join(s.text or "<spec>" for s in group),
        )
        merged_into[id(group[0])] = merged
        for extra in group[1:]:
            drop.add(id(extra))
    out = []
    for statement in statements:
        if id(statement) in drop:
            continue
        out.append(merged_into.get(id(statement), statement))
    return out


# ---------------------------------------------------------------------------
# (c) omit implied constraints
# ---------------------------------------------------------------------------


def _flatten_and(predicate: ast.PredExpr) -> Optional[list[ast.PredExpr]]:
    if isinstance(predicate, ast.And):
        left = _flatten_and(predicate.left)
        right = _flatten_and(predicate.right)
        if left is None or right is None:
            return None
        return left + right
    return [predicate]


def _implied_by(candidate: ast.PredExpr, others: list[ast.PredExpr]) -> bool:
    if not isinstance(candidate, ast.PrimitiveCall) or candidate.args:
        return False
    name = candidate.name
    if name == "string":
        return len(others) > 0
    if name == "nonempty":
        for other in others:
            if isinstance(other, ast.PrimitiveCall) and other.name in _IMPLIES_NONEMPTY:
                return True
            if isinstance(other, ast.SetPred) and all(
                isinstance(m, ast.Literal) and str(m.value).strip()
                for m in other.members
            ):
                return True
        return False
    if name == "float":
        return any(
            isinstance(other, ast.PrimitiveCall) and other.name == "int"
            for other in others
        )
    return False


def simplify_predicate(predicate: ast.PredExpr) -> ast.PredExpr:
    """Drop duplicated and implied conjuncts from an ``&`` chain."""
    conjuncts = _flatten_and(predicate)
    if conjuncts is None or len(conjuncts) < 2:
        return predicate
    deduped: list[ast.PredExpr] = []
    for conjunct in conjuncts:
        if conjunct not in deduped:
            deduped.append(conjunct)
    kept: list[ast.PredExpr] = []
    for index, conjunct in enumerate(deduped):
        others = deduped[:index] + deduped[index + 1:]
        # only consider siblings that themselves survive (stable: compare
        # against all others; implications here are never mutual except
        # duplicates, already removed)
        if not _implied_by(conjunct, others):
            kept.append(conjunct)
    if not kept:
        kept = [deduped[-1]]
    result = kept[0]
    for conjunct in kept[1:]:
        result = ast.And(result, conjunct)
    return result


def _elide_implied(spec: ast.SpecStatement) -> ast.SpecStatement:
    final = spec.steps[-1]
    if not isinstance(final, ast.PredicateStep):
        return spec
    simplified = simplify_predicate(final.predicate)
    if simplified is final.predicate:
        return spec
    return replace(spec, steps=spec.steps[:-1] + (ast.PredicateStep(simplified),))
