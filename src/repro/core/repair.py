"""Repair suggestions for reported violations.

The paper positions validation alongside misconfiguration *repair* work
(AutoBash et al., §8) and notes that "the pre-defined specifications and
validation results can help pinpoint which part of the configuration is
problematic" (§1).  This module takes the pinpointing one step further:
for violation kinds with an obvious candidate fix, it proposes one —

* **membership** (enum typo) → the nearest set member by edit distance,
  when it is unambiguous and close;
* **consistent** → the majority value of the domain;
* **range** → the violated bound (clamp);
* **== relation** (cross-source mismatch) → the referenced value;
* **nonempty / type / unique** → no safe suggestion (flagged for a human).

Suggestions are exactly that — each carries a confidence note, and
:func:`apply_repairs` produces a *new* instance list for review (e.g. to
commit to a candidate branch), never mutating the input.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Optional

from ..repository.keys import parse_instance_key
from ..repository.model import ConfigInstance
from ..repository.store import ConfigStore
from .report import ValidationReport, Violation

__all__ = ["Repair", "suggest_repairs", "apply_repairs"]


@dataclass(frozen=True)
class Repair:
    """One proposed fix for one violated instance."""

    key: str
    old_value: str
    new_value: str
    rationale: str

    def render(self) -> str:
        return f"{self.key}: {self.old_value!r} -> {self.new_value!r} ({self.rationale})"


def _edit_distance(a: str, b: str, cap: int = 4) -> int:
    """Levenshtein distance with an early cap (small strings only)."""
    if abs(len(a) - len(b)) > cap:
        return cap + 1
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            current.append(min(
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + (char_a != char_b),
            ))
        if min(current) > cap:
            return cap + 1
        previous = current
    return previous[-1]


_SET_RE = re.compile(r"is not one of \{(.*)\}")
_RANGE_RE = re.compile(r"is out of range \[([^,\]]+), ([^\]]+)\]")
_CONSISTENT_RE = re.compile(r"expected consistent value '((?:[^'\\]|\\.)*)'")
_RELATION_RE = re.compile(r"violates '== ([^']*)'$")


def _suggest_for(violation: Violation, store: ConfigStore) -> Optional[Repair]:
    value = violation.value
    if violation.constraint == "membership":
        match = _SET_RE.search(violation.message)
        if not match:
            return None
        members = re.findall(r"'((?:[^'\\]|\\.)*)'", match.group(1))
        if not members:
            return None
        scored = sorted(
            (( _edit_distance(value, member), member) for member in members)
        )
        best_distance, best = scored[0]
        runner_up = scored[1][0] if len(scored) > 1 else best_distance + 10
        if best_distance <= 2 and best_distance < runner_up:
            return Repair(
                violation.key, value, best,
                f"nearest allowed value (edit distance {best_distance})",
            )
        return None
    if violation.constraint == "consistent":
        match = _CONSISTENT_RE.search(violation.message)
        if match:
            return Repair(
                violation.key, value, match.group(1),
                "majority value of the domain",
            )
        return None
    if violation.constraint == "range":
        match = _RANGE_RE.search(violation.message)
        if not match:
            return None
        low, high = match.group(1).strip(), match.group(2).strip()
        from ..predicates import compare

        try:
            clamp = low if compare(value, "<", low) else high
        except Exception:
            return None
        return Repair(violation.key, value, clamp, "clamped to the violated bound")
    if violation.constraint == "==":
        match = _RELATION_RE.search(violation.message)
        if match:
            return Repair(
                violation.key, value, match.group(1),
                "aligned with the referenced value",
            )
    return None


def suggest_repairs(
    report: ValidationReport, store: ConfigStore
) -> list[Repair]:
    """Propose fixes for the violations that admit an obvious one."""
    out = []
    seen: set[str] = set()
    for violation in report.violations:
        if not violation.key or violation.key in seen:
            continue
        repair = _suggest_for(violation, store)
        if repair is not None:
            seen.add(violation.key)
            out.append(repair)
    return out


def apply_repairs(
    instances: Iterable[ConfigInstance], repairs: Iterable[Repair]
) -> list[ConfigInstance]:
    """Produce a new instance list with the repairs applied (for review)."""
    by_key = {}
    for repair in repairs:
        by_key[parse_instance_key(repair.key)] = repair.new_value
    return [
        ConfigInstance(i.key, by_key.get(i.key, i.value), i.source)
        for i in instances
    ]
