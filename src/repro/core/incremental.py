"""Incremental validation: re-run only the specifications a change touches.

The paper's check-in scenario (§3.2) validates every configuration update
before it lands.  Re-running the whole corpus per update is wasteful when
an update touches a handful of parameters; this module computes, for each
specification statement, the set of configuration key patterns it depends
on, and selects the statements whose patterns can reach any key in a
:class:`~repro.repository.versioned.ChangeSet`.

Two layers:

* :class:`DependencyIndex` — a reusable statement → key-pattern index over
  an already-parsed (or compiled) statement sequence.  Lookup is
  trie-backed: patterns are filed under their trailing run of concrete
  segment names, so mapping a changed key to candidate statements walks
  the key leaf-first instead of scanning every pattern of every statement.
  The continuous service attaches one index per compiled-spec cache entry
  (:meth:`repro.parallel.cache.SpecCache.attachment`), so it is built once
  and invalidated together with the compiled statements.
* :class:`IncrementalValidator` — the pre-check-in gate: owns the parsed
  corpus, delegates selection to a :class:`DependencyIndex`, and validates
  the selected statements against the new store.

Selection is *conservative* — the index may select a statement the change
cannot actually affect, but never the reverse:

* every notation inside a statement counts — main domains, operand domains
  in predicates, ``foreach`` targets, and ``if``-condition domains;
* substitutable variables (``$var``) are widened to ``*`` wildcards, and a
  single-segment ``var`` pattern is added for each free variable, because
  the evaluator draws its binding pool from the instances the bare
  variable name reaches;
* statements referencing ``let`` macros inherit every notation of the
  macro bodies they can expand to (transitively, cycle-guarded);
* ``compartment`` statements additionally re-run whenever an added or
  removed key carries a scope segment matching the compartment name —
  value edits cannot create or destroy compartment instances, but
  additions and removals can;
* statements touching ambient runtime state (``exists`` / ``reachable``
  primitives, ``env.*`` pseudo-domains) are *volatile* and always re-run;
* ``let`` macro definitions are always retained (they carry no domain);
* aggregate predicates need no special casing — a changed instance matches
  its own class notation, and aggregates always re-run over the full
  current domain when their statement is selected.

Soundness property (tested in ``tests/test_incremental.py`` and the
delta/full parity suite): for any change set, a statement that is *not*
selected cannot change outcome, because none of the instances its
notations, binding pools, or compartment discovery can reach were touched.

>>> from repro.core.incremental import IncrementalValidator
>>> from repro.repository.versioned import ChangeSet
>>> from repro.repository.model import ConfigInstance
>>> from repro.repository.keys import parse_instance_key
>>> validator = IncrementalValidator(
...     "$Cluster.Timeout -> int\\n$Cluster.Mode -> {'fast', 'safe'}"
... )
>>> edit = ConfigInstance(parse_instance_key("Cluster::C1.Timeout"), "45", "doc")
>>> change = ChangeSet(modified=[(edit, edit)])
>>> [s.text for s in validator.affected_statements(change)]
['$Cluster.Timeout -> int']
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from ..cpl import ast, parse
from ..repository.keys import (
    InstanceKey,
    KeyPattern,
    PatternSegment,
    _name_matches,
    parse_pattern,
)
from ..repository.store import ConfigStore
from ..repository.versioned import ChangeSet
from ..runtime import RuntimeProvider
from .evaluator import _collect_notations
from .policy import ValidationPolicy
from .report import ValidationReport
from .session import ValidationSession

__all__ = ["DependencyIndex", "IncrementalValidator"]

#: Predicate primitives whose verdict depends on ambient runtime state
#: (filesystem, network) rather than the configuration store alone.
_VOLATILE_PRIMITIVES = frozenset({"exists", "reachable"})


def _widen_variables(pattern: KeyPattern) -> KeyPattern:
    """Replace unresolved ``$var`` parts with wildcards.

    A variable segment name widens to ``*`` (any name); a variable
    qualifier widens to the ANY kind — the variable can bind to any
    instance, named or not, so the widened segment must accept both.
    """
    segments = []
    for segment in pattern.segments:
        name = "*" if segment.name.startswith("$") else segment.name
        kind, qualifier = segment.kind, segment.qualifier
        if isinstance(qualifier, str) and qualifier.startswith("$"):
            kind, qualifier = "any", None
        segments.append(PatternSegment(name, kind, qualifier))
    return KeyPattern(tuple(segments))


def _walk(node) -> Iterator[object]:
    """Yield every AST node in a subtree (lists/tuples flattened)."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (list, tuple)):
            stack.extend(current)
            continue
        if hasattr(current, "__dataclass_fields__"):
            yield current
            for name in current.__dataclass_fields__:
                stack.append(getattr(current, name))


def _collect_macro_refs(node) -> Iterator[str]:
    for current in _walk(node):
        if isinstance(current, ast.MacroRef):
            yield current.name


def _reachable_macro_bodies(
    node, macros: Mapping[str, ast.PredExpr]
) -> Iterator[ast.PredExpr]:
    """Bodies of every macro the subtree can expand to (cycle-guarded)."""
    seen: set[str] = set()
    stack = list(_collect_macro_refs(node))
    while stack:
        name = stack.pop()
        if name in seen or name not in macros:
            continue
        seen.add(name)
        body = macros[name]
        yield body
        stack.extend(_collect_macro_refs(body))


def _is_env_notation(notation: str) -> bool:
    return notation.startswith("env.") and notation.count(".") == 1


def _is_volatile(statement, macros: Mapping[str, ast.PredExpr]) -> bool:
    """True when the statement's verdict can change without a data change."""
    subtrees = [statement, *_reachable_macro_bodies(statement, macros)]
    for subtree in subtrees:
        for node in _walk(subtree):
            if (
                isinstance(node, ast.PrimitiveCall)
                and node.name in _VOLATILE_PRIMITIVES
            ):
                return True
        for notation in _collect_notations(subtree):
            if _is_env_notation(notation):
                return True
    return False


def _compartment_patterns(statement) -> list[KeyPattern]:
    """Compartment names declared anywhere inside a statement, as patterns."""
    patterns = []
    for node in _walk(statement):
        name = None
        if isinstance(node, ast.CompartmentBlock):
            name = node.name
        elif isinstance(node, ast.CompartmentDomain):
            name = node.compartment
        if name is None:
            continue
        try:
            patterns.append(parse_pattern(name))
        except Exception:
            continue
    return patterns


def _statement_patterns(
    statement, macros: Mapping[str, ast.PredExpr]
) -> list[KeyPattern]:
    """Every widened key pattern a statement's evaluation can query.

    Includes the notations of macro bodies the statement can expand to,
    plus one single-segment pattern per free variable (the evaluator's
    binding pool for ``$var`` is whatever the bare name ``var`` reaches).
    """
    patterns: list[KeyPattern] = []
    seen_variables: set[str] = set()
    subtrees = [statement, *_reachable_macro_bodies(statement, macros)]
    for subtree in subtrees:
        for notation in _collect_notations(subtree):
            if notation == "_":
                continue
            try:
                pattern = parse_pattern(notation)
            except Exception:
                continue
            for variable in pattern.variables:
                if variable != "_" and variable not in seen_variables:
                    seen_variables.add(variable)
                    patterns.append(KeyPattern((PatternSegment(variable),)))
            patterns.append(_widen_variables(pattern))
    return patterns


class _TrieNode:
    __slots__ = ("children", "entries")

    def __init__(self) -> None:
        self.children: dict[str, _TrieNode] = {}
        self.entries: list[tuple[KeyPattern, int]] = []


class _PatternTrie:
    """Reverse-segment pattern index.

    Patterns are suffix-matched against instance keys, so the trie files
    each pattern under its trailing run of *concrete* segment names
    (leaf-first); the walk stops at the first wildcard or variable
    segment, bucketing the pattern at that depth.  ``candidates(key)``
    walks the key leaf-first and collects every bucket passed — a
    superset of the matching patterns, verified by ``pattern.matches``.
    """

    __slots__ = ("_root",)

    def __init__(self) -> None:
        self._root = _TrieNode()

    def insert(self, pattern: KeyPattern, index: int) -> None:
        node = self._root
        for segment in reversed(pattern.segments):
            if "*" in segment.name or segment.name.startswith("$"):
                break
            node = node.children.setdefault(segment.name, _TrieNode())
        node.entries.append((pattern, index))

    def candidates(self, key: InstanceKey) -> Iterator[tuple[KeyPattern, int]]:
        node = self._root
        yield from node.entries
        for segment in reversed(key.segments):
            node = node.children.get(segment.name)
            if node is None:
                return
            yield from node.entries


class DependencyIndex:
    """Statement → key-pattern dependency index over a statement sequence.

    Built once per compiled spec; :meth:`affected` maps a
    :class:`~repro.repository.versioned.ChangeSet` to the (sorted) indices
    of the statements that must re-run.  Raises :class:`ValueError` for
    ``load``/``include`` commands — those are session-time side effects
    that must be resolved before change-driven selection makes sense.

    >>> from repro.cpl import parse
    >>> from repro.repository.versioned import ChangeSet
    >>> from repro.repository.model import ConfigInstance
    >>> from repro.repository.keys import parse_instance_key
    >>> index = DependencyIndex(parse("$A.X -> int\\n$B.Y -> int").statements)
    >>> edit = ConfigInstance(parse_instance_key("B::B1.Y"), "2", "doc")
    >>> index.affected(ChangeSet(added=[edit]))
    [1]
    """

    def __init__(self, statements: Sequence[ast.Statement]):
        self._statements = list(statements)
        self._trie = _PatternTrie()
        self._always: list[int] = []
        self._compartments: list[tuple[int, tuple[KeyPattern, ...]]] = []
        macros: dict[str, ast.PredExpr] = {}
        for index, statement in enumerate(self._statements):
            if isinstance(statement, (ast.LoadCmd, ast.IncludeCmd)):
                raise ValueError(
                    "load/include are session commands; resolve them before "
                    "building a dependency index"
                )
            if isinstance(statement, ast.LetCmd):
                macros[statement.name] = statement.predicate
                self._always.append(index)
                continue
            patterns = _statement_patterns(statement, macros)
            if not patterns or _is_volatile(statement, macros):
                self._always.append(index)
                continue
            for pattern in patterns:
                self._trie.insert(pattern, index)
            compartments = tuple(_compartment_patterns(statement))
            if compartments:
                self._compartments.append((index, compartments))

    # ------------------------------------------------------------------

    @property
    def statement_count(self) -> int:
        return len(self._statements)

    @property
    def statements(self) -> list[ast.Statement]:
        return self._statements

    @staticmethod
    def _scope_touches(pattern: KeyPattern, key: InstanceKey) -> bool:
        """Does any non-leaf window of ``key`` match the compartment name?"""
        width = len(pattern.segments)
        scope = key.segments[:-1]
        for start in range(len(scope) - width + 1):
            window = scope[start : start + width]
            if all(
                _name_matches(p.name, s.name)
                for p, s in zip(pattern.segments, window)
            ):
                return True
        return False

    def affected(self, change: ChangeSet) -> list[int]:
        """Sorted indices of the statements the change can affect."""
        selected = set(self._always)
        for key in change.touched_keys():
            for pattern, index in self._trie.candidates(key):
                if index not in selected and pattern.matches(key):
                    selected.add(index)
        if self._compartments:
            # Compartment *discovery* depends on which scope instances
            # exist; only additions and removals can change that set.
            discovery = [i.key for i in change.added]
            discovery += [i.key for i in change.removed]
            for index, patterns in self._compartments:
                if index in selected:
                    continue
                if any(
                    self._scope_touches(pattern, key)
                    for pattern in patterns
                    for key in discovery
                ):
                    selected.add(index)
        return sorted(selected)

    def affected_statements(self, change: ChangeSet) -> list[ast.Statement]:
        """The statements themselves, in original order."""
        return [self._statements[i] for i in self.affected(change)]


class IncrementalValidator:
    """Pre-compiled spec corpus with change-driven statement selection.

    The check-in gate (``confvalley gate``): parse the corpus once, then
    for each candidate change validate only the affected statements
    against the new store.  ``last_selected`` / ``last_skipped`` expose
    the most recent selection split for reporting.
    """

    def __init__(
        self,
        spec_text: str,
        runtime: Optional[RuntimeProvider] = None,
        policy: Optional[ValidationPolicy] = None,
    ):
        self._runtime = runtime
        self._policy = policy
        self._index = DependencyIndex(parse(spec_text).statements)
        self.last_selected = 0
        self.last_skipped = 0

    # ------------------------------------------------------------------

    @property
    def statement_count(self) -> int:
        return self._index.statement_count

    def affected_statements(self, change: ChangeSet) -> list[ast.Statement]:
        """Statements whose notations can reach a touched key."""
        return self._index.affected_statements(change)

    # ------------------------------------------------------------------

    def validate_change(
        self, new_store: ConfigStore, change: ChangeSet
    ) -> ValidationReport:
        """Validate only the change-affected specs against the new state."""
        selected = self.affected_statements(change)
        self.last_selected = len(selected)
        self.last_skipped = self.statement_count - len(selected)
        session = ValidationSession(
            store=new_store, runtime=self._runtime, policy=self._policy
        )
        return session.validate_statements(selected)

    def validate_full(self, store: ConfigStore) -> ValidationReport:
        """Run the whole corpus (baseline / first commit)."""
        session = ValidationSession(
            store=store, runtime=self._runtime, policy=self._policy
        )
        return session.validate_statements(self._index.statements)
