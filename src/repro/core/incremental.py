"""Incremental validation: re-run only the specifications a change touches.

The paper's check-in scenario (§3.2) validates every configuration update
before it lands.  Re-running the whole corpus per update is wasteful when
an update touches a handful of parameters; this module computes, for each
specification statement, the set of configuration notations it depends on,
and selects the statements whose notations match any key in a
:class:`~repro.repository.versioned.ChangeSet`.

Selection is *conservative*:

* every notation inside a statement counts — main domains, operand domains
  in predicates, ``foreach`` targets, and ``if``-condition domains;
* substitutable variables (``$var``) are widened to ``*`` wildcards;
* ``let`` macro definitions are always retained (they carry no domain);
* aggregate predicates need no special casing — a changed instance matches
  its own class notation, and aggregates always re-run over the full
  current domain when their statement is selected.

Soundness property (tested): for any change set, the violations of the
incremental run equal the full run's violations restricted to selected
statements — and a statement that is *not* selected cannot change outcome,
because none of the instances its notations can reach were touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..cpl import ast, parse
from ..repository.keys import KeyPattern, PatternSegment, parse_pattern
from ..repository.store import ConfigStore
from ..repository.versioned import ChangeSet
from ..runtime import RuntimeProvider
from .evaluator import _collect_notations
from .policy import ValidationPolicy
from .report import ValidationReport
from .session import ValidationSession

__all__ = ["IncrementalValidator"]


def _widen_variables(pattern: KeyPattern) -> KeyPattern:
    """Replace unresolved ``$var`` parts with ``*`` wildcards."""
    segments = []
    for segment in pattern.segments:
        name = "*" if segment.name.startswith("$") else segment.name
        kind, qualifier = segment.kind, segment.qualifier
        if isinstance(qualifier, str) and qualifier.startswith("$"):
            kind, qualifier = "named", "*"
        segments.append(PatternSegment(name, kind, qualifier))
    return KeyPattern(tuple(segments))


def _statement_patterns(statement: ast.Statement) -> list[KeyPattern]:
    patterns = []
    for notation in _collect_notations(statement):
        if notation in ("_",):
            continue
        try:
            pattern = parse_pattern(notation)
        except Exception:
            continue
        patterns.append(_widen_variables(pattern))
    return patterns


@dataclass
class _IndexedStatement:
    statement: ast.Statement
    patterns: list[KeyPattern]
    always: bool  # let-commands and anything without notations


class IncrementalValidator:
    """Pre-compiled spec corpus with change-driven statement selection."""

    def __init__(
        self,
        spec_text: str,
        runtime: Optional[RuntimeProvider] = None,
        policy: Optional[ValidationPolicy] = None,
    ):
        self._runtime = runtime
        self._policy = policy
        self._indexed: list[_IndexedStatement] = []
        for statement in parse(spec_text).statements:
            if isinstance(statement, (ast.LoadCmd, ast.IncludeCmd)):
                raise ValueError(
                    "load/include are session commands; resolve them before "
                    "building an IncrementalValidator"
                )
            patterns = _statement_patterns(statement)
            always = isinstance(statement, ast.LetCmd) or not patterns
            self._indexed.append(_IndexedStatement(statement, patterns, always))
        self.last_selected = 0
        self.last_skipped = 0

    # ------------------------------------------------------------------

    @property
    def statement_count(self) -> int:
        return len(self._indexed)

    def affected_statements(self, change: ChangeSet) -> list[ast.Statement]:
        """Statements whose notations can reach a touched key."""
        touched = change.touched_keys()
        selected = []
        for entry in self._indexed:
            if entry.always or any(
                pattern.matches(key)
                for pattern in entry.patterns
                for key in touched
            ):
                selected.append(entry.statement)
        return selected

    # ------------------------------------------------------------------

    def validate_change(
        self, new_store: ConfigStore, change: ChangeSet
    ) -> ValidationReport:
        """Validate only the change-affected specs against the new state."""
        selected = self.affected_statements(change)
        self.last_selected = len(selected)
        self.last_skipped = self.statement_count - len(selected)
        session = ValidationSession(
            store=new_store, runtime=self._runtime, policy=self._policy
        )
        return session.validate_statements(selected)

    def validate_full(self, store: ConfigStore) -> ValidationReport:
        """Run the whole corpus (baseline / first commit)."""
        session = ValidationSession(
            store=store, runtime=self._runtime, policy=self._policy
        )
        return session.validate_statements(
            [entry.statement for entry in self._indexed]
        )
