"""Exception hierarchy shared across the ConfValley reproduction.

Every error raised by the framework derives from :class:`ConfValleyError` so
callers can catch framework failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ConfValleyError(Exception):
    """Base class for all framework errors."""


class KeyNotationError(ConfValleyError):
    """A qualified configuration notation could not be parsed."""


class DriverError(ConfValleyError):
    """A configuration source could not be converted to the unified form.

    Carries structured context so supervisors and reports can say *which*
    source failed without parsing the message: the source ``path``, the
    driver ``format_name``, and — for encoding failures — the byte
    ``offset`` of the first undecodable byte.  ``line`` is filled by
    line-oriented drivers where available.
    """

    def __init__(
        self,
        message: str,
        *,
        path: "str | None" = None,
        format_name: "str | None" = None,
        offset: "int | None" = None,
        line: "int | None" = None,
    ):
        self.raw_message = message
        self.path = path
        self.format_name = format_name
        self.offset = offset
        self.line = line
        super().__init__(self._render())

    def _render(self) -> str:
        context = []
        if self.format_name:
            context.append(f"format={self.format_name}")
        if self.path:
            context.append(f"path={self.path}")
        if self.line is not None:
            context.append(f"line={self.line}")
        if self.offset is not None:
            context.append(f"byte={self.offset}")
        if context:
            return f"{self.raw_message} [{', '.join(context)}]"
        return self.raw_message

    def with_context(
        self,
        *,
        path: "str | None" = None,
        format_name: "str | None" = None,
    ) -> "DriverError":
        """Fill missing provenance fields in place (keeps the traceback)."""
        if self.path is None and path:
            self.path = path
        if self.format_name is None and format_name:
            self.format_name = format_name
        self.args = (self._render(),)
        return self


class UnknownDriverError(DriverError):
    """No driver is registered for the requested format."""


class CPLSyntaxError(ConfValleyError):
    """The CPL source text failed to lex or parse.

    Carries the 1-based ``line`` and ``column`` of the offending token so
    tooling (console, editors) can point at the error.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.message = message
        self.line = line
        self.column = column


class CPLSemanticError(ConfValleyError):
    """The CPL program parsed but is not evaluable (e.g. unknown macro)."""


class UnknownPredicateError(CPLSemanticError):
    """A predicate primitive name is not registered."""


class UnknownTransformError(CPLSemanticError):
    """A transformation function name is not registered."""


class UnknownMacroError(CPLSemanticError):
    """An ``@Name`` reference has no matching ``let`` definition."""


class EvaluationError(ConfValleyError):
    """A specification could not be evaluated against the configuration."""


class InferenceError(ConfValleyError):
    """The inference engine could not mine constraints from the input."""


class PolicyError(ConfValleyError):
    """A validation policy is malformed."""
