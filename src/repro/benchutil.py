"""Small helpers shared by the paper-reproduction benchmarks."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "ascii_histogram", "effective_loc", "count_spec_statements"]


def count_spec_statements(text: str) -> int:
    """Number of CPL specification statements in a program (commands and
    block wrappers excluded) — the paper's "Count" column in Tables 3/4."""
    from .cpl import ast, parse

    def walk(statements):
        total = 0
        for statement in statements:
            if isinstance(statement, ast.SpecStatement):
                total += 1
            elif isinstance(statement, (ast.NamespaceBlock, ast.CompartmentBlock)):
                total += walk(statement.body)
            elif isinstance(statement, ast.IfStatement):
                total += walk(statement.then) + walk(statement.otherwise)
        return total

    return walk(parse(text).statements)


def format_table(headers: Sequence, rows: Iterable[Sequence]) -> str:
    """Plain-text aligned table (used to print reproduced paper tables)."""
    table = [list(map(str, headers))] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[col]) for row in table) for col in range(len(table[0]))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def ascii_histogram(buckets: dict[int, int], width: int = 50) -> str:
    """Render a {bucket: count} histogram as ASCII bars (Figure 5 style)."""
    if not buckets:
        return "(empty)"
    peak = max(buckets.values()) or 1
    lines = []
    for bucket in sorted(buckets):
        count = buckets[bucket]
        bar = "#" * max(1 if count else 0, round(count / peak * width))
        lines.append(f"{bucket:>3} constraints | {bar} {count}")
    return "\n".join(lines)


def effective_loc(source: str) -> int:
    """Count nonempty, non-comment lines of Python or CPL source."""
    count = 0
    in_docstring = False
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith('"""') or stripped.endswith('"""'):
            if stripped.count('"""') % 2 == 1:
                in_docstring = not in_docstring
            continue
        if in_docstring or not stripped:
            continue
        if stripped.startswith("#") or stripped.startswith("//"):
            continue
        count += 1
    return count
