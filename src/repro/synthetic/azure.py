"""Synthetic Azure-like configuration data (DESIGN.md substitution).

The paper evaluates on three kinds of Microsoft Azure configuration data:

==========  =======  ===========  ==========================================
paper name  classes  instances    shape
==========  =======  ===========  ==========================================
Type A      1,391    67,231       wide parameter catalog, XML hierarchy
Type B      162      2,306,935    few parameters, huge per-node fan-out
Type C      95       2,253        small flat component configuration (INI)
==========  =======  ===========  ==========================================

These generators reproduce that *shape* deterministically (seeded) at a
configurable ``scale`` so benchmarks can dial effort up or down; EXPERIMENTS.md
records the scale used per experiment.  The generated hierarchy exercises
everything the expert specifications (``repro.synthetic.specs``) need:

* ``Datacenter → Cluster`` scopes with per-cluster ``StartIP``/``EndIP``
  VIP bounds;
* ``Rack → Blade`` scopes with rack-local ``Location`` identifiers
  (unique within a rack, reused across racks — the paper's compartment
  example);
* ``LoadBalancerSet`` scopes with ``VipRange`` (``ip1-ip2``) contained in
  the cluster bounds, equal MAC/IP pool sizes and a device name;
* component parameter catalogs with realistic types: booleans, timeouts,
  paths, URLs, GUIDs, enums, IPs, CIDRs and unconstrained free-text names
  (the paper's "no constraints by nature" tail, Figure 5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..drivers import get_driver
from ..repository.model import ConfigInstance
from ..repository.store import ConfigStore

__all__ = [
    "Dataset",
    "ParamDef",
    "generate_type_a",
    "generate_type_b",
    "generate_type_c",
    "component_catalog",
]


@dataclass
class Dataset:
    """One synthetic configuration data set: raw sources + parsed form."""

    name: str
    sources: list[tuple[str, str, str]] = field(default_factory=list)
    # (driver format, source text, scope prefix)

    def parse(self) -> list[ConfigInstance]:
        instances: list[ConfigInstance] = []
        for index, (format_name, text, scope) in enumerate(self.sources):
            driver = get_driver(format_name)
            instances.extend(
                driver.parse(text, source=f"{self.name}#{index}", scope=scope)
            )
        return instances

    def build_store(self) -> ConfigStore:
        store = ConfigStore()
        store.add_all(self.parse())
        return store


# ---------------------------------------------------------------------------
# Parameter catalog
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParamDef:
    """One configuration parameter and how its values are generated."""

    name: str
    kind: str            # bool|int|timeout|ip|cidr|path|url|guid|enum|name|port|float
    consistent: bool = False   # identical value in every instance
    enum_values: tuple[str, ...] = ()
    low: int = 0
    high: int = 100


_KINDS = ("bool", "int", "timeout", "ip", "cidr", "path", "url", "guid",
          "enum", "name", "port", "float")

_ENUM_POOLS = (
    ("compute", "storage"),
    ("primary", "backup", "witness"),
    ("Standard_A1", "Standard_D2", "Standard_D4"),
    ("http", "https"),
    ("debug", "info", "warning", "error"),
)

_NAME_WORDS = (
    "frontend", "backend", "controller", "agent", "monitor", "proxy",
    "gateway", "fabric", "tenant", "billing", "metrics", "incident",
)


def component_catalog(
    component: str, count: int, rng: random.Random
) -> list[ParamDef]:
    """A deterministic catalog of ``count`` parameters for one component."""
    params: list[ParamDef] = []
    for index in range(count):
        kind = _KINDS[(index + rng.randrange(3)) % len(_KINDS)]
        name = f"{component}{_suffix_for(kind, index)}"
        if kind == "enum":
            values = _ENUM_POOLS[index % len(_ENUM_POOLS)]
            params.append(ParamDef(name, kind, enum_values=values))
        elif kind in ("int", "timeout"):
            low = rng.randrange(1, 20)
            high = low + rng.randrange(5, 60)
            params.append(
                ParamDef(name, kind, low=low, high=high,
                         consistent=rng.random() < 0.3)
            )
        else:
            params.append(ParamDef(name, kind, consistent=rng.random() < 0.4))
    return params


def _suffix_for(kind: str, index: int) -> str:
    suffixes = {
        "bool": "Enabled",
        "int": "Limit",
        "timeout": "TimeoutSeconds",
        "ip": "EndpointIP",
        "cidr": "Subnet",
        "path": "InstallPath",
        "url": "ServiceUrl",
        "guid": "AccountId",
        "enum": "Mode",
        "name": "OwnerAlias",
        "port": "Port",
        "float": "Ratio",
    }
    return f"{suffixes[kind]}{index}"


class _ValueGen:
    """Deterministic per-parameter value generation."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self._consistent_cache: dict[str, str] = {}

    def value(self, param: ParamDef, scope_hint: str = "") -> str:
        if param.consistent:
            cached = self._consistent_cache.get(param.name)
            if cached is None:
                cached = self._fresh(param, scope_hint)
                self._consistent_cache[param.name] = cached
            return cached
        return self._fresh(param, scope_hint)

    def _fresh(self, param: ParamDef, scope_hint: str) -> str:
        rng = self.rng
        kind = param.kind
        if kind == "bool":
            return "true" if rng.random() < 0.7 else "false"
        if kind in ("int", "timeout"):
            return str(rng.randrange(param.low, param.high + 1))
        if kind == "float":
            return f"{rng.uniform(0.1, 0.9):.2f}"
        if kind == "ip":
            return f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(1, 255)}"
        if kind == "cidr":
            return f"10.{rng.randrange(256)}.{rng.randrange(0, 255, 16)}.0/24"
        if kind == "path":
            return f"\\\\share\\{scope_hint or 'os'}\\v{rng.randrange(1, 9)}"
        if kind == "url":
            return f"https://{scope_hint or 'svc'}{rng.randrange(100)}.cloud.example.com:{rng.randrange(1024, 9000)}"
        if kind == "guid":
            return "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}".format(
                rng.getrandbits(32), rng.getrandbits(16), rng.getrandbits(16),
                rng.getrandbits(16), rng.getrandbits(48),
            )
        if kind == "enum":
            return rng.choice(param.enum_values)
        if kind == "port":
            return str(rng.randrange(1024, 65535))
        # free-form name: deliberately unconstrained — sometimes empty, so
        # not even `nonempty` is inferable (Figure 5's zero-constraint tail:
        # "IncidentOwner, ClusterName" style parameters)
        if rng.random() < 0.12:
            return ""
        return f"{rng.choice(_NAME_WORDS)}-{rng.randrange(10_000)}"


# ---------------------------------------------------------------------------
# Type A: wide catalog, XML hierarchy
# ---------------------------------------------------------------------------


def _type_a_dimensions(scale: float) -> tuple[int, int, int, int]:
    """Catalog size and cluster fan-out both scale with sqrt(scale) so the
    paper's ~48:1 instance:class ratio is approached as scale → 1
    (scale=1.0: 20×70 = 1400 classes, 4×12 = 48 clusters ≈ 67k instances)."""
    factor = min(1.0, max(0.01, scale)) ** 0.5
    n_components = max(2, round(20 * factor))
    params_per_component = max(4, round(70 * factor))
    n_datacenters = max(1, round(4 * factor))
    clusters_per_dc = max(2, round(12 * factor))
    return n_components, params_per_component, n_datacenters, clusters_per_dc


def _build_type_a_catalog(rng: random.Random, scale: float) -> dict[str, list[ParamDef]]:
    n_components, params_per_component, __, __ = _type_a_dimensions(scale)
    return {
        f"Component{c:02d}": component_catalog(f"C{c:02d}", params_per_component, rng)
        for c in range(n_components)
    }


def type_a_catalog(scale: float = 0.1, seed: int = 42) -> dict[str, list[ParamDef]]:
    """The exact component catalog :func:`generate_type_a` uses for this
    (scale, seed) — shared with the application-source generator so
    white-box extraction sees the same parameters the data carries."""
    return _build_type_a_catalog(random.Random(seed), scale)


def generate_type_a(scale: float = 0.1, seed: int = 42) -> Dataset:
    """Azure Type A analogue: many classes, XML Datacenter/Cluster hierarchy.

    At ``scale=1.0``: 20 components × 70 parameters ≈ 1,400 classes across
    ~48 clusters ≈ 67k instances.  Scale shrinks both the catalog and the
    cluster fan-out.
    """
    rng = random.Random(seed)
    gen = _ValueGen(rng)
    __, __, n_datacenters, clusters_per_dc = _type_a_dimensions(scale)
    racks_per_cluster = 2
    blades_per_rack = 4
    lbsets_per_cluster = 2

    catalog = _build_type_a_catalog(rng, scale)

    lines: list[str] = []
    for dc_index in range(n_datacenters):
        dc_name = f"DC{dc_index:02d}"
        lines.append(f'<Datacenter Name="{dc_name}">')
        for cl_index in range(clusters_per_dc):
            cluster = f"{dc_name}-CL{cl_index:02d}"
            base = rng.randrange(1, 200)
            start_ip = f"10.{base}.0.1"
            end_ip = f"10.{base}.0.200"
            lines.append(f'  <Cluster Name="{cluster}">')
            lines.append(f'    <Setting Key="StartIP" Value="{start_ip}"/>')
            lines.append(f'    <Setting Key="EndIP" Value="{end_ip}"/>')
            lines.append(
                f'    <Setting Key="FccDnsName" Value="fcc-{cluster.lower()}.cloud.example.com"/>'
            )
            lines.append(
                f'    <Setting Key="ReplicaCountForCreateFCC" Value="{rng.choice((3, 5))}"/>'
            )
            lines.append(
                f'    <Setting Key="MachinePool" Value="{rng.choice(("compute", "storage"))}"/>'
            )
            # deliberately uncovered by the expert specs: its true type is
            # "list of IP" but good snapshots only ever show one element —
            # the paper's inferred-type false-positive mechanism (§6.4)
            lines.append(
                f'    <Setting Key="NodeDnsServers" Value="10.{base}.0.253"/>'
            )
            for rack_index in range(racks_per_cluster):
                lines.append(f'    <Rack Name="RK{rack_index}">')
                for blade_index in range(blades_per_rack):
                    asset_tag = "tag-{:012x}".format(rng.getrandbits(48))
                    lines.append(f'      <Blade Name="B{blade_index}">')
                    lines.append(
                        f'        <Setting Key="Location" Value="{blade_index + 1}"/>'
                    )
                    lines.append(
                        f'        <Setting Key="BladeID" Value="{dc_index}-{cl_index}-{rack_index}-{blade_index}"/>'
                    )
                    # the asset tag is mirrored in the inventory system —
                    # the paper's cross-parameter *equality* constraints
                    lines.append(
                        f'        <Setting Key="AssetTag" Value="{asset_tag}"/>'
                    )
                    lines.append(
                        f'        <Setting Key="InventoryTag" Value="{asset_tag}"/>'
                    )
                    lines.append("      </Blade>")
                lines.append("    </Rack>")
            for lb_index in range(lbsets_per_cluster):
                vip_low = rng.randrange(2, 90)
                vip_high = vip_low + rng.randrange(5, 40)
                pool = rng.randrange(8, 64)
                lines.append(f'    <LoadBalancerSet Name="LB{lb_index}">')
                lines.append(
                    f'      <Setting Key="VipRange" Value="10.{base}.0.{vip_low}-10.{base}.0.{vip_high}"/>'
                )
                lines.append(f'      <Setting Key="MacPoolSize" Value="{pool}"/>')
                lines.append(f'      <Setting Key="IpPoolSize" Value="{pool}"/>')
                lines.append(
                    f'      <Setting Key="Device" Value="slb-{cluster.lower()}-{lb_index}"/>'
                )
                lines.append("    </LoadBalancerSet>")
            for component, params in catalog.items():
                lines.append(f'    <{component}>')
                for param in params:
                    value = gen.value(param, scope_hint=component.lower())
                    lines.append(
                        f'      <Setting Key="{param.name}" Value="{value}"/>'
                    )
                lines.append(f'    </{component}>')
            lines.append("  </Cluster>")
        lines.append("</Datacenter>")
    return Dataset("type_a", [("xml", "\n".join(lines), "")])


# ---------------------------------------------------------------------------
# Type B: few classes, huge instance counts (per-node key-value dumps)
# ---------------------------------------------------------------------------

_TYPE_B_PARAMS = [
    ParamDef("NodeIP", "ip"),
    ParamDef("NodeState", "enum", enum_values=("ready", "draining", "offline")),
    ParamDef("AgentPort", "port", consistent=True),
    ParamDef("HeartbeatSeconds", "timeout", low=5, high=30),
    ParamDef("OsImagePath", "path", consistent=True),
    ParamDef("MonitorEnabled", "bool", consistent=True),
    ParamDef("NodeId", "guid"),
    ParamDef("DiskRatio", "float"),
    ParamDef("OwnerAlias", "name"),
]


def generate_type_b(scale: float = 0.01, seed: int = 43) -> Dataset:
    """Azure Type B analogue: ~160 classes, massive per-node fan-out.

    At ``scale=1.0``: 18 clusters × ~14,000 nodes × 9 params ≈ 2.3M
    instances (the paper's shape).  Default scale keeps benchmarks snappy.
    """
    rng = random.Random(seed)
    gen = _ValueGen(rng)
    n_clusters = max(2, int(18 * min(1.0, scale * 20)))
    nodes_per_cluster = max(10, int(14_000 * scale))
    lines: list[str] = []
    for cl_index in range(n_clusters):
        cluster = f"BC{cl_index:02d}"
        for node_index in range(nodes_per_cluster):
            node = f"N{node_index:05d}"
            for param in _TYPE_B_PARAMS:
                value = gen.value(param, scope_hint=cluster.lower())
                if param.name == "NodeIP":
                    value = f"10.{cl_index}.{node_index // 250}.{node_index % 250 + 1}"
                lines.append(
                    f"Cluster::{cluster}.Node::{node}.{param.name} = {value}"
                )
    # The paper's Type B has 162 classes: a handful carry the multi-million
    # node fan-out, the rest are per-cluster service metadata.  16 service
    # scopes × 9 params + node/cluster params lands in the same ballpark.
    service_catalog = {
        f"Svc{s:02d}": component_catalog(f"B{s:02d}", 9, rng) for s in range(16)
    }
    for cl_index in range(n_clusters):
        cluster = f"BC{cl_index:02d}"
        lines.append(f"Cluster::{cluster}.ControllerIP = 10.{cl_index}.255.1")
        lines.append(f"Cluster::{cluster}.ControllerReplicas = {rng.choice((3, 5))}")
        for service, params in service_catalog.items():
            for param in params:
                value = gen.value(param, scope_hint=service.lower())
                lines.append(
                    f"Cluster::{cluster}.{service}.{param.name} = {value}"
                )
    return Dataset("type_b", [("keyvalue", "\n".join(lines), "")])


# ---------------------------------------------------------------------------
# Type C: small flat INI component configuration
# ---------------------------------------------------------------------------


def generate_type_c(scale: float = 1.0, seed: int = 44) -> Dataset:
    """Azure Type C analogue: ~95 classes, ~2,253 instances, INI files.

    One INI document per deployment environment; every environment carries
    the same section/key catalog, so each key yields one class with
    ``n_environments`` instances.
    """
    rng = random.Random(seed)
    gen = _ValueGen(rng)
    n_sections = max(2, int(8 * min(1.0, scale)))
    params_per_section = max(3, int(12 * min(1.0, scale)))
    n_environments = max(3, int(24 * scale))
    catalog = {
        f"service{s}": component_catalog(f"S{s}", params_per_section, rng)
        for s in range(n_sections)
    }
    sources = []
    for env_index in range(n_environments):
        lines = [f"# environment {env_index}"]
        for section, params in catalog.items():
            lines.append(f"[{section}]")
            for param in params:
                lines.append(
                    f"{param.name} = {gen.value(param, scope_hint=section)}"
                )
        sources.append(("ini", "\n".join(lines), f"Env::E{env_index:02d}"))
    return Dataset("type_c", sources)
