"""Synthetic application source code for white-box inference.

The paper's white-box comparison point (SPEX, Rabkin & Katz) extracts
configuration constraints from the *application* that consumes the
configuration.  This generator emits the Python reader modules that
"application" would contain for the synthetic Type A catalog: one loader
function per component, reading each parameter and enforcing the guards the
service actually needs.

Crucially, the code's guards encode the parameters' **true valid ranges**,
which are wider than any one good snapshot happens to exhibit — exactly the
gap that produces the paper's inferred-range false positives (§6.4).
Combining these code constraints with black-box mining
(:func:`repro.inference.whitebox.combine`) eliminates that FP class, which
``benchmarks/bench_whitebox_ablation.py`` measures.
"""

from __future__ import annotations

from .azure import ParamDef, type_a_catalog

__all__ = ["generate_app_source", "RANGE_SLACK"]

#: how far beyond the generation range the code tolerates values — the
#: "true" valid range (generation samples a narrower band, so observed
#: min/max under-approximate what the application accepts)
RANGE_SLACK = 30


def _loader_lines(component: str, params: list[ParamDef]) -> list[str]:
    lines = [f"def load_{component.lower()}(config):"]
    lines.append(f'    """Reader for the {component} settings section."""')
    emitted = False
    for index, param in enumerate(params):
        var = f"v{index}"
        if param.kind in ("int", "timeout"):
            low = 1
            high = param.high + RANGE_SLACK
            lines.append(f'    {var} = int(config["{param.name}"])')
            lines.append(f"    if {var} < {low} or {var} > {high}:")
            lines.append(
                f'        raise ValueError("{param.name} out of range")'
            )
            emitted = True
        elif param.kind == "enum":
            members = ", ".join(repr(v) for v in param.enum_values)
            lines.append(f'    {var} = config["{param.name}"]')
            lines.append(f"    assert {var} in ({members},)")
            emitted = True
        elif param.kind == "float":
            lines.append(f'    {var} = float(config.get("{param.name}", 0.5))')
            lines.append(f"    assert 0.0 <= {var} <= 1.0")
            emitted = True
        elif param.kind == "bool":
            lines.append(f'    {var} = config.get("{param.name}", True)')
            emitted = True
        elif param.kind in ("ip", "url", "path", "guid", "cidr"):
            lines.append(f'    {var} = config["{param.name}"]')
            lines.append(f"    if not {var}:")
            lines.append(f'        raise ValueError("{param.name} required")')
            emitted = True
        elif param.kind == "port":
            lines.append(f'    {var} = int(config["{param.name}"])')
            lines.append(f"    if {var} < 1 or {var} > 65535:")
            lines.append(f'        raise ValueError("{param.name} bad port")')
            emitted = True
        # 'name' kind: the application reads it without constraints
    if not emitted:
        lines.append("    pass")
    lines.append("")
    return lines


def generate_app_source(scale: float = 0.1, seed: int = 42) -> list[str]:
    """Python reader modules matching :func:`generate_type_a`'s catalog.

    Returns one module text per component, plus the fleet-level reader that
    consumes the cluster's special parameters (DNS list, replica counts).
    """
    catalog = type_a_catalog(scale, seed)
    modules = []
    for component, params in catalog.items():
        lines = [f'"""Auto-generated reader for {component}."""', ""]
        lines += _loader_lines(component, params)
        modules.append("\n".join(lines))

    fleet = '''
"""Fleet-level configuration reader."""


def load_cluster(config):
    replicas = int(config["ReplicaCountForCreateFCC"])
    if replicas < 3 or replicas > 7:
        raise ValueError("replica count out of range")
    dns_name = config["FccDnsName"]
    if not dns_name:
        raise ValueError("FccDnsName required")
    pool = config["MachinePool"]
    assert pool in ("compute", "storage")
    # the DNS server list is comma separated; one entry is the common case
    servers = []
    for server in config["NodeDnsServers"].split(","):
        servers.append(server.strip())
    return replicas, dns_name, pool, servers
'''
    modules.append(fleet)
    return modules
